"""Observability A/B: full telemetry must be (nearly) free and faithful.

Runs the GNMF update iteration twice on identical inputs — once with
telemetry disabled, once with full telemetry (span tracer, a subscribed
sink, the event-driven runtime's trace recorder) — and checks the
observability contract end to end:

* **non-invasive**: outputs bit-identical, modeled metrics unchanged;
* **cheap**: wall-clock overhead of full tracing stays under 5%;
* **accountable**: ``engine.profile()`` joins a prediction and a
  measurement (with relative error) for every physical-plan unit;
* **exportable**: the Prometheus page parses, the Chrome/Perfetto trace
  validates and contains span + cache events.

Then exercises the **service observability plane** (DESIGN.md §16): a
3-tenant replay with per-tenant accounting and SLO burn-rate tracking on
must stay within the same wall-clock overhead budget versus the bare
service, conserve cost (ledgers sum to the cluster totals), flip the
burn-rate alert for a canary tenant with an impossible latency target,
and serve a parseable ``/metrics`` page over real HTTP.

Writes ``BENCH_observability.json``, the per-query Perfetto trace
``TRACE_observability.json`` and the ``CHARGEBACK_observability.txt``
chargeback report next to this script.  Exits non-zero on any contract
violation — CI runs this with ``--quick`` as a smoke test.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro.cluster.runtime.trace import validate_chrome_trace
from repro.config import ServiceConfig
from repro.core import FuseMEEngine
from repro.lang import matrix_input, sq, sum_of
from repro.matrix import rand_dense, rand_sparse
from repro.obs import MemorySink, PrometheusSink, SLOSpec
from repro.obs.accounting import RESOURCE_FIELDS
from repro.obs.prometheus import (
    cache_families,
    engine_families,
    render_exposition,
    validate_exposition,
)
from repro.serving import MatrixService
from repro.workloads.gnmf import gnmf_updates

from common import BLOCK_SIZE, bench_config

#: Wall-clock overhead budget for full telemetry (fraction of baseline).
OVERHEAD_BUDGET = 0.05


def gnmf_workload(quick: bool):
    users, items, factors = (400, 320, 40) if quick else (800, 600, 50)
    query = gnmf_updates(
        users, items, factors, density=0.05, block_size=BLOCK_SIZE
    )
    inputs = {
        "X": rand_sparse(users, items, 0.05, BLOCK_SIZE, seed=7),
        "U": rand_dense(factors, items, BLOCK_SIZE, seed=8, low=0.1, high=1.0),
        "V": rand_dense(users, factors, BLOCK_SIZE, seed=9, low=0.1, high=1.0),
    }
    return [query.u_update, query.v_update], inputs


def run_iterations(telemetry: bool, quick: bool, iterations: int,
                   attach_sink: bool = False):
    """One engine over *iterations* executes; returns wall, modeled, outputs."""
    query, inputs = gnmf_workload(quick)
    engine = FuseMEEngine(bench_config(telemetry=telemetry))
    sink = None
    if attach_sink:
        sink = engine.telemetry.attach(MemorySink())
    modeled, outputs = [], []
    start = time.perf_counter()
    for _ in range(iterations):
        result = engine.execute(query, inputs)
        modeled.append(
            (result.metrics.elapsed_seconds, result.metrics.comm_bytes)
        )
    wall = time.perf_counter() - start
    for root in result.dag.roots:
        outputs.append(result.outputs[root].to_numpy())
    return wall, modeled, outputs, engine, sink


def measure_overhead(quick: bool, iterations: int, trials: int):
    """Interleaved A/B trials; the min wall per mode damps scheduler noise."""
    off_walls, on_walls = [], []
    off = on = None
    for _ in range(trials):
        wall, modeled, outputs, _, _ = run_iterations(
            telemetry=False, quick=quick, iterations=iterations
        )
        off_walls.append(wall)
        off = (modeled, outputs)
        wall, modeled, outputs, engine, sink = run_iterations(
            telemetry=True, quick=quick, iterations=iterations,
            attach_sink=True,
        )
        on_walls.append(wall)
        on = (modeled, outputs, engine, sink)
    overhead = min(on_walls) / min(off_walls) - 1.0
    return off_walls, on_walls, overhead, off, on


# -- the service observability plane ----------------------------------------

TENANTS = ("alice", "bob", "canary")


def tenant_workloads(quick: bool):
    """One distinct query per tenant (no cross-tenant cache/CSE sharing)."""
    base = 120 if quick else 240
    workloads = {}
    for i, tenant in enumerate(TENANTS):
        rows = base + 2 * BLOCK_SIZE * i
        a = matrix_input("A", rows, base, BLOCK_SIZE)
        b = matrix_input("B", base, rows, BLOCK_SIZE)
        workloads[tenant] = (sum_of(sq(a @ b)), {
            "A": rand_dense(rows, base, BLOCK_SIZE, seed=31 + i),
            "B": rand_dense(base, rows, BLOCK_SIZE, seed=41 + i),
        })
    return workloads


def make_service(plane: bool):
    """A 2-replica service; with the plane on, accounting + SLOs are live
    (the canary tenant's impossible target induces the burn alert)."""
    slos = ()
    if plane:
        slos = (
            SLOSpec(tenant="alice", latency_target_s=60.0),
            SLOSpec(tenant="bob", latency_target_s=60.0),
            SLOSpec(tenant="canary", latency_target_s=1e-9,
                    objective=0.5, burn_alert_threshold=1.5),
        )
    config = ServiceConfig(
        accounting=plane,
        slos=slos,
        num_replicas=2,
        result_cache_entries=0,  # every query executes: steady A/B walls
    )
    engine = FuseMEEngine(bench_config())
    sink = engine.telemetry.attach(MemorySink()) if plane else None
    return MatrixService(engine, config), sink


def run_replay(service, workloads, rounds: int) -> float:
    """*rounds* interleaved waves of one query per tenant; returns wall."""
    sessions = {}
    for tenant, (query, inputs) in workloads.items():
        session = service.open_session(tenant)
        for name, matrix in inputs.items():
            session.bind(name, matrix)
        sessions[tenant] = (session, query)
    start = time.perf_counter()
    for _ in range(rounds):
        tickets = [s.submit(q) for s, q in sessions.values()]
        for ticket in tickets:
            ticket.result(timeout=120)
    return time.perf_counter() - start


def serving_plane_section(quick: bool, trials: int, failures, here: Path):
    """A/B the plane's serving overhead, then check its contracts."""
    rounds = 2 if quick else 5
    workloads = tenant_workloads(quick)
    off_walls, on_walls = [], []
    service = sink = None
    for trial in range(trials):
        bare, _ = make_service(plane=False)
        off_walls.append(run_replay(bare, workloads, rounds))
        bare.close()
        service, sink = make_service(plane=True)
        on_walls.append(run_replay(service, workloads, rounds))
        if trial < trials - 1:
            service.close()
    overhead = min(on_walls) / min(off_walls) - 1.0
    print(f"\nserving plane off: min {min(off_walls):.3f}s over {trials} trials")
    print(f"serving plane on:  min {min(on_walls):.3f}s over {trials} trials")
    print(f"overhead: {overhead * 100:+.2f}% (budget {OVERHEAD_BUDGET:.0%})")
    if overhead > OVERHEAD_BUDGET:
        failures.append(
            f"accounting+SLO overhead {overhead * 100:.2f}% exceeds "
            f"{OVERHEAD_BUDGET:.0%} budget"
        )

    # conservation: ledgers sum to the cluster-level metrics totals
    snap = service.accountant.snapshot()
    totals = snap["totals"]
    for name in RESOURCE_FIELDS:
        if abs(totals["charged"][name] - totals["usage"][name]) > 1e-6:
            failures.append(f"charged != usage for {name}")
    clusters = {
        id(r.cluster): r.cluster for r in service.pool.replicas
    }.values()
    cluster_seconds = sum(c.metrics.elapsed_seconds for c in clusters)
    ledger_seconds = totals["usage"]["modeled_seconds"]
    if abs(ledger_seconds - cluster_seconds) > 1e-6 * max(1.0, cluster_seconds):
        failures.append(
            f"ledger modeled seconds {ledger_seconds} != cluster totals "
            f"{cluster_seconds}"
        )

    # the canary's impossible latency target must be burning by now
    slo_state = service.status()["slo"]
    if not slo_state["canary"]["burning"]:
        failures.append("canary SLO never started burning")
    if slo_state["alice"]["burning"]:
        failures.append("alice SLO burning despite a 60s target")
    if not sink.named("slo.burn_alert"):
        failures.append("no slo.burn_alert event reached the bus")

    # chargeback artifact
    report_text = service.accounting()
    chargeback_path = here / "CHARGEBACK_observability.txt"
    chargeback_path.write_text(report_text + "\n")
    print()
    print(report_text)
    print(f"wrote {chargeback_path}")

    # a real scrape over HTTP
    server = service.serve_metrics()
    with urllib.request.urlopen(server.url + "/metrics") as resp:
        page = resp.read().decode("utf-8")
    scrape_samples = 0
    try:
        scrape_samples = validate_exposition(page)
        print(f"http scrape: {scrape_samples} samples from {server.url}/metrics")
    except ValueError as exc:
        failures.append(f"scraped exposition invalid: {exc}")
    for needle in ("repro_tenant_queries_total",
                   'repro_slo_burning{tenant="canary"} 1'):
        if needle not in page:
            failures.append(f"scrape is missing {needle!r}")
    service.close()

    return {
        "rounds": rounds,
        "tenants": list(TENANTS),
        "wall_seconds_off": [round(w, 4) for w in off_walls],
        "wall_seconds_on": [round(w, 4) for w in on_walls],
        "overhead_fraction": round(overhead, 4),
        "ledger_modeled_seconds": round(ledger_seconds, 6),
        "cluster_modeled_seconds": round(cluster_seconds, 6),
        "canary_burning": bool(slo_state["canary"]["burning"]),
        "scrape_samples": scrape_samples,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller shapes / fewer iterations (CI smoke)")
    parser.add_argument("--output", default=None,
                        help="path of the JSON report (default: "
                             "BENCH_observability.json next to this script)")
    args = parser.parse_args()
    iterations = 3 if args.quick else 10
    trials = 3 if args.quick else 5
    failures = []

    # -- overhead + invariance A/B ---------------------------------------
    off_walls, on_walls, overhead, off, on = measure_overhead(
        args.quick, iterations, trials
    )
    off_modeled, off_outputs = off
    on_modeled, on_outputs, engine, sink = on
    modeled_equal = off_modeled == on_modeled
    bit_identical = all(
        np.array_equal(a, b) for a, b in zip(off_outputs, on_outputs)
    )
    print(f"telemetry off: min {min(off_walls):.3f}s over {trials} trials")
    print(f"telemetry on:  min {min(on_walls):.3f}s over {trials} trials")
    print(f"overhead: {overhead * 100:+.2f}% (budget {OVERHEAD_BUDGET:.0%})  "
          f"modeled_equal={modeled_equal}  bit_identical={bit_identical}")
    if overhead > OVERHEAD_BUDGET:
        failures.append(
            f"telemetry overhead {overhead * 100:.2f}% exceeds "
            f"{OVERHEAD_BUDGET:.0%} budget"
        )
    if not modeled_equal:
        failures.append("telemetry changed modeled metrics")
    if not bit_identical:
        failures.append("telemetry changed outputs")
    if not sink.named("query.profile"):
        failures.append("event bus never delivered a query profile")

    # -- accountability: profile one GNMF iteration ----------------------
    query, inputs = gnmf_workload(args.quick)
    profile_engine = FuseMEEngine(bench_config())
    prometheus = profile_engine.telemetry.attach(PrometheusSink())
    profile = profile_engine.profile(query, inputs)
    print()
    print(profile.render())
    uncovered = [
        u.index for u in profile.units
        if u.seconds_error is None and u.net_bytes_error is None
    ]
    if uncovered:
        failures.append(f"units without any cost prediction: {uncovered}")
    if profile.mean_abs_seconds_error is None:
        failures.append("profile carries no per-unit seconds error")

    # -- export: Prometheus page + Perfetto trace ------------------------
    page = prometheus.render() + render_exposition(
        engine_families(
            profile.result.metrics.snapshot()
        ) + cache_families({
            "plan": profile_engine.plan_cache.stats(),
            "slice": profile_engine.slice_cache.stats(),
        })
    )
    try:
        prom_samples = validate_exposition(page)
        print(f"\nprometheus: {prom_samples} samples validated")
    except ValueError as exc:
        prom_samples = 0
        failures.append(f"prometheus exposition invalid: {exc}")

    traced = FuseMEEngine(bench_config(time_model="scheduled"))
    result = traced.execute(query, inputs)
    trace_doc = result.trace.to_chrome_trace()
    try:
        validate_chrome_trace(trace_doc)
    except ValueError as exc:
        failures.append(f"chrome trace invalid: {exc}")
    categories = {}
    for event in result.trace.events:
        categories[event.category] = categories.get(event.category, 0) + 1
    if not categories.get("span"):
        failures.append("trace carries no span events")
    if not categories.get("cache"):
        failures.append("trace carries no cache events")
    here = Path(__file__).resolve().parent
    trace_path = here / "TRACE_observability.json"
    result.trace.write_chrome_trace(str(trace_path))
    print(f"trace: {sum(categories.values())} events "
          f"({', '.join(f'{v} {k}' for k, v in sorted(categories.items()))}) "
          f"-> {trace_path.name}")

    # -- the service observability plane ----------------------------------
    serving_report = serving_plane_section(args.quick, trials, failures, here)

    # -- report -----------------------------------------------------------
    report = {
        "quick": args.quick,
        "iterations": iterations,
        "trials": trials,
        "wall_seconds_off": [round(w, 4) for w in off_walls],
        "wall_seconds_on": [round(w, 4) for w in on_walls],
        "overhead_fraction": round(overhead, 4),
        "overhead_budget": OVERHEAD_BUDGET,
        "modeled_equal": modeled_equal,
        "bit_identical": bit_identical,
        "profile": {
            "engine": profile.engine,
            "units": len(profile.units),
            "measured_seconds": profile.measured_seconds,
            "predicted_seconds": profile.predicted_seconds,
            "seconds_error": profile.seconds_error,
            "mean_abs_seconds_error": profile.mean_abs_seconds_error,
            "max_abs_seconds_error": profile.max_abs_seconds_error,
            "counters": profile.counters,
        },
        "prometheus_samples": prom_samples,
        "trace_events": categories,
        "serving_plane": serving_report,
    }
    out_path = Path(args.output) if args.output else (
        here / "BENCH_observability.json"
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
