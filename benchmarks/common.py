"""Shared benchmark harness utilities.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 6) at laptop scale: dimensions are the paper's divided by a scale
factor (block size 25 instead of 1000), densities are kept verbatim, and the
cluster is the paper's 8-node/12-task testbed simulated with its published
bandwidths.  Absolute numbers differ from the paper (our substrate is a
simulator); the *shape* of each series — who wins, by what factor, where
O.O.M. and crossovers land — is the reproduction target and is printed next
to the paper's own numbers where the paper states them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.config import ClusterConfig, EngineConfig
from repro.errors import (
    SimulatedTimeoutError,
    TaskOutOfMemoryError,
    TaskRetriesExceededError,
)
from repro.utils.formatting import format_bytes, format_seconds, render_table

#: Block size used by every benchmark (the paper uses 1000).
BLOCK_SIZE = 25

#: Dimension scale: paper dimension / SCALE, snapped up to whole blocks.
#: 100 keeps the paper's block-grid extents within a factor ~2.5 (the paper's
#: n=100K is 100 blocks of 1000; ours is 40 blocks of 25).
SCALE = 100


def bench_config(
    num_nodes: int = 8,
    tasks_per_node: int = 12,
    task_memory_budget: int = 8 * 1024 * 1024,
    input_split_bytes: int = 36 * 1024,
    **options,
) -> EngineConfig:
    """The paper's cluster shape with budgets scaled to benchmark size.

    The per-task budget and input split are scaled so the ratios that drive
    the paper's qualitative behaviour (side matrices vs theta_t, partitions
    of X vs grid extents) fall in the same regimes.
    """
    cluster = ClusterConfig(
        num_nodes=num_nodes,
        tasks_per_node=tasks_per_node,
        task_memory_budget=task_memory_budget,
        input_split_bytes=input_split_bytes,
    )
    return EngineConfig(cluster=cluster, block_size=BLOCK_SIZE, **options)


@dataclass
class SeriesResult:
    """One cell of a figure: a system's outcome on one x-axis point."""

    elapsed_seconds: Optional[float] = None
    comm_bytes: Optional[int] = None
    failure: Optional[str] = None  # "O.O.M.", "T.O." or "FAILED"
    num_retries: int = 0

    @property
    def label_time(self) -> str:
        if self.failure:
            return self.failure
        return format_seconds(self.elapsed_seconds)

    @property
    def label_comm(self) -> str:
        if self.failure:
            return self.failure
        return format_bytes(self.comm_bytes)


def run_engine(fn: Callable[[], object]) -> SeriesResult:
    """Run one engine invocation, converting failures to figure labels."""
    try:
        result = fn()
    except TaskOutOfMemoryError:
        return SeriesResult(failure="O.O.M.")
    except SimulatedTimeoutError:
        return SeriesResult(failure="T.O.")
    except TaskRetriesExceededError:
        # a fault plan killed some task on every allowed attempt
        return SeriesResult(failure="FAILED")
    return SeriesResult(
        elapsed_seconds=result.metrics.elapsed_seconds,
        comm_bytes=result.metrics.comm_bytes,
        num_retries=result.metrics.num_retries,
    )


@dataclass
class FigureReport:
    """Collects a figure's series and prints the paper-style table."""

    title: str
    x_label: str
    rows: List[List[str]] = field(default_factory=list)
    headers: List[str] = field(default_factory=list)

    def add_point(self, x: str, cells: Dict[str, str]) -> None:
        if not self.headers:
            self.headers = [self.x_label, *cells.keys()]
        self.rows.append([x, *cells.values()])

    def render(self) -> str:
        table = render_table(self.headers, self.rows)
        bar = "=" * len(self.title)
        return f"\n{self.title}\n{bar}\n{table}\n"

    def print(self) -> None:
        print(self.render())


def paper_note(text: str) -> None:
    """Print the paper's own numbers for side-by-side comparison."""
    print(f"  [paper] {text}")
