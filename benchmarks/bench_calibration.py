"""Calibration A/B: the fitted cost model must predict, and plan, better.

Runs two iterative workloads — the GNMF update step and the ALS weighted
loss — once with ``calibration="off"`` (the paper's constants, the seed
behaviour) and once with ``calibration="active"``, and checks the
calibration contract end to end:

* **accurate**: after one calibration pass (observe, fit, re-plan) the mean
  abs relative seconds error of the planner's predictions drops under the
  0.5 budget — from ~0.95 uncalibrated;
* **useful**: on at least one workload the calibrated search picks a
  *different* plan or ``(P, Q, R)`` that is faster both in measured modeled
  seconds and in real wall clock;
* **safe**: outputs stay numerically equivalent (different fusion orders
  may legally change floating-point association), and ``calibration="off"``
  runs are unaffected — the store stays empty and predictions stay the
  paper's.

Writes ``BENCH_calibration.json`` next to this script.  Exits non-zero on
any contract violation — CI runs this with ``--quick`` as a smoke test.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import FuseMEEngine
from repro.matrix import rand_dense, rand_sparse
from repro.workloads.als import als_loss_query
from repro.workloads.gnmf import gnmf_updates

from common import BLOCK_SIZE, bench_config

#: The calibrated planner must get within this mean abs relative error.
ERROR_BUDGET = 0.5


def gnmf_workload():
    users, items, factors = 400, 320, 40
    query = gnmf_updates(users, items, factors, density=0.05,
                         block_size=BLOCK_SIZE)
    inputs = {
        "X": rand_sparse(users, items, 0.05, BLOCK_SIZE, seed=7),
        "U": rand_dense(factors, items, BLOCK_SIZE, seed=8, low=0.1, high=1.0),
        "V": rand_dense(users, factors, BLOCK_SIZE, seed=9, low=0.1, high=1.0),
    }
    return [query.u_update, query.v_update], inputs


def als_workload():
    rows, cols, factors = 400, 320, 40
    query = als_loss_query(rows, cols, factors, density=0.05,
                           block_size=BLOCK_SIZE)
    inputs = {
        "X": rand_sparse(rows, cols, 0.05, BLOCK_SIZE, seed=7),
        "U": rand_dense(rows, factors, BLOCK_SIZE, seed=8, low=0.1, high=1.0),
        "V": rand_dense(factors, cols, BLOCK_SIZE, seed=9, low=0.1, high=1.0),
    }
    return query.expr, inputs


WORKLOADS = {"gnmf": gnmf_workload, "als": als_workload}


def error_trace(mode: str, name: str, iterations: int):
    """Per-iteration profile series for one (mode, workload) pair."""
    query, inputs = WORKLOADS[name]()
    engine = FuseMEEngine(bench_config(calibration=mode))
    trace = []
    for _ in range(iterations):
        profile = engine.profile(query, inputs)
        trace.append({
            "units": len(profile.units),
            "measured_seconds": profile.measured_seconds,
            "predicted_seconds": profile.predicted_seconds,
            "mean_abs_seconds_error": profile.mean_abs_seconds_error,
            "replanned": bool(
                profile.counters.get("plan_cache_calibration_evictions", 0)
            ),
        })
    outputs = [
        profile.result.outputs[root].to_numpy()
        for root in profile.result.dag.roots
    ]
    return trace, outputs, engine


def wall_per_iter(mode: str, name: str, warmup: int, iterations: int,
                  trials: int) -> float:
    """Min-over-trials wall seconds per execute, past the calibration
    transient (warm-up iterations absorb the observe + re-plan cycle)."""
    query, inputs = WORKLOADS[name]()
    engine = FuseMEEngine(bench_config(calibration=mode))
    for _ in range(warmup):
        engine.execute(query, inputs)
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        for _ in range(iterations):
            engine.execute(query, inputs)
        best = min(best, time.perf_counter() - start)
    return best / iterations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer iterations/trials (CI smoke)")
    parser.add_argument("--output", default=None,
                        help="path of the JSON report (default: "
                             "BENCH_calibration.json next to this script)")
    args = parser.parse_args()
    iterations = 4 if args.quick else 6
    wall_iters = 3 if args.quick else 8
    trials = 2 if args.quick else 4
    failures = []
    report = {"quick": args.quick, "iterations": iterations,
              "error_budget": ERROR_BUDGET, "workloads": {}}
    any_faster_plan = False

    for name in WORKLOADS:
        off_trace, off_outputs, off_engine = error_trace(
            "off", name, iterations
        )
        active_trace, active_outputs, active_engine = error_trace(
            "active", name, iterations
        )
        error_before = active_trace[0]["mean_abs_seconds_error"]
        error_after = active_trace[-1]["mean_abs_seconds_error"]
        replanned = any(step["replanned"] for step in active_trace)
        plan_changed = (
            active_trace[-1]["units"] != off_trace[-1]["units"]
            or active_trace[-1]["measured_seconds"]
            != off_trace[-1]["measured_seconds"]
        )
        modeled_speedup = (
            off_trace[-1]["measured_seconds"]
            / active_trace[-1]["measured_seconds"]
        )
        wall_off = wall_per_iter("off", name, 2, wall_iters, trials)
        wall_active = wall_per_iter(
            "active", name, iterations, wall_iters, trials
        )
        wall_speedup = wall_off / wall_active
        outputs_close = all(
            np.allclose(a, b) for a, b in zip(off_outputs, active_outputs)
        )
        store = active_engine.calibration.stats()

        print(f"{name}: error {error_before:.4f} -> {error_after:.4f} "
              f"(budget {ERROR_BUDGET})  replanned={replanned} "
              f"plan_changed={plan_changed}")
        print(f"{name}: modeled {off_trace[-1]['measured_seconds']:.4f}s -> "
              f"{active_trace[-1]['measured_seconds']:.4f}s "
              f"({modeled_speedup:.2f}x)   wall {wall_off * 1000:.1f} -> "
              f"{wall_active * 1000:.1f} ms/iter ({wall_speedup:.2f}x)")

        if error_after is None or error_after > ERROR_BUDGET:
            failures.append(
                f"{name}: calibrated error {error_after} exceeds budget "
                f"{ERROR_BUDGET}"
            )
        if error_before is not None and error_after is not None \
                and error_after >= error_before:
            failures.append(
                f"{name}: calibration failed to reduce error "
                f"({error_before:.4f} -> {error_after:.4f})"
            )
        if not outputs_close:
            failures.append(f"{name}: calibrated plan changed outputs")
        if off_engine.calibration.num_observations:
            failures.append(
                f"{name}: calibration='off' engine accumulated observations"
            )
        if plan_changed and modeled_speedup > 1.0 and wall_speedup > 1.0:
            any_faster_plan = True

        report["workloads"][name] = {
            "off": off_trace,
            "active": active_trace,
            "error_before": error_before,
            "error_after": error_after,
            "replanned": replanned,
            "plan_changed": plan_changed,
            "modeled_speedup": round(modeled_speedup, 4),
            "wall_seconds_off": round(wall_off, 6),
            "wall_seconds_active": round(wall_active, 6),
            "wall_speedup": round(wall_speedup, 4),
            "outputs_close": outputs_close,
            "calibration": store,
        }

    if not any_faster_plan:
        failures.append(
            "no workload picked a different, faster plan under calibration"
        )

    here = Path(__file__).resolve().parent
    out_path = Path(args.output) if args.output else (
        here / "BENCH_calibration.json"
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
