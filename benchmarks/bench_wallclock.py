"""Wall-clock A/B of the execution fast path (not a paper figure).

Runs each workload twice on identical inputs: once with every fast path
disabled (``plan_cache_size=0, slice_reuse=False, local_parallelism=1`` —
the pre-fast-path engine) and once with the defaults.  Reports real elapsed
time, verifies the fast path is invisible (bit-identical outputs, identical
modeled metrics), and writes ``BENCH_wallclock.json`` next to this script.

Exits non-zero if the fast run never hit the plan cache or if any
invisibility check fails — CI runs this with ``--quick`` as a smoke test.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import FuseMEEngine
from repro.lang import DAG, log, matrix_input
from repro.matrix import rand_dense, rand_sparse
from repro.workloads import GNMF
from repro.workloads.als import als_loss_query

from common import BLOCK_SIZE, bench_config

BASELINE_OPTIONS = dict(plan_cache_size=0, slice_reuse=False, local_parallelism=1)


def wallclock_config(**options):
    """The Figure 14 cluster shape (4 nodes x 6 tasks, 6 MiB budget)."""
    return bench_config(
        num_nodes=4, tasks_per_node=6,
        task_memory_budget=6 * 1024 * 1024,
        **options,
    )


def run_gnmf(options, quick):
    users, items, factors = (450, 300, 50) if quick else (975, 600, 50)
    iterations = 3 if quick else 10
    gnmf = GNMF(users, items, factors, density=0.05, block_size=BLOCK_SIZE)
    x = rand_sparse(users, items, 0.05, BLOCK_SIZE, seed=7)
    engine = FuseMEEngine(wallclock_config(**options))
    start = time.perf_counter()
    run = gnmf.run(engine, x, iterations=iterations, seed=0)
    wall = time.perf_counter() - start
    modeled = [(it.elapsed_seconds, it.comm_bytes) for it in run.iterations]
    outputs = [run.u.to_numpy(), run.v.to_numpy()]
    return wall, modeled, outputs, engine


def run_als(options, quick):
    rows, cols, factors = (300, 225, 50) if quick else (750, 500, 50)
    repeats = 3 if quick else 10
    query = als_loss_query(rows, cols, factors, density=0.05,
                           block_size=BLOCK_SIZE)
    inputs = {
        "X": rand_sparse(rows, cols, 0.05, BLOCK_SIZE, seed=17),
        "U": rand_dense(rows, factors, BLOCK_SIZE, seed=18),
        "V": rand_dense(factors, cols, BLOCK_SIZE, seed=19),
    }
    engine = FuseMEEngine(wallclock_config(**options))
    modeled, outputs = [], []
    start = time.perf_counter()
    for _ in range(repeats):
        result = engine.execute(query.expr, inputs)
        modeled.append((result.metrics.elapsed_seconds, result.metrics.comm_bytes))
        outputs.append(result.output().to_numpy())
    wall = time.perf_counter() - start
    return wall, modeled, outputs, engine


def run_fig12(options, quick):
    """One Figure 12 regime: the NMF micro-query ``X * log(U x V^T + eps)``."""
    rows, cols, common = (250, 250, 50) if quick else (500, 500, 100)
    repeats = 3 if quick else 5
    x_expr = matrix_input("X", rows, cols, BLOCK_SIZE, density=0.05)
    u_expr = matrix_input("U", rows, common, BLOCK_SIZE)
    v_expr = matrix_input("V", cols, common, BLOCK_SIZE)
    dag = DAG((x_expr * log(u_expr @ v_expr.T + 1e-8)).node)
    inputs = {
        "X": rand_sparse(rows, cols, 0.05, BLOCK_SIZE, seed=27),
        "U": rand_dense(rows, common, BLOCK_SIZE, seed=28),
        "V": rand_dense(cols, common, BLOCK_SIZE, seed=29),
    }
    engine = FuseMEEngine(wallclock_config(**options))
    modeled, outputs = [], []
    start = time.perf_counter()
    for _ in range(repeats):
        result = engine.execute(dag, inputs)
        modeled.append((result.metrics.elapsed_seconds, result.metrics.comm_bytes))
        outputs.append(result.output().to_numpy())
    wall = time.perf_counter() - start
    return wall, modeled, outputs, engine


WORKLOADS = [
    ("gnmf_10iter", run_gnmf),
    ("als_loss", run_als),
    ("fig12_nmf", run_fig12),
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller shapes / fewer iterations (CI smoke)")
    parser.add_argument("--output", default=None,
                        help="path of the JSON report "
                             "(default: BENCH_wallclock.json next to this script)")
    args = parser.parse_args()

    report = {"quick": args.quick, "workloads": {}}
    failures = []
    for name, runner in WORKLOADS:
        base_wall, base_modeled, base_out, _ = runner(BASELINE_OPTIONS, args.quick)
        fast_wall, fast_modeled, fast_out, engine = runner({}, args.quick)

        modeled_equal = base_modeled == fast_modeled
        bit_identical = all(
            np.array_equal(a, b) for a, b in zip(base_out, fast_out)
        )
        entry = {
            "baseline_wall_seconds": round(base_wall, 4),
            "fast_wall_seconds": round(fast_wall, 4),
            "speedup": round(base_wall / fast_wall, 2),
            "modeled_equal": modeled_equal,
            "bit_identical": bit_identical,
            "plan_cache_hits": engine.plan_cache.hits,
            "plan_cache_misses": engine.plan_cache.misses,
            "slice_cache_hits": engine.slice_cache.hits,
            "slice_cache_misses": engine.slice_cache.misses,
        }
        report["workloads"][name] = entry
        print(f"{name:12s}  baseline {base_wall:7.3f}s  fast {fast_wall:7.3f}s  "
              f"{entry['speedup']:5.2f}x  plan-cache {engine.plan_cache.hits} hits  "
              f"modeled_equal={modeled_equal}  bit_identical={bit_identical}")

        if engine.plan_cache.hits == 0:
            failures.append(f"{name}: plan cache never hit")
        if not modeled_equal:
            failures.append(f"{name}: modeled metrics changed")
        if not bit_identical:
            failures.append(f"{name}: outputs differ")

    out_path = Path(args.output) if args.output else (
        Path(__file__).resolve().parent / "BENCH_wallclock.json"
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
