"""Fault tolerance under the event-driven runtime: FuseME vs. BFO on GNMF.

Not a figure from the paper — the paper's Eq. 2 assumes perfect balance and
zero failures — but the experiment its Section 6.2 analysis begs for: how do
the two fusion strategies degrade when tasks crash and straggle?  We sweep
crash probability and straggler factor over one GNMF update (the Figure 14
workload) under ``time_model="scheduled"`` with a seeded ``FaultPlan``,
comparing FuseME's CFO plans against SystemDS-style BFO/RFO plans.

Expected shape:

* both engines pay for faults (elapsed grows monotonically in crash_prob
  and straggler_factor) while outputs stay bit-identical;
* FuseME stays faster than BFO at every fault level — fewer, better-balanced
  stages give stragglers fewer long poles to stretch;
* retries are visible in metrics and scale with crash probability.

Run directly (``python benchmarks/bench_fault_tolerance.py``) to append the
tables to ``benchmarks/RESULTS.txt``.
"""

import pytest

from repro.baselines import SystemDSLikeEngine
from repro.cluster.runtime import FaultPlan
from repro.core import FuseMEEngine
from repro.matrix.generators import rand_sparse
from repro.utils.formatting import format_seconds, render_table
from repro.workloads import GNMF

from common import BLOCK_SIZE, bench_config, paper_note, run_engine

# Sized so the per-slot model preserves the paper's ordering: at half this
# scale FuseME's fewer-but-larger tasks give stragglers a longer pole than
# BFO's many small ones and the lead inverts — itself a finding the
# aggregate model cannot express.
USERS, ITEMS, FACTORS, DENSITY = 1000, 750, 250, 0.05
CRASH_PROBS = (0.0, 0.02, 0.1)
STRAGGLER_FACTORS = (1.0, 4.0, 8.0)
SEED = 11

ENGINES = [
    ("FuseME", FuseMEEngine),
    ("BFO (SystemDS)", SystemDSLikeEngine),
]


def fault_config(crash_prob: float, straggler_factor: float):
    return bench_config(
        task_memory_budget=64 * 1024 * 1024,
        time_model="scheduled",
        fault_plan=FaultPlan(
            crash_prob=crash_prob,
            straggler_factor=straggler_factor,
            seed=SEED,
        ),
    )


def run_point(engine_cls, crash_prob: float, straggler_factor: float):
    config = fault_config(crash_prob, straggler_factor)
    x = rand_sparse(USERS, ITEMS, DENSITY, BLOCK_SIZE, seed=7)
    gnmf = GNMF(USERS, ITEMS, FACTORS, DENSITY, BLOCK_SIZE)
    u, v = gnmf.initial_factors(seed=0)
    return run_engine(
        lambda: engine_cls(config).execute(
            [gnmf.query.u_update, gnmf.query.v_update],
            {"X": x, "U": u, "V": v},
        )
    )


def sweep():
    """All fault points for both engines; returns {(engine, crash, factor)}."""
    outcomes = {}
    for engine_name, engine_cls in ENGINES:
        for crash in CRASH_PROBS:
            for factor in STRAGGLER_FACTORS:
                outcomes[(engine_name, crash, factor)] = run_point(
                    engine_cls, crash, factor
                )
    return outcomes


def report(outcomes):
    lines = []
    title = (
        "Fault tolerance — GNMF update, scheduled runtime "
        f"({USERS}x{ITEMS}, k={FACTORS}, seed={SEED})"
    )
    lines.append("\n" + title)
    lines.append("=" * len(title))
    headers = ["crash_prob", "straggler"] + [
        f"{name} ({metric})"
        for name, _ in ENGINES
        for metric in ("elapsed", "retries")
    ]
    rows = []
    for crash in CRASH_PROBS:
        for factor in STRAGGLER_FACTORS:
            cells = [f"{crash:.2f}", f"{factor:.0f}x"]
            for engine_name, _ in ENGINES:
                r = outcomes[(engine_name, crash, factor)]
                cells.append(r.label_time)
                cells.append("-" if r.failure else str(r.num_retries))
            rows.append(cells)
    lines.append(render_table(headers, rows))
    text = "\n".join(lines) + "\n"
    print(text)
    paper_note(
        "not in the paper; extends its Eq. 2 cost model with the per-slot "
        "schedule its §6.2 imbalance analysis implies"
    )
    return text


def check_shape(outcomes):
    for engine_name, _ in ENGINES:
        baseline = outcomes[(engine_name, 0.0, 1.0)]
        assert baseline.failure is None, engine_name
        assert baseline.num_retries == 0, engine_name
        for crash in CRASH_PROBS:
            for factor in STRAGGLER_FACTORS:
                r = outcomes[(engine_name, crash, factor)]
                if r.failure:
                    continue
                # faults never make the modeled run cheaper
                assert r.elapsed_seconds >= baseline.elapsed_seconds * 0.999, (
                    engine_name, crash, factor,
                )
        # retries scale with crash probability (monotone at fixed factor)
        healthy = outcomes[(engine_name, 0.0, 1.0)]
        crashy = outcomes[(engine_name, CRASH_PROBS[-1], 1.0)]
        if crashy.failure is None:
            assert crashy.num_retries > healthy.num_retries, engine_name
    # FuseME keeps its lead at every fault level where both survive
    for crash in CRASH_PROBS:
        for factor in STRAGGLER_FACTORS:
            fuseme = outcomes[("FuseME", crash, factor)]
            bfo = outcomes[("BFO (SystemDS)", crash, factor)]
            if fuseme.failure or bfo.failure:
                continue
            assert fuseme.elapsed_seconds <= bfo.elapsed_seconds * 1.02, (
                crash, factor,
                format_seconds(fuseme.elapsed_seconds),
                format_seconds(bfo.elapsed_seconds),
            )


@pytest.mark.benchmark(group="fault-tolerance")
def test_fault_tolerance_sweep(benchmark):
    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(outcomes)
    check_shape(outcomes)


if __name__ == "__main__":
    import io
    import sys
    from contextlib import redirect_stdout
    from pathlib import Path

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        outcomes = sweep()
        report(outcomes)
        check_shape(outcomes)
    sys.stdout.write(buffer.getvalue())
    results = Path(__file__).parent / "RESULTS.txt"
    with results.open("a", encoding="utf-8") as fh:
        fh.write(buffer.getvalue())
    print(f"\nappended to {results}")
