"""Table 1: analytic communication / memory / parallelism of BFO, RFO, CFO.

Regenerates the paper's comparison table for ``O = X * log(U x V^T + eps)``
from the implemented cost model, and verifies the closed forms against
*measured* traffic on the simulated cluster.
"""

import pytest

from repro.cluster import SimulatedCluster
from repro.core.cfo import CuboidFusedOperator
from repro.core.cost import CostModel
from repro.core.plan import PartialFusionPlan
from repro.core.spaces import plan_layout
from repro.lang import DAG, log, matrix_input
from repro.matrix import rand_dense, rand_sparse
from repro.operators import BroadcastFusedOperator, ReplicationFusedOperator
from repro.utils.formatting import format_bytes, render_table

from common import BLOCK_SIZE, bench_config, paper_note

I_BLOCKS, J_BLOCKS, K_BLOCKS = 16, 12, 2
ROWS, COLS, COMMON = (
    I_BLOCKS * BLOCK_SIZE,
    J_BLOCKS * BLOCK_SIZE,
    K_BLOCKS * BLOCK_SIZE,
)
DENSITY = 0.05


def build():
    x = matrix_input("X", ROWS, COLS, BLOCK_SIZE, density=DENSITY)
    u = matrix_input("U", ROWS, COMMON, BLOCK_SIZE)
    v = matrix_input("V", COLS, COMMON, BLOCK_SIZE)
    dag = DAG((x * log(u @ v.T + 1e-8)).node)
    plan = PartialFusionPlan(set(dag.operators()), dag)
    inputs = {
        "X": rand_sparse(ROWS, COLS, DENSITY, BLOCK_SIZE, seed=1),
        "U": rand_dense(ROWS, COMMON, BLOCK_SIZE, seed=2),
        "V": rand_dense(COLS, COMMON, BLOCK_SIZE, seed=3),
    }
    return plan, inputs


def analytic_row(model, plan, tree, pqr, name, extra):
    mem = model.mem_est(plan, tree, pqr)
    net = model.net_est(tree, pqr)
    return [
        name,
        format_bytes(net),
        format_bytes(mem),
        str(extra),
    ]


def test_table1(benchmark):
    plan, inputs = build()
    config = bench_config()
    layout = plan_layout(plan)
    model = CostModel(config)
    t = config.cluster.total_tasks

    def regenerate():
        rows = []
        # BFO == the (T, T, 1) corner (clamped to the grid)
        bfo_pqr = (min(t, I_BLOCKS), min(t, J_BLOCKS), 1)
        rows.append(
            analytic_row(model, plan, layout.tree, bfo_pqr, "BFO (T,T,1)",
                         f"parallelism I*J={I_BLOCKS * J_BLOCKS}")
        )
        rows.append(
            analytic_row(model, plan, layout.tree, (I_BLOCKS, J_BLOCKS, 1),
                         "RFO (I,J,1)",
                         f"parallelism I*J={I_BLOCKS * J_BLOCKS}")
        )
        from repro.core.optimizer import optimize_parameters

        best = optimize_parameters(plan, config, tree=layout.tree)
        rows.append(
            analytic_row(model, plan, layout.tree, best.pqr,
                         f"CFO {best.pqr}",
                         f"parallelism I*J*K={I_BLOCKS * J_BLOCKS * K_BLOCKS}")
        )
        return rows, best

    rows, best = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print("\nTable 1 — analytic cost comparison for X * log(U x V^T + eps)")
    print(render_table(
        ["method", "communication", "memory/task", "max parallelism"], rows
    ))
    paper_note("BFO: |X|+T(|U|+|V|), RFO: |X|+J|U|+I|V|, "
               "CFO: R|X|+Q|U|+P|V| — CFO picks the cheapest feasible corner")

    # measured traffic agrees with the analytic forms
    for op_cls, pqr in (
        (BroadcastFusedOperator, None),
        (ReplicationFusedOperator, None),
    ):
        cluster = SimulatedCluster(config)
        op_cls(plan, config).execute(cluster, inputs)
        assert cluster.metrics.consolidation_bytes > 0
    cfo_cluster = SimulatedCluster(config)
    CuboidFusedOperator(plan, config, pqr=best.pqr).execute(cfo_cluster, inputs)
    predicted = model.net_est(layout.tree, best.pqr)
    assert cfo_cluster.metrics.consolidation_bytes == pytest.approx(
        predicted, rel=0.35
    )
