"""Table 3: the optimal (P*, Q*, R*) the optimizer picks per dataset.

Regenerates the right-hand column of Table 3 for the three synthetic
regimes.  Absolute values differ from the paper's (our grids are scaled and
the simulated cluster's bandwidth ratio shifts the Eq. 2 balance), but the
qualitative pattern must hold: as the common dimension K grows, the chosen
R* grows while P*/Q* shrink; sparser X pushes toward larger R*.
"""

from repro.core.optimizer import optimize_parameters
from repro.core.plan import PartialFusionPlan
from repro.datasets import (
    common_dimension_cases,
    density_cases,
    nmf_inputs,
    two_large_dimension_cases,
)
from repro.lang import DAG, log, matrix_input
from repro.utils.formatting import render_table

from common import BLOCK_SIZE, SCALE, bench_config, paper_note


def plan_for(case):
    inputs = nmf_inputs(case, BLOCK_SIZE, seed=0)
    rows, cols = inputs["X"].shape
    common = inputs["U"].shape[1]
    x = matrix_input("X", rows, cols, BLOCK_SIZE, density=case.density)
    u = matrix_input("U", rows, common, BLOCK_SIZE)
    v = matrix_input("V", cols, common, BLOCK_SIZE)
    dag = DAG((x * log(u @ v.T + 1e-8)).node)
    return PartialFusionPlan(set(dag.operators()), dag)


def test_table3(benchmark):
    config = bench_config()
    regimes = [
        ("two large dims (n x 2K x n, d=0.001)",
         two_large_dimension_cases(SCALE * 2),
         "(8,6,2) at every n"),
        ("common dim (100K x n x 100K, d=0.2)",
         common_dimension_cases(SCALE),
         "(12,8,1) -> (8,6,2) -> (6,4,4) -> (4,3,8): R* grows with K"),
        ("density (100K x 2K x 100K)",
         density_cases(SCALE),
         "(8,6,2) sparse, (12,8,1) dense: denser X discourages replication"),
    ]

    def regenerate():
        tables = []
        for title, cases, paper in regimes:
            rows = []
            for case in cases:
                plan = plan_for(case)
                result = optimize_parameters(plan, config)
                rows.append([
                    case.label,
                    f"{case.density}",
                    str(result.pqr),
                    "yes" if result.feasible else "NO",
                ])
            tables.append((title, rows, paper))
        return tables

    tables = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    for title, rows, paper in tables:
        print(f"\nTable 3 — {title}")
        print(render_table(["case", "density", "(P*,Q*,R*)", "feasible"], rows))
        paper_note(paper)

    # qualitative pattern: R* non-decreasing as the common dimension grows
    common_rows = tables[1][1]
    r_values = [eval(row[2])[2] for row in common_rows]
    assert r_values == sorted(r_values)
    assert r_values[-1] > r_values[0]
    # every choice feasible
    for _, rows, _ in tables:
        assert all(row[3] == "yes" for row in rows)
