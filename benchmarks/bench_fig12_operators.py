"""Figure 12 (a-c, e-g): BFO vs RFO vs CFO vs DistME on the NMF micro-query.

Three synthetic regimes (Table 3, scaled by ``SCALE``):

* (a, e) matrices varying two large dimensions — ``n x 2K x n``, density 0.001;
* (b, f) matrices varying a common large dimension — ``100K x n x 100K``, 0.2;
* (c, g) matrices varying the density — ``100K x 2K x 100K``.

As in the paper's Section 6.2, the plan generator is *not* used: the entire
query runs as one fused operator.  SystemDS uses BFO or RFO per its selection
rule (BFO iff the main matrix repartitions into fewer partitions than I or
J); FuseME uses the CFO with optimized ``(P, Q, R)``; DistME executes without
fusion.
"""

import math

from repro.baselines import DistMELikeEngine
from repro.cluster import SimulatedCluster
from repro.core.cfo import CuboidFusedOperator
from repro.core.plan import PartialFusionPlan
from repro.datasets import (
    SyntheticCase,
    common_dimension_cases,
    density_cases,
    nmf_inputs,
    two_large_dimension_cases,
)
from repro.lang import DAG, log, matrix_input
from repro.operators import BroadcastFusedOperator, ReplicationFusedOperator

from common import (
    BLOCK_SIZE,
    SCALE,
    FigureReport,
    SeriesResult,
    bench_config,
    paper_note,
    run_engine,
)


def build_query(case: SyntheticCase, inputs):
    rows, cols = inputs["X"].shape
    common = inputs["U"].shape[1]
    x = matrix_input("X", rows, cols, BLOCK_SIZE, density=case.density)
    u = matrix_input("U", rows, common, BLOCK_SIZE)
    v = matrix_input("V", cols, common, BLOCK_SIZE)
    expr = x * log(u @ v.T + 1e-8)
    dag = DAG(expr.node)
    return expr, PartialFusionPlan(set(dag.operators()), dag)


class _Metrics:
    def __init__(self, metrics):
        self.metrics = metrics


def run_operator(op_factory, plan, inputs, config) -> SeriesResult:
    def attempt():
        cluster = SimulatedCluster(config)
        op_factory(plan, config).execute(cluster, inputs)
        return _Metrics(cluster.metrics)

    return run_engine(attempt)


def systemds_choice(plan, inputs, config) -> str:
    """The Section 6.2 rule: BFO iff partitions(X) < I or < J."""
    x = inputs["X"]
    partitions = max(1, math.ceil(x.nbytes / config.cluster.input_split_bytes))
    grid_i, grid_j = x.block_grid
    return "B" if (partitions < grid_i or partitions < grid_j) else "R"


def run_case(case: SyntheticCase, config):
    inputs = nmf_inputs(case, BLOCK_SIZE, seed=0)
    expr, plan = build_query(case, inputs)
    choice = systemds_choice(plan, inputs, config)
    operator = (
        BroadcastFusedOperator if choice == "B" else ReplicationFusedOperator
    )
    results = {
        f"SystemDS": run_operator(operator, plan, inputs, config),
        "FuseME(CFO)": run_operator(CuboidFusedOperator, plan, inputs, config),
        "DistME": run_engine(
            lambda: DistMELikeEngine(config).execute(expr, inputs)
        ),
    }
    return results, choice


def report_regime(title, cases, config, paper_text):
    time_report = FigureReport(f"{title} — elapsed time", "case")
    comm_report = FigureReport(f"{title} — communication", "case")
    collected = {}
    for case in cases:
        results, choice = run_case(case, config)
        collected[case.label] = results
        label = f"{case.label} ({choice})"
        time_report.add_point(label, {k: r.label_time for k, r in results.items()})
        comm_report.add_point(label, {k: r.label_comm for k, r in results.items()})
    time_report.print()
    comm_report.print()
    paper_note(paper_text)
    return collected


def test_fig12_two_large_dimensions(benchmark):
    # this regime grows the block grid quadratically; a coarser scale keeps
    # the harness fast while preserving the series shape
    cases = two_large_dimension_cases(SCALE * 2)
    config = bench_config()
    collected = benchmark.pedantic(
        lambda: report_regime(
            "Figure 12(a, e): n x 2K x n, density 0.001",
            cases, config,
            "CFO beats BFO by 21x/85x/238x (time) and 3.9x/17.1x/64x "
            "(traffic) at n=100K/250K/500K; BFO times out at n=750K",
        ),
        rounds=1, iterations=1,
    )
    ratios = []
    for label, results in collected.items():
        cfo, sysds = results["FuseME(CFO)"], results["SystemDS"]
        assert cfo.failure is None
        if sysds.failure:
            continue
        ratios.append(sysds.elapsed_seconds / cfo.elapsed_seconds)
    assert ratios, "no comparable points"
    # the CFO advantage grows with n and is large at the top end
    assert ratios[-1] == max(ratios)
    assert ratios[-1] > 3.0
    # FuseME also beats the best non-fusing system
    for results in collected.values():
        if results["DistME"].failure is None:
            assert (
                results["FuseME(CFO)"].elapsed_seconds
                < results["DistME"].elapsed_seconds
            )


def test_fig12_common_dimension(benchmark):
    cases = common_dimension_cases(SCALE)
    config = bench_config()
    collected = benchmark.pedantic(
        lambda: report_regime(
            "Figure 12(b, f): 100K x n x 100K, density 0.2",
            cases, config,
            "SystemDS uses RFO here; it is ~9.6x slower than CFO at n=5K "
            "and times out from n=10K; traffic ratio reaches 2.3x",
        ),
        rounds=1, iterations=1,
    )
    for label, results in collected.items():
        cfo, sysds = results["FuseME(CFO)"], results["SystemDS"]
        assert cfo.failure is None
        if sysds.failure is None:
            assert cfo.elapsed_seconds <= sysds.elapsed_seconds
            assert cfo.comm_bytes <= sysds.comm_bytes
    # the traffic gap widens with the common dimension (paper: 2.1x -> 2.3x)
    last = collected[cases[-1].label]
    first = collected[cases[0].label]
    if last["SystemDS"].failure is None and first["SystemDS"].failure is None:
        assert (
            last["SystemDS"].comm_bytes / last["FuseME(CFO)"].comm_bytes
            >= first["SystemDS"].comm_bytes / first["FuseME(CFO)"].comm_bytes
        )


def test_fig12_density(benchmark):
    cases = density_cases(SCALE)
    config = bench_config()
    collected = benchmark.pedantic(
        lambda: report_regime(
            "Figure 12(c, g): 100K x 2K x 100K, density 0.05..1.0",
            cases, config,
            "SystemDS uses BFO at 0.05/0.1 and RFO at 0.5/1.0; CFO wins at "
            "every density (e.g. 65s vs 1587s at 0.05); growth with density "
            "is milder than with dimensions",
        ),
        rounds=1, iterations=1,
    )
    cfo_times = []
    for label, results in collected.items():
        cfo = results["FuseME(CFO)"]
        assert cfo.failure is None
        cfo_times.append(cfo.elapsed_seconds)
        if results["SystemDS"].failure is None:
            assert cfo.elapsed_seconds <= results["SystemDS"].elapsed_seconds * 1.05
    assert cfo_times[-1] >= cfo_times[0]
