"""Benchmark-suite conftest: make the repository root importable so the
shared helpers in ``benchmarks/common.py`` resolve."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
