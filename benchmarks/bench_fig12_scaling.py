"""Figure 12(d, h): varying the number of worker nodes (2 / 4 / 8).

The dataset is the paper's ``100K x 2K x 100K`` with densities 0.1 (where
SystemDS picks BFO, panel d) and 0.2 (where it picks RFO, panel h).
"""

from repro.cluster import SimulatedCluster
from repro.core.cfo import CuboidFusedOperator
from repro.core.plan import PartialFusionPlan
from repro.datasets import SyntheticCase, nmf_inputs
from repro.lang import DAG, log, matrix_input
from repro.operators import BroadcastFusedOperator, ReplicationFusedOperator

from common import (
    BLOCK_SIZE,
    SCALE,
    FigureReport,
    bench_config,
    paper_note,
    run_engine,
)


class _Metrics:
    def __init__(self, metrics):
        self.metrics = metrics


def run_panel(density, systemds_operator, title, paper_text):
    case = SyntheticCase("scaling", 100_000, 2_000, 100_000, density, SCALE)
    inputs = nmf_inputs(case, BLOCK_SIZE, seed=0)
    rows, cols = inputs["X"].shape
    common = inputs["U"].shape[1]
    x = matrix_input("X", rows, cols, BLOCK_SIZE, density=density)
    u = matrix_input("U", rows, common, BLOCK_SIZE)
    v = matrix_input("V", cols, common, BLOCK_SIZE)
    dag = DAG((x * log(u @ v.T + 1e-8)).node)
    plan = PartialFusionPlan(set(dag.operators()), dag)

    report = FigureReport(title, "nodes")
    series = {}
    for nodes in (2, 4, 8):
        # split sized so the main matrix yields ~100 partitions, as at paper
        # scale (otherwise BFO cannot use added nodes at all)
        config = bench_config(num_nodes=nodes, input_split_bytes=14 * 1024)
        cells = {}
        for name, op_cls in (
            ("SystemDS", systemds_operator),
            ("FuseME", CuboidFusedOperator),
        ):
            def attempt(op_cls=op_cls, config=config):
                cluster = SimulatedCluster(config)
                op_cls(plan, config).execute(cluster, inputs)
                return _Metrics(cluster.metrics)

            result = run_engine(attempt)
            cells[name] = result.label_time
            series.setdefault(name, {})[nodes] = result
        report.add_point(str(nodes), cells)
    report.print()
    paper_note(paper_text)
    return series


def test_fig12d_scaling_bfo(benchmark):
    series = benchmark.pedantic(
        lambda: run_panel(
            0.1, BroadcastFusedOperator,
            "Figure 12(d): elapsed vs nodes (density 0.1, SystemDS uses BFO)",
            "SystemDS(B): 3870/2769/1786 s, FuseME: 272/175/97 s at 2/4/8 "
            "nodes — both drop with nodes, gap slightly widens",
        ),
        rounds=1, iterations=1,
    )
    for name, by_nodes in series.items():
        times = [by_nodes[n].elapsed_seconds for n in (2, 4, 8)]
        assert times[0] > times[1] > times[2], name
    for nodes in (2, 4, 8):
        assert (
            series["FuseME"][nodes].elapsed_seconds
            < series["SystemDS"][nodes].elapsed_seconds
        )


def test_fig12h_scaling_rfo(benchmark):
    series = benchmark.pedantic(
        lambda: run_panel(
            0.2, ReplicationFusedOperator,
            "Figure 12(h): elapsed vs nodes (density 0.2, SystemDS uses RFO)",
            "SystemDS(R): 4186/3416/2170 s, FuseME: 571/364/225 s at 2/4/8 "
            "nodes",
        ),
        rounds=1, iterations=1,
    )
    for name, by_nodes in series.items():
        times = [by_nodes[n].elapsed_seconds for n in (2, 4, 8)]
        assert times[0] > times[1] > times[2], name
    ratio_2 = (
        series["SystemDS"][2].elapsed_seconds
        / series["FuseME"][2].elapsed_seconds
    )
    ratio_8 = (
        series["SystemDS"][8].elapsed_seconds
        / series["FuseME"][8].elapsed_seconds
    )
    assert ratio_8 > 1.0 and ratio_2 > 1.0
