"""Figure 13(a-c): Cost(), transferred data and elapsed time vs (P, Q, R).

The paper sweeps (P, R) at fixed Q=4 on a ``1M x 5K x 1M`` instance and
shows all three curves dip at the optimizer's choice (P*=5, Q*=4, R*=5).
We use a scaled instance with the same character (a dense-ish X and a
multi-block common dimension, so the optimum sits in the interior of the
(P, R) plane), sweep (P, R) at fixed Q*, and assert the same property: the
optimizer's pick minimizes modeled cost, measured traffic and modeled
elapsed time over the swept, parallelism-feasible neighbourhood.
"""

import pytest

from repro.cluster import SimulatedCluster
from repro.core.cfo import CuboidFusedOperator
from repro.core.cost import CostModel
from repro.core.optimizer import optimize_parameters
from repro.core.plan import PartialFusionPlan
from repro.core.spaces import plan_layout
from repro.lang import DAG, log, matrix_input
from repro.matrix import rand_dense, rand_sparse
from repro.utils.formatting import format_bytes, format_seconds, render_table

from common import BLOCK_SIZE, bench_config, paper_note

I_BLOCKS, J_BLOCKS, K_BLOCKS = 40, 40, 20
ROWS = I_BLOCKS * BLOCK_SIZE
COLS = J_BLOCKS * BLOCK_SIZE
COMMON = K_BLOCKS * BLOCK_SIZE
DENSITY = 0.01


def setup():
    inputs = {
        "X": rand_sparse(ROWS, COLS, DENSITY, BLOCK_SIZE, seed=0),
        "U": rand_dense(ROWS, COMMON, BLOCK_SIZE, seed=1),
        "V": rand_dense(COLS, COMMON, BLOCK_SIZE, seed=2),
    }
    x = matrix_input("X", ROWS, COLS, BLOCK_SIZE, density=DENSITY)
    u = matrix_input("U", ROWS, COMMON, BLOCK_SIZE)
    v = matrix_input("V", COLS, COMMON, BLOCK_SIZE)
    dag = DAG((x * log(u @ v.T + 1e-8)).node)
    plan = PartialFusionPlan(set(dag.operators()), dag)
    return plan, inputs


def test_fig13_parameter_sweep(benchmark):
    config = bench_config(task_memory_budget=32 * 1024 * 1024)
    plan, inputs = setup()
    layout = plan_layout(plan)
    model = CostModel(config)
    best = optimize_parameters(plan, config, tree=layout.tree)
    p_star, q_star, r_star = best.pqr
    slots = config.cluster.total_tasks

    # sweep (P, R) at fixed Q*, like the paper's x-axis, keeping only
    # parallelism-feasible candidates (P*Q*R >= T)
    candidates = []
    for dp in (-4, -2, 0, 2, 4, 6):
        for dr in (-2, -1, 0, 1, 2):
            p = p_star + dp
            r = r_star + dr
            if not (1 <= p <= I_BLOCKS and 1 <= r <= K_BLOCKS):
                continue
            if p * q_star * r < min(slots, I_BLOCKS * J_BLOCKS * K_BLOCKS):
                continue
            if (p, r) not in candidates:
                candidates.append((p, r))

    def run_sweep():
        rows = []
        measured = {}
        for p, r in candidates:
            pqr = (p, q_star, r)
            cost = model.evaluate(plan, layout.tree, pqr)
            cluster = SimulatedCluster(config)
            CuboidFusedOperator(plan, config, pqr=pqr).execute(cluster, inputs)
            measured[pqr] = (
                cluster.metrics.comm_bytes,
                cluster.metrics.elapsed_seconds,
            )
            rows.append([
                f"({p},{q_star},{r})",
                f"{cost.cost_seconds * 1e3:.2f} ms" if cost.feasible else "inf",
                format_bytes(cluster.metrics.comm_bytes),
                format_seconds(cluster.metrics.elapsed_seconds),
                "*" if pqr == best.pqr else "",
            ])
        return rows, measured

    rows, measured = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print(f"\nFigure 13(a-c): (P, R) sweep at Q*={q_star}; optimum {best.pqr}")
    print(render_table(
        ["(P,Q,R)", "Cost() model", "measured traffic", "modeled elapsed", "opt"],
        rows,
    ))
    paper_note("paper optimum (5,4,5): Cost 372, traffic 252 GB, 18.3 min — "
               "all three curves dip at the optimizer's choice")

    assert best.pqr in measured
    best_comm, best_time = measured[best.pqr]
    for pqr, (comm, seconds) in measured.items():
        assert best_comm <= comm * 1.02, (pqr, comm, best_comm)
        assert best_time <= seconds * 1.10, (pqr, seconds, best_time)
    # the optimum is interior in R (the cuboid advantage the paper shows)
    assert r_star > 1 or K_BLOCKS == 1
