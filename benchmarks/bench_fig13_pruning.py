"""Figure 13(d): optimizer latency, exhaustive vs pruned search.

The paper's exhaustive search grows with the voxel count I*J*K (96 ms at 20K
voxels to 1395 ms at 2M) while the pruned method stays flat at 3-4 ms.  We
sweep voxel counts and assert the same divergence: exhaustive wall time grows
superlinearly, pruned stays near-constant, and both return parameters of the
same cost.
"""

import pytest

from repro.core.optimizer import optimize_parameters
from repro.core.plan import PartialFusionPlan
from repro.lang import DAG, log, matrix_input
from repro.utils.formatting import render_table

from common import BLOCK_SIZE, bench_config, paper_note

#: (I, J, K) block extents; voxels = I*J*K.
SPACES = [(10, 10, 4), (16, 12, 6), (24, 18, 8), (32, 24, 10), (40, 30, 12)]


def plan_for(extents):
    i_blocks, j_blocks, k_blocks = extents
    rows = i_blocks * BLOCK_SIZE
    cols = j_blocks * BLOCK_SIZE
    common = k_blocks * BLOCK_SIZE
    x = matrix_input("X", rows, cols, BLOCK_SIZE, density=0.01)
    u = matrix_input("U", rows, common, BLOCK_SIZE)
    v = matrix_input("V", cols, common, BLOCK_SIZE)
    dag = DAG((x * log(u @ v.T + 1e-8)).node)
    return PartialFusionPlan(set(dag.operators()), dag)


def test_fig13d_pruning(benchmark):
    config = bench_config()

    def run_sweep():
        rows = []
        series = []
        for extents in SPACES:
            plan = plan_for(extents)
            exhaustive = optimize_parameters(plan, config, method="exhaustive")
            pruned = optimize_parameters(plan, config, method="pruned")
            voxels = extents[0] * extents[1] * extents[2]
            rows.append([
                f"{voxels:,}",
                f"{exhaustive.elapsed_seconds * 1e3:.1f} ms",
                f"{pruned.elapsed_seconds * 1e3:.1f} ms",
                f"{exhaustive.evaluations:,}",
                f"{pruned.evaluations:,}",
            ])
            series.append((voxels, exhaustive, pruned))
        return rows, series

    rows, series = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print("\nFigure 13(d): optimizer latency vs search-space size")
    print(render_table(
        ["voxels", "exhaustive", "pruned", "evals (exh)", "evals (pruned)"],
        rows,
    ))
    paper_note("exhaustive: 96 ms -> 1395 ms over 20K -> 2M voxels; "
               "pruned: flat 3-4 ms")

    # exhaustive work grows with the space; pruned stays near-flat
    exh_evals = [s[1].evaluations for s in series]
    pruned_evals = [s[2].evaluations for s in series]
    assert exh_evals == sorted(exh_evals)
    assert exh_evals[-1] / exh_evals[0] > 20
    assert pruned_evals[-1] / max(pruned_evals[0], 1) < 15
    assert pruned_evals[-1] < exh_evals[-1] / 10
    # both find parameters of comparable quality
    for voxels, exhaustive, pruned in series:
        assert pruned.cost.cost_seconds <= exhaustive.cost.cost_seconds * 1.01
    # pruned is much faster at the largest space
    last = series[-1]
    assert last[2].elapsed_seconds < last[1].elapsed_seconds / 5
