"""Figure 15: AutoEncoder training — SystemDS vs TensorFlow(XLA) vs FuseME.

Four panels, scaled (paper dimension / 12.5 for the network, inputs scaled to
keep epochs tractable; batch sizes are multiples of the block size):

* (a) epoch time vs input size, large batch;
* (b) epoch time vs input size, small batch (more steps -> slower epochs);
* (c) epoch time vs batch size at a fixed input;
* (d) epoch time vs network width (h1, h2).

Expected shape: FuseME < TensorFlow < SystemDS on every configuration (the
paper's 6.05x over SystemDS / 3.32x over TensorFlow at n=10K), epoch time
decreasing with batch size and increasing with width; SystemDS dies with
O.O.M. on the largest configurations (Figures 15(a-c)).
"""

import pytest

from repro.baselines import LocalXLAEngine, SystemDSLikeEngine
from repro.core import FuseMEEngine
from repro.errors import TaskOutOfMemoryError
from repro.matrix import rand_dense
from repro.utils.formatting import format_seconds, render_table
from repro.workloads import AutoEncoder, AutoEncoderShapes

from common import BLOCK_SIZE, bench_config, paper_note

H1, H2 = 125, 25          # the paper's h1=500, h2=2 (scaled, >= one block)
BATCH_LARGE = 200         # the paper's 1024
BATCH_SMALL = 100         # the paper's 512

ENGINES = [
    ("SystemDS", SystemDSLikeEngine),
    ("TensorFlow", LocalXLAEngine),
    ("FuseME", FuseMEEngine),
]


def fig15_config():
    """Cluster config with hardware scaled down alongside the problem.

    The AutoEncoder is scaled ~25x in every dimension (~600x in flops); on
    paper-scale bandwidths the modeled compute would vanish against the
    fixed Spark scheduling overhead, flipping the comparison into a pure
    overhead contest the paper does not measure.  Scaling the modeled
    bandwidths by a similar factor keeps the workload compute-bound, which
    is the regime Figure 15 compares (one strong node vs an 8-node cluster
    with fusion differences).
    """
    config = bench_config(
        num_nodes=4, tasks_per_node=6,
        task_memory_budget=3 * 1024 * 1024,
    )
    return config.with_cluster(
        compute_bandwidth=25e6,       # 25 MFLOPS per node (scaled)
        network_bandwidth=8e6,        # 8 MB/s (scaled)
        task_launch_overhead=0.02,
    )


def run_epoch(engine_cls, features, batch, h1=H1, h2=H2, rows=None):
    config = fig15_config()
    rows = rows or features
    shapes = AutoEncoderShapes(features=features, hidden1=h1, hidden2=h2)
    ae = AutoEncoder(shapes, batch_size=batch, block_size=BLOCK_SIZE)
    data = rand_dense(rows, features, BLOCK_SIZE, seed=0)
    try:
        run = ae.run_epoch(engine_cls(config), data, seed=1)
    except TaskOutOfMemoryError:
        return None
    return run.elapsed_seconds


def sweep(points, title, paper_text):
    rows = []
    collected = {}
    for label, kwargs in points:
        cells = [label]
        for name, engine_cls in ENGINES:
            seconds = run_epoch(engine_cls, **kwargs)
            collected[(label, name)] = seconds
            cells.append("O.O.M." if seconds is None else format_seconds(seconds))
        rows.append(cells)
    print(f"\n{title}")
    print(render_table(["config", *[n for n, _ in ENGINES]], rows))
    paper_note(paper_text)
    return collected


def check_ordering(collected, points):
    for label, _ in points:
        fuseme = collected[(label, "FuseME")]
        assert fuseme is not None
        for other in ("SystemDS", "TensorFlow"):
            value = collected[(label, other)]
            if value is not None:
                assert fuseme <= value * 1.02, (label, other)


def test_fig15a_input_size_large_batch(benchmark):
    points = [
        ("n=200", dict(features=200, batch=BATCH_LARGE)),
        ("n=400", dict(features=400, batch=BATCH_LARGE)),
        ("n=800", dict(features=800, batch=BATCH_LARGE)),
    ]
    collected = benchmark.pedantic(
        lambda: sweep(
            points,
            "Figure 15(a): epoch time vs input size (batch 1024-equiv)",
            "paper: SystemDS 9.2/330.9/O.O.M., TensorFlow 10.4/182/2583, "
            "FuseME 7.5/54.7/... — FuseME 6.05x/3.32x faster at n=10K",
        ),
        rounds=1, iterations=1,
    )
    check_ordering(collected, points)
    # epoch time grows with input size for every surviving engine
    for name, _ in ENGINES:
        series = [collected[(p[0], name)] for p in points]
        alive = [s for s in series if s is not None]
        assert alive == sorted(alive)


def test_fig15b_input_size_small_batch(benchmark):
    points = [
        ("n=200", dict(features=200, batch=BATCH_SMALL)),
        ("n=400", dict(features=400, batch=BATCH_SMALL)),
        ("n=800", dict(features=800, batch=BATCH_SMALL)),
    ]
    collected = benchmark.pedantic(
        lambda: sweep(
            points,
            "Figure 15(b): epoch time vs input size (batch 512-equiv)",
            "paper: smaller batches mean more gradient steps per epoch, so "
            "every system slows relative to (a)",
        ),
        rounds=1, iterations=1,
    )
    check_ordering(collected, points)
    # more steps than (a): small-batch epochs are slower at equal n
    large = run_epoch(FuseMEEngine, features=400, batch=BATCH_LARGE)
    small = collected[("n=400", "FuseME")]
    assert small > large


def test_fig15c_batch_size(benchmark):
    points = [
        ("batch=50", dict(features=400, batch=50)),
        ("batch=100", dict(features=400, batch=100)),
        ("batch=200", dict(features=400, batch=200)),
        ("batch=400", dict(features=400, batch=400)),
    ]
    collected = benchmark.pedantic(
        lambda: sweep(
            points,
            "Figure 15(c): epoch time vs batch size (input 10K-equiv)",
            "paper: 577.7 -> 16.5 s for FuseME-over-batches; SystemDS "
            "O.O.M. at the largest batches",
        ),
        rounds=1, iterations=1,
    )
    check_ordering(collected, points)
    fuseme_series = [collected[(p[0], "FuseME")] for p in points]
    assert fuseme_series == sorted(fuseme_series, reverse=True)


def test_fig15d_network_width(benchmark):
    points = [
        ("(125,25)", dict(features=400, batch=BATCH_LARGE, h1=125, h2=25)),
        ("(250,50)", dict(features=400, batch=BATCH_LARGE, h1=250, h2=50)),
        ("(500,100)", dict(features=400, batch=BATCH_LARGE, h1=500, h2=100)),
    ]
    collected = benchmark.pedantic(
        lambda: sweep(
            points,
            "Figure 15(d): epoch time vs (h1, h2) (input 10K-equiv)",
            "paper: FuseME 54.7 -> 207 s over (500,2) -> (5000,20); beats "
            "TensorFlow by 3.3x-8.8x; SystemDS O.O.M. beyond (500,2)",
        ),
        rounds=1, iterations=1,
    )
    check_ordering(collected, points)
    fuseme_series = [collected[(p[0], "FuseME")] for p in points]
    assert fuseme_series == sorted(fuseme_series)
