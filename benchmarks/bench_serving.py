"""Closed-loop multi-tenant serving benchmark (not a paper figure).

Three tenants — two GNMF-style (the paper's NMF micro-query at different
shapes) and one PageRank-style — each drive a closed loop against one
shared :class:`~repro.serving.MatrixService`: submit, wait, submit again,
for a fixed number of rounds.  The same replay runs twice, with the result
cache on (defaults) and off, to price what the serving layer's caching is
worth on an iterative multi-tenant workload.

Verifies the serving invariants while it measures:

* every served result is bit-identical to a standalone ``engine.execute()``
  on a fresh engine, with identical modeled seconds/bytes;
* both service runs agree with each other;
* nothing was shed, timed out, or failed;
* with caching on, repeat rounds hit the result cache.

With ``--replicas 1,2,4`` the bench switches to the scale-out replay:
eight tenants drive closed loops through :class:`AsyncMatrixService`
against replica pools of each requested size (result cache off), hard-
asserting that every served output and its modeled metrics are
bit-identical across replica counts and to standalone execution, and
recording QPS per count.  ``--assert-scaling R`` additionally requires
QPS(max replicas) >= R x QPS(min replicas) — enforced only when
``os.cpu_count()`` covers the peak replica count, since replica
dispatchers are Python threads and scaling is unmeasurable on fewer
cores (the JSON records the skip reason).

Writes ``BENCH_serving.json`` next to this script, appends the summary
table to ``RESULTS.txt``, and exits non-zero if any invariant fails —
CI runs this with ``--quick`` as a smoke test.
"""

from __future__ import annotations

import argparse
import asyncio
import io
import json
import os
import sys
import threading
import time
from contextlib import redirect_stdout
from pathlib import Path

import numpy as np

from repro.config import ServiceConfig
from repro.core import FuseMEEngine
from repro.lang import log, matrix_input
from repro.matrix import rand_dense, rand_sparse
from repro.serving import AsyncMatrixService, MatrixService

from common import BLOCK_SIZE, bench_config

EPS = 1e-8


def serving_config(**options):
    """The wall-clock bench cluster (4 nodes x 6 tasks, 6 MiB budget)."""
    return bench_config(
        num_nodes=4, tasks_per_node=6,
        task_memory_budget=6 * 1024 * 1024,
        **options,
    )


def gnmf_workload(name, rows, cols, common, seed):
    x = matrix_input("X", rows, cols, BLOCK_SIZE, density=0.05)
    u = matrix_input("U", rows, common, BLOCK_SIZE)
    v = matrix_input("V", cols, common, BLOCK_SIZE)
    query = x * log(u @ v.T + EPS)
    inputs = {
        "X": rand_sparse(rows, cols, 0.05, BLOCK_SIZE, seed=seed),
        "U": rand_dense(rows, common, BLOCK_SIZE, seed=seed + 1),
        "V": rand_dense(cols, common, BLOCK_SIZE, seed=seed + 2),
    }
    return name, query, inputs


def pagerank_workload(name, n, seed):
    a = matrix_input("A", n, n, BLOCK_SIZE, density=0.01)
    r = matrix_input("R", n, 1, BLOCK_SIZE)
    query = (a @ r) * 0.85 + 0.15 / n
    inputs = {
        "A": rand_sparse(n, n, 0.01, BLOCK_SIZE, seed=seed),
        "R": rand_dense(n, 1, BLOCK_SIZE, seed=seed + 1),
    }
    return name, query, inputs


def make_tenants(quick):
    if quick:
        return [
            gnmf_workload("gnmf_small", 250, 250, 50, seed=107),
            gnmf_workload("gnmf_wide", 250, 375, 50, seed=207),
            pagerank_workload("pagerank", 400, seed=307),
        ]
    return [
        gnmf_workload("gnmf_small", 500, 500, 100, seed=107),
        gnmf_workload("gnmf_wide", 500, 750, 100, seed=207),
        pagerank_workload("pagerank", 1000, seed=307),
    ]


def run_replay(tenants, rounds, result_cache_entries):
    """Drive every tenant's closed loop on one shared service."""
    engine = FuseMEEngine(serving_config())
    service = MatrixService(
        engine=engine,
        config=ServiceConfig(
            max_concurrency=3,
            result_cache_entries=result_cache_entries,
            queue_timeout_seconds=600.0,
        ),
    )
    served = {name: [] for name, _, _ in tenants}
    errors = []

    def loop(name, query, inputs):
        try:
            session = service.open_session(name).bind_many(inputs)
            for _ in range(rounds):
                served[name].append(session.execute(query, timeout=600.0))
        except Exception as exc:  # noqa: BLE001 - reported as bench failure
            errors.append(f"{name}: {type(exc).__name__}: {exc}")

    start = time.perf_counter()
    threads = [
        threading.Thread(target=loop, args=spec, name=f"tenant-{spec[0]}")
        for spec in tenants
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    status = service.status()
    service.close()
    return served, wall, status, errors


def check_invariants(tenants, runs, references, rounds):
    """Every serving invariant the bench guards; returns failure strings."""
    failures = []
    for label, (served, _, status, errors) in runs.items():
        failures.extend(f"{label}: {error}" for error in errors)
        for key in ("shed", "timed_out", "failed"):
            if status[key]:
                failures.append(f"{label}: {status[key]} queries {key}")
        for name, _, _ in tenants:
            results = served[name]
            if len(results) != rounds:
                failures.append(
                    f"{label}/{name}: served {len(results)}/{rounds} rounds"
                )
                continue
            reference = references[name]
            for index, result in enumerate(results):
                if not np.array_equal(
                    result.output(0).to_numpy(), reference.output(0).to_numpy()
                ):
                    failures.append(
                        f"{label}/{name}: round {index} output diverged "
                        "from standalone execute()"
                    )
                    break
                if result.metrics.totals() != reference.metrics.totals():
                    failures.append(
                        f"{label}/{name}: round {index} modeled metrics "
                        "diverged from standalone execute()"
                    )
                    break
    cached_status = runs["cached"][2]
    if cached_status["cache_hits"] == 0:
        failures.append("cached: result cache never hit on repeat rounds")
    return failures


# -- replica scale-out mode (--replicas) ------------------------------------


def make_scale_tenants(quick):
    """A mixed 8-tenant population with distinct seeds (so every tenant's
    outputs differ and routing spread actually matters)."""
    if quick:
        return [
            gnmf_workload("gnmf_a", 250, 250, 50, seed=1017),
            gnmf_workload("gnmf_b", 250, 250, 50, seed=2017),
            gnmf_workload("gnmf_c", 250, 250, 50, seed=3017),
            gnmf_workload("gnmf_wide_a", 250, 375, 50, seed=4017),
            gnmf_workload("gnmf_wide_b", 250, 375, 50, seed=5017),
            pagerank_workload("pagerank_a", 400, seed=6017),
            pagerank_workload("pagerank_b", 400, seed=7017),
            pagerank_workload("pagerank_c", 400, seed=8017),
        ]
    return [
        gnmf_workload("gnmf_a", 500, 500, 100, seed=1017),
        gnmf_workload("gnmf_b", 500, 500, 100, seed=2017),
        gnmf_workload("gnmf_c", 500, 500, 100, seed=3017),
        gnmf_workload("gnmf_wide_a", 500, 750, 100, seed=4017),
        gnmf_workload("gnmf_wide_b", 500, 750, 100, seed=5017),
        pagerank_workload("pagerank_a", 1000, seed=6017),
        pagerank_workload("pagerank_b", 1000, seed=7017),
        pagerank_workload("pagerank_c", 1000, seed=8017),
    ]


def run_scale_replay(tenants, rounds, num_replicas):
    """Replay every tenant's closed loop through the async front end
    against a *num_replicas* pool (result cache off — every query truly
    executes, so QPS measures engine throughput, not cache hits)."""
    service = AsyncMatrixService(
        FuseMEEngine(serving_config()),
        ServiceConfig(
            num_replicas=num_replicas,
            max_concurrency=3,
            result_cache_entries=0,
            queue_timeout_seconds=600.0,
        ),
    )
    served = {name: [] for name, _, _ in tenants}
    errors = []

    async def loop(name, query, inputs):
        try:
            session = service.open_session(name).bind_many(inputs)
            for _ in range(rounds):
                served[name].append(
                    await session.execute(query, shed=False)
                )
        except Exception as exc:  # noqa: BLE001 - reported as bench failure
            errors.append(f"{name}: {type(exc).__name__}: {exc}")

    async def drive():
        start = time.perf_counter()
        await asyncio.gather(*[loop(*spec) for spec in tenants])
        wall = time.perf_counter() - start
        status = service.status()
        await service.close()
        return wall, status

    wall, status = asyncio.run(drive())
    return served, wall, status, errors


def check_scale_invariants(tenants, runs, references, rounds):
    """Bit-identical outputs and modeled metrics at every replica count,
    plus the multi-replica runs actually spreading across replicas."""
    failures = []
    for count, (served, _, status, errors) in runs.items():
        label = f"{count}-replica"
        failures.extend(f"{label}: {error}" for error in errors)
        for key in ("shed", "timed_out", "failed"):
            if status[key]:
                failures.append(f"{label}: {status[key]} queries {key}")
        for name, _, _ in tenants:
            results = served[name]
            if len(results) != rounds:
                failures.append(
                    f"{label}/{name}: served {len(results)}/{rounds} rounds"
                )
                continue
            reference = references[name]
            for index, result in enumerate(results):
                if not np.array_equal(
                    result.output(0).to_numpy(),
                    reference.output(0).to_numpy(),
                ):
                    failures.append(
                        f"{label}/{name}: round {index} output diverged "
                        "from standalone execute()"
                    )
                    break
                if result.metrics.totals() != reference.metrics.totals():
                    failures.append(
                        f"{label}/{name}: round {index} modeled metrics "
                        "diverged from standalone execute()"
                    )
                    break
            replicas = {r.replica for r in results if r.replica}
            if len(replicas) > 1:
                failures.append(
                    f"{label}/{name}: tenant served by {sorted(replicas)} "
                    "(session affinity broken)"
                )
        if count > 1:
            busy = [r for r in status["replicas"] if r["served"]]
            if len(busy) < 2:
                failures.append(
                    f"{label}: only {len(busy)} replica(s) served queries "
                    "(routing never spread the tenants)"
                )
    return failures


def run_scale_mode(args, replica_counts) -> int:
    rounds = args.rounds or (2 if args.quick else 5)
    tenants = make_scale_tenants(args.quick)
    cpu_count = os.cpu_count() or 1

    references = {
        name: FuseMEEngine(serving_config()).execute(query, inputs)
        for name, query, inputs in tenants
    }

    runs = {
        count: run_scale_replay(tenants, rounds, count)
        for count in replica_counts
    }
    failures = check_scale_invariants(tenants, runs, references, rounds)

    total_queries = rounds * len(tenants)
    report = {
        "mode": "scale",
        "quick": args.quick,
        "rounds": rounds,
        "tenants": len(tenants),
        "cpu_count": cpu_count,
        "replicas": {},
    }
    print(f"serving scale-out replay: {len(tenants)} tenants x {rounds} "
          f"rounds ({total_queries} queries), result cache off, "
          f"{cpu_count} CPU core(s)")
    qps = {}
    for count, (_, wall, status, _) in runs.items():
        qps[count] = total_queries / wall
        latency = status["latency"]
        report["replicas"][str(count)] = {
            "wall_seconds": round(wall, 4),
            "queries_per_second": round(qps[count], 2),
            "served": status["served"],
            "latency_p50_ms": round(latency["p50"] * 1e3, 3),
            "latency_p95_ms": round(latency["p95"] * 1e3, 3),
            "per_replica_served": [
                r["served"] for r in status["replicas"]
            ],
        }
        print(f"  {count} replica(s): wall {wall:7.3f}s  "
              f"{qps[count]:7.2f} q/s  "
              f"served per replica {report['replicas'][str(count)]['per_replica_served']}")

    base = min(replica_counts)
    peak = max(replica_counts)
    scaling = qps[peak] / qps[base]
    report["qps_scaling"] = round(scaling, 3)
    print(f"  QPS scaling at {peak} replicas vs {base}: {scaling:.2f}x")

    # The QPS target needs real cores: replica dispatchers are Python
    # threads, so on fewer cores than replicas the GIL serializes them and
    # wall-clock scaling is unmeasurable (the determinism invariants above
    # are asserted unconditionally).  Same policy as the procpool smoke:
    # report honestly, gate the assertion on hardware.
    if args.assert_scaling is not None:
        if cpu_count >= peak:
            report["scaling_asserted"] = True
            if scaling < args.assert_scaling:
                failures.append(
                    f"scale: {scaling:.2f}x QPS at {peak} replicas, "
                    f"required >= {args.assert_scaling:.2f}x"
                )
        else:
            report["scaling_asserted"] = False
            report["scaling_skip_reason"] = (
                f"only {cpu_count} CPU core(s) for {peak} replicas"
            )
            print(f"  scaling assertion skipped: "
                  f"{report['scaling_skip_reason']}")

    print("  invariants: outputs and modeled metrics identical to "
          "standalone execute() at every replica count"
          + (" -- OK" if not failures else " -- FAILED"))

    out_path = Path(args.output) if args.output else (
        Path(__file__).resolve().parent / "BENCH_serving.json"
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller shapes / fewer rounds (CI smoke)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="closed-loop rounds per tenant")
    parser.add_argument("--output", default=None,
                        help="path of the JSON report "
                             "(default: BENCH_serving.json next to this script)")
    parser.add_argument("--replicas", default=None,
                        help="comma-separated replica counts (e.g. 1,2,4): "
                             "run the scale-out replay through "
                             "AsyncMatrixService instead of the cache replay")
    parser.add_argument("--assert-scaling", type=float, default=None,
                        help="fail unless QPS at max(--replicas) is at least "
                             "this multiple of QPS at min(--replicas); only "
                             "enforced when os.cpu_count() covers the peak "
                             "replica count")
    args = parser.parse_args()
    if args.replicas is not None:
        counts = sorted({int(c) for c in args.replicas.split(",") if c.strip()})
        if not counts or counts[0] < 1:
            parser.error("--replicas needs positive integers, e.g. 1,2,4")
        return run_scale_mode(args, counts)
    rounds = args.rounds or (4 if args.quick else 10)
    tenants = make_tenants(args.quick)

    references = {
        name: FuseMEEngine(serving_config()).execute(query, inputs)
        for name, query, inputs in tenants
    }

    runs = {
        "cached": run_replay(tenants, rounds, result_cache_entries=128),
        "uncached": run_replay(tenants, rounds, result_cache_entries=0),
    }
    failures = check_invariants(tenants, runs, references, rounds)

    report = {"quick": args.quick, "rounds": rounds, "runs": {}}
    total_queries = rounds * len(tenants)
    print(f"serving replay: {len(tenants)} tenants x {rounds} rounds "
          f"({total_queries} queries), 3-way concurrency")
    for label, (_, wall, status, _) in runs.items():
        latency = status["latency"]
        entry = {
            "wall_seconds": round(wall, 4),
            "queries_per_second": round(total_queries / wall, 2),
            "served": status["served"],
            "shed": status["shed"],
            "timed_out": status["timed_out"],
            "failed": status["failed"],
            "latency_p50_ms": round(latency["p50"] * 1e3, 3),
            "latency_p95_ms": round(latency["p95"] * 1e3, 3),
            "result_cache": status["result_cache"],
            "plan_cache": status["plan_cache"],
            "slice_cache": status["slice_cache"],
            "cluster_stages": status["cluster"]["num_stages"],
        }
        report["runs"][label] = entry
        hit_rate = status["result_cache"]["hit_rate"]
        print(f"  {label:9s} wall {wall:7.3f}s  "
              f"{entry['queries_per_second']:7.2f} q/s  "
              f"p50 {entry['latency_p50_ms']:8.2f}ms  "
              f"p95 {entry['latency_p95_ms']:8.2f}ms  "
              f"result-cache hit rate {hit_rate:.2f}")
    speedup = (runs["uncached"][1] / runs["cached"][1])
    report["cached_speedup"] = round(speedup, 2)
    print(f"  result cache is worth {speedup:.2f}x wall-clock "
          f"on this {rounds}-round replay")
    print("  invariants: outputs and modeled metrics identical to "
          "standalone execute() for every served query"
          + (" -- OK" if not failures else " -- FAILED"))

    out_path = Path(args.output) if args.output else (
        Path(__file__).resolve().parent / "BENCH_serving.json"
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        exit_code = main()
    sys.stdout.write(buffer.getvalue())
    results = Path(__file__).parent / "RESULTS.txt"
    with results.open("a", encoding="utf-8") as fh:
        fh.write("\nbench_serving\n=============\n")
        fh.write(buffer.getvalue())
    print(f"appended to {results}")
    sys.exit(exit_code)
