"""Figure 14: GNMF on MovieLens / Netflix / YahooMusic (scaled stand-ins).

Panels (a-c, e-g) accumulate elapsed time over iterations for the factor
dimensions k=200 and k=1000; panels (d, h) report per-iteration shuffled
data.  We run 3 iterations (per-iteration cost is stationary) on matrices
with Table 2's shapes and densities scaled by ``DATASET_SCALE``, and factor
dimensions scaled to keep the paper's 1:5 ratio (k=50 and k=250 blocks-wise).

Expected shape (the paper's findings):

* FuseME < DistME < SystemDS < MatFast in elapsed time on every dataset;
* FuseME moves the least data (up to 59.8x less than MatFast on YahooMusic);
* MatFast hits O.O.M. on YahooMusic at the large factor dimension;
* the FuseME advantage grows with k.
"""

import pytest

from repro.baselines import DistMELikeEngine, MatFastLikeEngine, SystemDSLikeEngine
from repro.core import FuseMEEngine
from repro.datasets import load_real_dataset
from repro.errors import TaskOutOfMemoryError
from repro.utils.formatting import format_bytes, format_seconds, render_table
from repro.workloads import GNMF

from common import BLOCK_SIZE, bench_config, paper_note

DATASET_SCALE = 500
ITERATIONS = 3
K_SMALL, K_LARGE = 50, 250  # the paper's k=200 and k=1000, 1:5 ratio

def fig14_config():
    """A cluster sized to the scaled datasets.

    Scaling the matrices by 500 while keeping 96 task slots would leave the
    parallelism floor dominating every plan; 24 slots restores the paper's
    matrix-to-cluster proportions.  The task budget is sized so the paper's
    single O.O.M. (MatFast broadcasting YahooMusic's large factor matrix)
    reproduces and nothing else fails.
    """
    return bench_config(
        num_nodes=4, tasks_per_node=6,
        task_memory_budget=6 * 1024 * 1024,
    )


ENGINES = [
    ("MatFast", MatFastLikeEngine),
    ("SystemDS", SystemDSLikeEngine),
    ("DistME", DistMELikeEngine),
    ("FuseME", FuseMEEngine),
]


def run_dataset(name: str, factors: int, config):
    x = load_real_dataset(name, scale=DATASET_SCALE, block_size=BLOCK_SIZE)
    users, items = x.shape
    gnmf = GNMF(users, items, factors, x.density, BLOCK_SIZE)
    outcomes = {}
    for engine_name, engine_cls in ENGINES:
        try:
            run = gnmf.run(engine_cls(config), x, iterations=ITERATIONS)
        except TaskOutOfMemoryError:
            outcomes[engine_name] = None
            continue
        outcomes[engine_name] = run
    return outcomes


def report(factors, config, paper_text):
    time_rows, comm_rows = [], []
    collected = {}
    for dataset in ("MovieLens", "Netflix", "YahooMusic"):
        outcomes = run_dataset(dataset, factors, config)
        collected[dataset] = outcomes
        time_cells, comm_cells = [dataset], [dataset]
        for engine_name, _ in ENGINES:
            run = outcomes[engine_name]
            if run is None:
                time_cells.append("O.O.M.")
                comm_cells.append("O.O.M.")
            else:
                time_cells.append(format_seconds(run.accumulated_seconds[-1]))
                comm_cells.append(
                    format_bytes(run.total_comm_bytes // ITERATIONS)
                )
        time_rows.append(time_cells)
        comm_rows.append(comm_cells)

    headers = ["dataset", *[n for n, _ in ENGINES]]
    print(f"\nFigure 14 — GNMF, k={factors} "
          f"(accumulated time over {ITERATIONS} iterations)")
    print(render_table(headers, time_rows))
    print(f"\nFigure 14 — GNMF, k={factors} (shuffled data per iteration)")
    print(render_table(headers, comm_rows))
    paper_note(paper_text)
    return collected


def check_ordering(collected, allow_oom_for=()):
    for dataset, outcomes in collected.items():
        fuseme = outcomes["FuseME"]
        assert fuseme is not None, f"FuseME must not fail on {dataset}"
        for other_name in ("MatFast", "SystemDS", "DistME"):
            other = outcomes[other_name]
            if other is None:
                assert (dataset, other_name) in allow_oom_for or True
                continue
            assert (
                fuseme.accumulated_seconds[-1]
                <= other.accumulated_seconds[-1] * 1.02
            ), (dataset, other_name)
            # 10% slack: on the tiniest scaled dataset (MovieLens at 23x5
            # blocks) the parallelism floor adds a few percent of traffic
            # that disappears at paper scale
            assert fuseme.total_comm_bytes <= other.total_comm_bytes * 1.10, (
                dataset, other_name,
            )


def test_fig14_small_factor(benchmark):
    config = fig14_config()
    collected = benchmark.pedantic(
        lambda: report(
            K_SMALL, config,
            "k=200: FuseME beats MatFast/SystemDS/DistME by 7.4x/2.9x/2.2x "
            "(MovieLens) and reduces YahooMusic traffic by 59.8x/23.9x/7.9x",
        ),
        rounds=1, iterations=1,
    )
    check_ordering(collected)


def test_fig14_large_factor(benchmark):
    config = fig14_config()
    collected = benchmark.pedantic(
        lambda: report(
            K_LARGE, config,
            "k=1000: gaps grow (6.5x vs SystemDS, 2.7x vs DistME on "
            "YahooMusic); MatFast fails with O.O.M. on YahooMusic",
        ),
        rounds=1, iterations=1,
    )
    check_ordering(collected)
    # the paper's O.O.M.: MatFast cannot broadcast the large factor matrix
    assert collected["YahooMusic"]["MatFast"] is None
