"""Wall-clock A/B of dependency-driven unit dispatch (not a paper figure).

Multi-root queries lower to physical plans whose first wave holds several
independent units; with ``local_parallelism > 1`` the scheduler dispatches a
wave's units concurrently — on threads (``execution_backend="thread"``, the
default) or on worker processes fed through the shared-memory block store
(``execution_backend="process"``, DESIGN.md §12).  This benchmark runs each
multi-root workload on identical inputs once sequentially
(``local_parallelism=1``) and once per backend (``local_parallelism=4``),
reports real elapsed time per backend, and verifies concurrency is
invisible everywhere: bit-identical outputs and identical modeled totals
(seconds, bytes, flops, stages).

A backend that comes out *slower* than sequential is not a failure — thread
dispatch loses to the GIL on CPU-bound kernels, and process dispatch cannot
win on a single-core host — but it is reported: the backend's entry gains a
``"slowdown"`` warning field and the run's ``warnings`` list names it.
Exits non-zero only if a correctness check fails or the scheduler never
actually overlapped units — CI-runnable with ``--quick`` as a smoke test.
Writes ``BENCH_unit_parallel.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import FuseMEEngine
from repro.lang import log, matrix_input
from repro.matrix import rand_dense, rand_sparse
from repro.workloads.gnmf import gnmf_updates

from common import BLOCK_SIZE, bench_config

BACKENDS = ("thread", "process")
PARALLELISM = 4


def unit_config(**options):
    return bench_config(
        num_nodes=4, tasks_per_node=6,
        task_memory_budget=6 * 1024 * 1024,
        **options,
    )


def make_gnmf(quick):
    """The two-root GNMF update (Eq. 6): wave 0 holds the two standalone
    products, wave 1 the two division chains — max width 2."""
    rows, cols, k = (300, 225, 50) if quick else (750, 500, 100)
    q = gnmf_updates(rows, cols, k, density=0.05, block_size=BLOCK_SIZE)
    inputs = {
        "X": rand_sparse(rows, cols, 0.05, BLOCK_SIZE, seed=37),
        "U": rand_dense(k, cols, BLOCK_SIZE, seed=38, low=0.1, high=1.0),
        "V": rand_dense(rows, k, BLOCK_SIZE, seed=39, low=0.1, high=1.0),
    }
    return [q.u_update, q.v_update], inputs


def make_nmf4(quick):
    """Four independent NMF losses over disjoint inputs: one wave of four
    units with no edges between them — the widest plan in this suite."""
    rows, cols, k = (250, 250, 50) if quick else (500, 500, 100)
    roots, inputs = [], {}
    for i in range(4):
        x = matrix_input(f"X{i}", rows, cols, BLOCK_SIZE, density=0.05)
        u = matrix_input(f"U{i}", rows, k, BLOCK_SIZE)
        v = matrix_input(f"V{i}", cols, k, BLOCK_SIZE)
        roots.append(x * log(u @ v.T + 1e-8))
        inputs[f"X{i}"] = rand_sparse(rows, cols, 0.05, BLOCK_SIZE, seed=40 + i)
        inputs[f"U{i}"] = rand_dense(rows, k, BLOCK_SIZE, seed=50 + i)
        inputs[f"V{i}"] = rand_dense(cols, k, BLOCK_SIZE, seed=60 + i)
    return roots, inputs


WORKLOADS = [
    ("gnmf_two_root", make_gnmf),
    ("nmf_x4_independent", make_nmf4),
]


def run(query, inputs, parallelism, repeats, backend="thread"):
    engine = FuseMEEngine(unit_config(
        local_parallelism=parallelism, execution_backend=backend,
    ))
    try:
        if backend == "process":
            # spawn + numpy import cost is a one-time pool setup, not a
            # per-query cost: pay it before the clock starts
            engine._ensure_procpool().ensure_started()
        outputs, totals, result = [], [], None
        start = time.perf_counter()
        for _ in range(repeats):
            result = engine.execute(query, inputs)
            outputs.append([
                result.outputs[root].to_numpy() for root in result.dag.roots
            ])
            totals.append(result.metrics.totals())
        wall = time.perf_counter() - start
    finally:
        engine.close()
    return wall, totals, outputs, result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller shapes / fewer repeats (CI smoke)")
    parser.add_argument("--backend", choices=BACKENDS + ("all",),
                        default="all",
                        help="execution backend(s) to benchmark")
    parser.add_argument("--output", default=None,
                        help="path of the JSON report "
                             "(default: BENCH_unit_parallel.json next to "
                             "this script)")
    args = parser.parse_args()
    repeats = 3 if args.quick else 8
    backends = BACKENDS if args.backend == "all" else (args.backend,)

    cpus = os.cpu_count() or 1
    report = {
        "quick": args.quick, "parallelism": PARALLELISM, "cpu_count": cpus,
        "backends": list(backends), "workloads": {}, "warnings": [],
    }
    failures = []
    if cpus < 2:
        print(f"note: host has {cpus} CPU core(s) — unit dispatch overlaps "
              "(wave counters below) but no backend can improve CPU-bound "
              "wall-clock; speedups >1x need a multi-core host")
    for name, maker in WORKLOADS:
        query, inputs = maker(args.quick)
        seq_wall, seq_totals, seq_out, _ = run(query, inputs, 1, repeats)
        entry = {
            "sequential_wall_seconds": round(seq_wall, 4),
            "backends": {},
        }
        report["workloads"][name] = entry

        for backend in backends:
            par_wall, par_totals, par_out, result = run(
                query, inputs, PARALLELISM, repeats, backend=backend,
            )
            modeled_equal = seq_totals == par_totals
            bit_identical = all(
                np.array_equal(a, b)
                for run_s, run_p in zip(seq_out, par_out)
                for a, b in zip(run_s, run_p)
            )
            wave_width = result.metrics.counter("unit_wave_width_max")
            speedup = round(seq_wall / par_wall, 2)
            sub = {
                "wall_seconds": round(par_wall, 4),
                "speedup": speedup,
                "modeled_equal": modeled_equal,
                "bit_identical": bit_identical,
                "units": len(result.physical_plan.ops),
                "unit_waves": result.metrics.counter("unit_waves"),
                "unit_wave_width_max": wave_width,
            }
            if backend == "process":
                sub["procpool_fallbacks"] = result.metrics.counter(
                    "procpool_fallbacks"
                )
            if speedup < 1.0:
                sub["slowdown"] = (
                    f"{backend} dispatch ran {1 / max(speedup, 0.01):.2f}x "
                    f"slower than sequential on this host "
                    f"({cpus} CPU core(s))"
                )
                report["warnings"].append(f"{name}/{backend}: {sub['slowdown']}")
            entry["backends"][backend] = sub
            print(f"{name:20s} {backend:8s} seq {seq_wall:7.3f}s  "
                  f"par {par_wall:7.3f}s  {speedup:5.2f}x  "
                  f"{sub['units']} units / {sub['unit_waves']} waves "
                  f"(width {wave_width})  "
                  f"modeled_equal={modeled_equal}  "
                  f"bit_identical={bit_identical}"
                  + ("  [SLOWDOWN]" if "slowdown" in sub else ""))

            if not modeled_equal:
                failures.append(f"{name}/{backend}: modeled metrics changed")
            if not bit_identical:
                failures.append(f"{name}/{backend}: outputs differ")
            if wave_width < 2:
                failures.append(
                    f"{name}/{backend}: scheduler never overlapped units"
                )

    out_path = Path(args.output) if args.output else (
        Path(__file__).resolve().parent / "BENCH_unit_parallel.json"
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    for warning in report["warnings"]:
        print(f"WARN: {warning}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
