"""Ablation: sparsity exploitation inside the CFO on vs off.

With the Outer-style mask active, the main product is computed only at the
non-zero cells of the sparse multiplicand (SDDMM); without it every cell of
``U x V^T`` materializes inside the kernel.  The paper credits this for a
large part of FuseME's win over DistME (Section 6.2, "overall analysis") —
this ablation quantifies it on the NMF query across densities.
"""

import pytest

from repro.cluster import SimulatedCluster
from repro.core.cfo import CuboidFusedOperator
from repro.core.plan import PartialFusionPlan
from repro.lang import DAG, log, matrix_input
from repro.matrix import rand_dense, rand_sparse
from repro.utils.formatting import format_seconds, render_table

from common import BLOCK_SIZE, bench_config, paper_note

ROWS, COLS, COMMON = 1000, 750, 100


def build(density):
    x = matrix_input("X", ROWS, COLS, BLOCK_SIZE, density=density)
    u = matrix_input("U", ROWS, COMMON, BLOCK_SIZE)
    v = matrix_input("V", COLS, COMMON, BLOCK_SIZE)
    dag = DAG((x * log(u @ v.T + 1e-8)).node)
    plan = PartialFusionPlan(set(dag.operators()), dag)
    inputs = {
        "X": rand_sparse(ROWS, COLS, density, BLOCK_SIZE, seed=1),
        "U": rand_dense(ROWS, COMMON, BLOCK_SIZE, seed=2),
        "V": rand_dense(COLS, COMMON, BLOCK_SIZE, seed=3),
    }
    return plan, inputs


def run(plan, inputs, exploit: bool):
    config = bench_config(sparsity_exploitation=exploit)
    cluster = SimulatedCluster(config)
    CuboidFusedOperator(plan, config).execute(cluster, inputs)
    return cluster.metrics


def test_ablation_sparsity_exploitation(benchmark):
    densities = (0.001, 0.01, 0.1)

    def run_all():
        table = {}
        for density in densities:
            plan, inputs = build(density)
            table[density] = (
                run(plan, inputs, exploit=True),
                run(plan, inputs, exploit=False),
            )
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for density, (masked, dense) in table.items():
        rows.append([
            f"{density}",
            f"{masked.flops:,}",
            f"{dense.flops:,}",
            f"{dense.flops / max(masked.flops, 1):.1f}x",
            format_seconds(masked.elapsed_seconds),
            format_seconds(dense.elapsed_seconds),
        ])
    print("\nAblation — CFO sparsity exploitation (X * log(U x V^T + eps))")
    print(render_table(
        ["density", "flops (masked)", "flops (dense)", "saving",
         "elapsed (masked)", "elapsed (dense)"],
        rows,
    ))
    paper_note("sparsity exploitation computes the product only at nnz(X) "
               "cells; the saving scales with 1/density")

    savings = [
        dense.flops / max(masked.flops, 1)
        for masked, dense in table.values()
    ]
    # the sparser the mask, the bigger the saving, and it is substantial.
    # (At benchmark scale the modeled elapsed time is overhead-bound, so the
    # flop saving — the quantity the paper's sparsity-exploitation argument
    # is about — is what must show; at paper scale it dominates elapsed time.)
    assert savings == sorted(savings, reverse=True)
    assert savings[0] > 20
    for masked, dense in table.values():
        assert masked.flops < dense.flops
