"""Graph-pass pipeline benchmark (not a paper figure).

Part 1 — **pass payoff**: runs the GNMF update step through all five
engines with the graph-pass pipeline off and on, hard-asserting that

* outputs are bit-identical in both modes on every engine,
* on FuseME the optimized plan has strictly fewer units, and
* strictly lower modeled cost (elapsed seconds and consolidation bytes)

and records what each pass saved (the plan's own pass reports).

Part 2 — **cross-query CSE**: a two-tenant replay of one GNMF query
through a 2-replica :class:`MatrixService`.  The tenants are chosen to
route to *different* replicas, the second submits while the first is
mid-execution, and the service-wide subplan index must record at least
one in-flight adoption (``cse_hits >= 1``) — with per-query outputs
bit-identical to a CSE-disabled replay.

Writes ``BENCH_graph_passes.json`` next to this script, appends the
summary to ``RESULTS.txt``, and exits non-zero when any assertion fails —
CI runs this with ``--quick`` as the ``graph-passes-smoke`` job.
"""

from __future__ import annotations

import argparse
import io
import json
import sys
import time
from contextlib import redirect_stdout
from pathlib import Path

import numpy as np

from repro import (
    DistMELikeEngine,
    FuseMEEngine,
    LocalXLAEngine,
    MatFastLikeEngine,
    SystemDSLikeEngine,
)
from repro.config import ServiceConfig
from repro.matrix import rand_dense, rand_sparse
from repro.serving import MatrixService
from repro.utils.formatting import format_bytes, format_seconds
from repro.workloads.gnmf import gnmf_updates

from common import BLOCK_SIZE, bench_config

ENGINES = [
    FuseMEEngine,
    DistMELikeEngine,
    SystemDSLikeEngine,
    MatFastLikeEngine,
    LocalXLAEngine,
]


def gnmf_workload(quick: bool):
    users, items, factors = (100, 75, 25) if quick else (200, 150, 50)
    q = gnmf_updates(users, items, factors, density=0.1, block_size=BLOCK_SIZE)
    inputs = {
        "X": rand_sparse(users, items, 0.1, BLOCK_SIZE, seed=21),
        "U": rand_dense(factors, items, BLOCK_SIZE, seed=22, low=0.1, high=1.0),
        "V": rand_dense(users, factors, BLOCK_SIZE, seed=23, low=0.1, high=1.0),
    }
    return [q.u_update, q.v_update], inputs


# ---------------------------------------------------------------------------
# part 1: pass payoff


def run_pass_payoff(quick: bool, failures: list) -> dict:
    query, inputs = gnmf_workload(quick)
    report = {"engines": {}}

    for engine_cls in ENGINES:
        off_engine = engine_cls(bench_config(graph_passes="off"))
        on_engine = engine_cls(bench_config(graph_passes="all"))
        off = off_engine.execute(query, inputs)
        on = on_engine.execute(query, inputs)
        identical = all(
            np.array_equal(
                off.outputs[r_off].to_numpy(), on.outputs[r_on].to_numpy()
            )
            for r_off, r_on in zip(off.dag.roots, on.dag.roots)
        )
        if not identical:
            failures.append(f"{engine_cls.name}: pass-on output diverged")
        units_off = len(off_engine.lower_query(query, inputs).ops)
        on_physical = on_engine.lower_query(query, inputs)
        units_on = len(on_physical.ops)
        t_off, t_on = off.metrics.totals(), on.metrics.totals()
        report["engines"][engine_cls.name] = {
            "bit_identical": identical,
            "units_off": units_off,
            "units_on": units_on,
            "modeled_seconds_off": t_off["elapsed_seconds"],
            "modeled_seconds_on": t_on["elapsed_seconds"],
            "consolidation_bytes_off": t_off["consolidation_bytes"],
            "consolidation_bytes_on": t_on["consolidation_bytes"],
            "pass_reports": [
                r.to_dict() for r in on_physical.pass_reports
            ],
        }
        print(
            f"  {engine_cls.name:<10} units {units_off}->{units_on}  "
            f"modeled {format_seconds(t_off['elapsed_seconds'])}"
            f"->{format_seconds(t_on['elapsed_seconds'])}  "
            f"consolidation {format_bytes(t_off['consolidation_bytes'])}"
            f"->{format_bytes(t_on['consolidation_bytes'])}  "
            f"bit_identical={identical}"
        )

    fuseme = report["engines"][FuseMEEngine.name]
    if not fuseme["units_on"] < fuseme["units_off"]:
        failures.append("FuseME: merging did not reduce the unit count")
    if not fuseme["modeled_seconds_on"] < fuseme["modeled_seconds_off"]:
        failures.append("FuseME: passes did not reduce modeled seconds")
    if not (
        fuseme["consolidation_bytes_on"] < fuseme["consolidation_bytes_off"]
    ):
        failures.append("FuseME: passes did not reduce consolidation bytes")
    return report


# ---------------------------------------------------------------------------
# part 2: cross-query CSE replay


def _distinct_tenants(service: MatrixService) -> tuple:
    """Two tenant names the hash ring routes to different replicas."""
    first = "tenant-0"
    home = service.replica_for(first).name
    for i in range(1, 64):
        candidate = f"tenant-{i}"
        if service.replica_for(candidate).name != home:
            return first, candidate
    raise RuntimeError("hash ring routed 64 tenants to one replica")


def _replay_once(query, inputs, cse: bool):
    """One 2-tenant concurrent replay; returns (outputs, cse stats)."""
    engine = FuseMEEngine(bench_config())
    config = ServiceConfig(num_replicas=2, cross_query_cse=cse)
    with MatrixService(engine, config) as service:
        tenant_a, tenant_b = _distinct_tenants(service)
        session_a = service.open_session(tenant_a).bind_many(inputs)
        session_b = service.open_session(tenant_b).bind_many(inputs)
        ticket_a = session_a.submit(query)
        # submit B only once A is mid-execution on its replica, so the
        # subplan index sees two in-flight queries with one key
        for _ in range(500):
            if service.pool.running:
                break
            time.sleep(0.005)
        ticket_b = session_b.submit(query)
        served = [ticket_a.result(timeout=120), ticket_b.result(timeout=120)]
        outputs = [
            [s.result.outputs[root].to_numpy() for root in s.result.dag.roots]
            for s in served
        ]
        return outputs, service.pool.subplans.stats()


def run_cse_replay(quick: bool, failures: list) -> dict:
    query, inputs = gnmf_workload(quick)
    stats = {}
    outputs_on = None
    attempts = 0
    for attempts in range(1, 4):  # the overlap window is wall-clock timing
        outputs_on, stats = _replay_once(query, inputs, cse=True)
        if stats["hits"] >= 1:
            break
    outputs_off, stats_off = _replay_once(query, inputs, cse=False)

    if stats["hits"] < 1:
        failures.append(
            f"cross-query CSE recorded no in-flight hit in {attempts} replays"
        )
    if stats_off["executed"] != 0:
        failures.append("disabled CSE index leased keys anyway")
    for per_query_on, per_query_off in zip(outputs_on, outputs_off):
        for a, b in zip(per_query_on, per_query_off):
            if not np.array_equal(a, b):
                failures.append("CSE-on output diverged from CSE-off")
    print(
        f"  2-tenant replay on 2 replicas: cse_hits={stats['hits']} "
        f"(attempts={attempts}), executed={stats['executed']}, "
        f"identical_vs_disabled="
        f"{all('diverged' not in f for f in failures)}"
    )
    return {
        "attempts": attempts,
        "cse_on": stats,
        "cse_off": stats_off,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller shapes (CI smoke)")
    parser.add_argument("--output", default=None,
                        help="path of the JSON report (default: "
                             "BENCH_graph_passes.json next to this script)")
    args = parser.parse_args()

    failures: list = []
    print("graph-pass payoff (GNMF update, passes off -> on):")
    payoff = run_pass_payoff(args.quick, failures)
    print("cross-query CSE:")
    cse = run_cse_replay(args.quick, failures)

    report = {"quick": args.quick, "pass_payoff": payoff, "cse": cse}
    out_path = Path(
        args.output
        or Path(__file__).resolve().parent / "BENCH_graph_passes.json"
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        exit_code = main()
    sys.stdout.write(buffer.getvalue())
    results = Path(__file__).parent / "RESULTS.txt"
    with results.open("a", encoding="utf-8") as fh:
        fh.write("\nbench_graph_passes\n==================\n")
        fh.write(buffer.getvalue())
    print(f"appended to {results}")
    sys.exit(exit_code)
