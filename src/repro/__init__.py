"""FuseME reproduction: a distributed matrix computation engine built on
cuboid-based fused operators (CFO) and cuboid-based fusion plan generation
(CFG), after Han, Lee and Kim, SIGMOD 2022.

Quickstart::

    from repro import FuseMEEngine, matrix_input, log, rand_sparse, rand_dense

    X = rand_sparse(4000, 3000, density=0.01, block_size=100)
    U = rand_dense(4000, 200, block_size=100)
    V = rand_dense(3000, 200, block_size=100)

    Xe = matrix_input("X", 4000, 3000, 100, density=0.01)
    Ue = matrix_input("U", 4000, 200, 100)
    Ve = matrix_input("V", 3000, 200, 100)

    engine = FuseMEEngine()
    result = engine.execute(Xe * log(Ue @ Ve.T + 1e-8),
                            {"X": X, "U": U, "V": V})
    print(result.metrics.summary())
"""

from repro.cluster.runtime import FaultPlan, TraceRecorder
from repro.config import ClusterConfig, EngineConfig, ServiceConfig, paper_cluster
from repro.core import FuseMEEngine
from repro.baselines import (
    DistMELikeEngine,
    LocalXLAEngine,
    MatFastLikeEngine,
    SystemDSLikeEngine,
)
from repro.execution import Engine, ExecutionResult
from repro.lang import (
    Expr,
    parse_expression,
    colsum,
    exp,
    log,
    matrix_input,
    max_of,
    min_of,
    nnz_mask,
    rowsum,
    sigmoid,
    sq,
    sqrt,
    sum_of,
)
from repro.matrix import (
    BlockedMatrix,
    MatrixMeta,
    from_numpy,
    from_scipy,
    identity,
    ones,
    rand_dense,
    rand_sparse,
    zeros,
)
from repro.matrix.io import load_matrix, save_matrix
from repro.obs import (
    EventBus,
    JsonDumpSink,
    LoggingSink,
    MemorySink,
    PrometheusSink,
    QueryProfile,
    Span,
    SpanTracer,
    UnitProfile,
)
from repro.serving import MatrixService, ServedResult, Session

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ClusterConfig",
    "EngineConfig",
    "ServiceConfig",
    "MatrixService",
    "ServedResult",
    "Session",
    "FaultPlan",
    "TraceRecorder",
    "EventBus",
    "JsonDumpSink",
    "LoggingSink",
    "MemorySink",
    "PrometheusSink",
    "QueryProfile",
    "Span",
    "SpanTracer",
    "UnitProfile",
    "paper_cluster",
    "FuseMEEngine",
    "SystemDSLikeEngine",
    "MatFastLikeEngine",
    "DistMELikeEngine",
    "LocalXLAEngine",
    "Engine",
    "ExecutionResult",
    "Expr",
    "parse_expression",
    "matrix_input",
    "log",
    "exp",
    "sigmoid",
    "sq",
    "sqrt",
    "nnz_mask",
    "sum_of",
    "rowsum",
    "colsum",
    "min_of",
    "max_of",
    "BlockedMatrix",
    "MatrixMeta",
    "from_numpy",
    "from_scipy",
    "identity",
    "ones",
    "zeros",
    "rand_dense",
    "rand_sparse",
    "load_matrix",
    "save_matrix",
]
