"""Cell-fused execution of matmul-free plans.

Cell fusion (Figure 2(a)) chains element-wise operators block-by-block: the
grids of all operands align (transposes flip orientation, which is resolved
when fetching source blocks), so one task can produce each output block in a
single pass with no intermediate materialization.  Single unfused operators
(one unary/binary/transpose/aggregation node) run through the same machinery
as one-node plans.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.blocks import Block
from repro.blocks.kernels import AGGREGATION_KERNELS, aggregate_combine
from repro.cluster.executor import SimulatedCluster
from repro.cluster.parallel import parallel_map
from repro.cluster.task import TaskContext, TransferKind
from repro.config import EngineConfig
from repro.core.fused_eval import SliceEnv, evaluate_slice
from repro.core.physical import env_key_of
from repro.core.plan import PartialFusionPlan
from repro.errors import ExecutionError, PlanError
from repro.lang.dag import AggNode, InputNode, Node, TransposeNode
from repro.matrix.distributed import BlockedMatrix

Env = Mapping[object, BlockedMatrix]
Edge = tuple[Node, int]


class FusedCellOperator:
    """Runs one matmul-free partial plan block-aligned on the cluster."""

    def __init__(self, plan: PartialFusionPlan, config: EngineConfig):
        if plan.contains_matmul:
            raise PlanError(
                "FusedCellOperator cannot run plans containing matrix "
                "multiplication; use the CFO"
            )
        self.plan = plan
        self.config = config
        self.root = plan.root
        self._flips = self._orientation_flags()

    # -- orientation ----------------------------------------------------------

    def _orientation_flags(self) -> Dict[Edge, bool]:
        """Whether each frontier edge's source grid is transposed relative to
        the base (root-input) grid."""
        flips: Dict[Edge, bool] = {}
        node_flip: Dict[int, bool] = {self.root.node_id: False}

        for node in reversed(self.plan.topo_nodes()):
            flip = node_flip[node.node_id]
            child_flip = not flip if isinstance(node, TransposeNode) else flip
            for idx, child in enumerate(node.inputs):
                if child in self.plan.nodes:
                    node_flip[child.node_id] = child_flip
                else:
                    flips[(node, idx)] = child_flip
        return flips

    # -- execution -------------------------------------------------------------------

    def execute(self, cluster: SimulatedCluster, env: Env) -> BlockedMatrix:
        values = self._resolve_frontier(env)
        # graph-pass sharing annotation, captured once on the driver thread
        # (task closures run on pool threads where the scope is unset)
        shared = {
            node.node_id
            for node in self.plan.frontier()
            if env_key_of(node) in cluster.shared_inputs
        }
        base_meta = self._base_meta()
        grid_rows, grid_cols = base_meta.block_grid
        keys = [(bi, bj) for bi in range(grid_rows) for bj in range(grid_cols)]
        num_tasks = min(cluster.total_tasks, len(keys))

        is_agg = isinstance(self.root, AggNode)
        result = BlockedMatrix(self.root.meta)
        task_partials: list[Dict[tuple[int, int], Block]] = []

        with cluster.stage(f"cell:{self.plan.label()[:40]}") as stage:
            work = [(t, stage.task()) for t in range(num_tasks)]

            def run_task(item: tuple[int, TaskContext]):
                t, task = item
                received: Dict[tuple[int, tuple], Block] = {}
                placed: list[tuple[tuple[int, int], Block]] = []
                partials: Dict[tuple[int, int], Block] = {}
                for key in keys[t::num_tasks]:
                    frontier: Dict[Edge, Block] = {}
                    for edge, flipped in self._flips.items():
                        source = edge[0].inputs[edge[1]]
                        fetch = (key[1], key[0]) if flipped else key
                        cache_key = (source.node_id, fetch)
                        block = received.get(cache_key)
                        if block is None:
                            block = values[source].get_block(*fetch)
                            if source.node_id in shared:
                                task.receive_local(block)
                            else:
                                task.receive(block)
                            received[cache_key] = block
                        frontier[edge] = block
                    slice_env = SliceEnv(frontier=frontier)
                    out = evaluate_slice(self.plan, slice_env)
                    task.add_flops(slice_env.flops)
                    if is_agg:
                        group = self._agg_group(key)
                        if group in partials:
                            partials[group] = aggregate_combine(
                                self.root.kernel, partials[group], out
                            )
                            task.add_flops(out.shape[0] * out.shape[1])
                        else:
                            partials[group] = out
                    else:
                        if out.nnz:
                            task.hold_output(out)
                            placed.append((key, out))
                if is_agg:
                    for block in partials.values():
                        task.hold_output(block)
                return placed, partials

            # kernels may run on several threads; the shared result matrix
            # is only touched here, serially, in the serial loop's task order
            outcomes = parallel_map(
                run_task, work, self.config.local_parallelism,
                metrics=cluster.metrics,
            )
            for placed, partials in outcomes:
                for key, out in placed:
                    result.set_block(key[0], key[1], out)
                if is_agg:
                    task_partials.append(partials)

        if is_agg:
            result = self._combine_aggregates(cluster, task_partials)
        refreshed = result.refreshed_meta()
        return BlockedMatrix(refreshed, result.blocks)

    # -- aggregation roots -------------------------------------------------------------

    def _agg_group(self, key: tuple[int, int]) -> tuple[int, int]:
        assert isinstance(self.root, AggNode)
        axis = AGGREGATION_KERNELS[self.root.kernel].axis
        if axis == "all":
            return (0, 0)
        if axis == "row":
            return (key[0], 0)
        return (0, key[1])

    def _combine_aggregates(
        self,
        cluster: SimulatedCluster,
        task_partials: list[Dict[tuple[int, int], Block]],
    ) -> BlockedMatrix:
        assert isinstance(self.root, AggNode)
        result = BlockedMatrix(self.root.meta)
        with cluster.stage("cell:final-agg") as stage:
            task = stage.task()
            groups: Dict[tuple[int, int], Block] = {}
            for partials in task_partials:
                for key, block in sorted(partials.items()):
                    task.receive(block, kind=TransferKind.AGGREGATION)
                    if key in groups:
                        groups[key] = aggregate_combine(
                            self.root.kernel, groups[key], block
                        )
                        task.add_flops(block.shape[0] * block.shape[1])
                    else:
                        groups[key] = block
            for key, block in groups.items():
                task.hold_output(block)
                if block.nnz:
                    result.set_block(key[0], key[1], block)
        return result

    # -- helpers ----------------------------------------------------------------------------

    def _base_meta(self):
        if isinstance(self.root, AggNode):
            return self.root.inputs[0].meta
        return self.root.meta

    def _resolve_frontier(self, env: Env) -> Dict[Node, BlockedMatrix]:
        values: Dict[Node, BlockedMatrix] = {}
        for node in self.plan.frontier():
            value = env.get(node.node_id)
            if value is None and isinstance(node, InputNode):
                value = env.get(node.name)
            if value is None:
                raise ExecutionError(f"no binding for frontier node {node!r}")
            values[node] = value
        return values
