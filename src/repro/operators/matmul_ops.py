"""Standalone distributed matrix multiplication strategies.

Engines that do not fuse a multiplication into a larger operator still have
to execute it; the three strategies here are single-operator specializations
of the corresponding fused operators (a bare ``ba(x)`` is just a partial
fusion plan with one node):

* :class:`BroadcastMatMul` — Spark "map-side" multiply: broadcast the smaller
  operand (SystemDS' mapmm).
* :class:`ReplicationMatMul` — replicate operand slices per output block
  (SystemDS' rmm).
* :class:`CuboidMatMul` — DistME's CuboidMM with optimized ``(P, Q, R)``.
"""

from __future__ import annotations

from typing import Optional

from repro.config import EngineConfig
from repro.core.cfo import CuboidFusedOperator
from repro.core.plan import PartialFusionPlan
from repro.errors import PlanError
from repro.lang.dag import DAG, MatMulNode
from repro.operators.bfo import BroadcastFusedOperator
from repro.operators.rfo import ReplicationFusedOperator


def _single_node_plan(node: MatMulNode, dag: DAG) -> PartialFusionPlan:
    if not isinstance(node, MatMulNode):
        raise PlanError(f"expected a matrix multiplication node, got {node!r}")
    return PartialFusionPlan({node}, dag)


class BroadcastMatMul(BroadcastFusedOperator):
    """``ba(x)`` executed with broadcast consolidation."""

    def __init__(self, node: MatMulNode, dag: DAG, config: EngineConfig):
        super().__init__(_single_node_plan(node, dag), config)


class ReplicationMatMul(ReplicationFusedOperator):
    """``ba(x)`` executed with replication consolidation."""

    def __init__(self, node: MatMulNode, dag: DAG, config: EngineConfig):
        super().__init__(_single_node_plan(node, dag), config)


class CuboidMatMul(CuboidFusedOperator):
    """``ba(x)`` executed as DistME's CuboidMM (optimized ``(P, Q, R)``)."""

    def __init__(
        self,
        node: MatMulNode,
        dag: DAG,
        config: EngineConfig,
        pqr: Optional[tuple[int, int, int]] = None,
        optimizer_method: str = "pruned",
    ):
        super().__init__(
            _single_node_plan(node, dag),
            config,
            pqr=pqr,
            optimizer_method=optimizer_method,
        )
