"""Physical distributed operators.

* :mod:`repro.operators.cell` — fused execution of matmul-free plans
  (Cell fusion) and of single element-wise / transpose / aggregation
  operators; block-aligned, one pass, no intermediates.
* :mod:`repro.operators.bfo` — the Broadcast-based Fused Operator of
  Section 2.2 (SystemDS' strategy for small side matrices).
* :mod:`repro.operators.rfo` — the Replication-based Fused Operator of
  Section 2.2 (SystemDS' strategy for large inputs).
* :mod:`repro.operators.matmul_ops` — standalone distributed matrix
  multiplication: broadcast, replication and cuboid (CuboidMM/DistME)
  strategies for engines that do not fuse.

The Cuboid-based Fused Operator itself lives in :mod:`repro.core.cfo`.
"""

from repro.operators.cell import FusedCellOperator
from repro.operators.bfo import BroadcastFusedOperator
from repro.operators.rfo import ReplicationFusedOperator
from repro.operators.multi_agg import MultiAggregationOperator
from repro.operators.matmul_ops import (
    BroadcastMatMul,
    CuboidMatMul,
    ReplicationMatMul,
)

__all__ = [
    "FusedCellOperator",
    "MultiAggregationOperator",
    "BroadcastFusedOperator",
    "ReplicationFusedOperator",
    "BroadcastMatMul",
    "ReplicationMatMul",
    "CuboidMatMul",
]
