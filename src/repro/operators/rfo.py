"""The Replication-based Fused Operator (Section 2.2).

RFO replicates slices of the side matrices to every task that holds a block
of the main matrix: for ``O = X * log(U x V^T + eps)`` with ``X`` of ``I x J``
blocks, ``U``'s block-row ``i`` is shipped to all ``J`` tasks of output row
``i`` and ``V``'s block-row ``j`` to all ``I`` tasks of output column ``j`` —
communication ``|X| + J*|U| + I*|V|``, tiny per-task memory, but massive
traffic for large grids (Figure 9 characterizes RFO as the ``(P=I, Q=J,
R=1)`` corner of the cuboid space, which is exactly how we realize it).
"""

from __future__ import annotations

from repro.config import EngineConfig
from repro.core.cfo import CuboidFusedOperator
from repro.core.plan import PartialFusionPlan
from repro.core.spaces import plan_layout


class ReplicationFusedOperator(CuboidFusedOperator):
    """A CFO pinned to the replication corner ``(P=I, Q=J, R=1)``."""

    def __init__(self, plan: PartialFusionPlan, config: EngineConfig):
        extent_i, extent_j, _ = plan_layout(plan).mm.mm_dims()
        super().__init__(plan, config, pqr=(extent_i, extent_j, 1))
