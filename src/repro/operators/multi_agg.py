"""The Multi-aggregation fused operator (Figure 2(d)).

Several aggregations over shared inputs — e.g. ``sum(U * X)`` and
``sum(X * V)`` — execute as one operator with multiple outputs: each task
scans its blocks of the shared inputs *once* and accumulates every
aggregation in the same pass, avoiding the redundant scans separate
operators would pay.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.blocks import Block
from repro.blocks.kernels import AGGREGATION_KERNELS, aggregate_combine
from repro.cluster.executor import SimulatedCluster
from repro.cluster.parallel import parallel_map
from repro.cluster.task import TaskContext, TransferKind
from repro.config import EngineConfig
from repro.core.fused_eval import SliceEnv, evaluate_slice
from repro.core.physical import env_key_of
from repro.core.plan import MultiAggPlan
from repro.errors import ExecutionError, PlanError
from repro.lang.dag import AggNode, InputNode, Node, TransposeNode
from repro.matrix.distributed import BlockedMatrix

Env = Mapping[object, BlockedMatrix]
Edge = tuple[Node, int]
GroupKey = tuple[int, tuple[int, int]]  # (root index, output block offset)


class MultiAggregationOperator:
    """Runs a :class:`MultiAggPlan`: one shared scan, many aggregates."""

    def __init__(self, plan: MultiAggPlan, config: EngineConfig):
        if plan.contains_matmul:
            raise PlanError(
                "multi-aggregation fusion covers element-wise chains only"
            )
        self.plan = plan
        self.config = config
        self.roots = plan.roots
        base = self.roots[0].inputs[0].meta.block_grid
        for root in self.roots:
            if root.inputs[0].meta.block_grid != base:
                raise PlanError(
                    "multi-aggregation roots must share one block grid"
                )
        self.base_grid = base
        self._flips = self._orientation_flags()

    def _orientation_flags(self) -> Dict[Edge, bool]:
        flips: Dict[Edge, bool] = {}
        node_flip: Dict[int, bool] = {
            root.node_id: False for root in self.roots
        }
        for node in reversed(self.plan.topo_nodes()):
            flip = node_flip.get(node.node_id)
            if flip is None:
                continue
            child_flip = not flip if isinstance(node, TransposeNode) else flip
            for idx, child in enumerate(node.inputs):
                if child in self.plan.nodes:
                    node_flip.setdefault(child.node_id, child_flip)
                else:
                    flips[(node, idx)] = child_flip
        return flips

    # -- execution ----------------------------------------------------------

    def execute(self, cluster: SimulatedCluster, env: Env) -> Dict[Node, BlockedMatrix]:
        values = self._resolve_frontier(env)
        # graph-pass sharing annotation, captured once on the driver thread
        # (task closures run on pool threads where the scope is unset)
        shared = {
            node.node_id
            for node in self.plan.frontier()
            if env_key_of(node) in cluster.shared_inputs
        }
        grid_rows, grid_cols = self.base_grid
        keys = [(bi, bj) for bi in range(grid_rows) for bj in range(grid_cols)]
        num_tasks = min(cluster.total_tasks, len(keys))
        task_partials: list[Dict[GroupKey, Block]] = []

        with cluster.stage(f"multi-agg:{len(self.roots)}-outputs") as stage:
            work = [(t, stage.task()) for t in range(num_tasks)]

            def run_task(item: tuple[int, TaskContext]) -> Dict[GroupKey, Block]:
                t, task = item
                received: Dict[tuple[int, tuple], Block] = {}
                partials: Dict[GroupKey, Block] = {}
                for key in keys[t::num_tasks]:
                    frontier: Dict[Edge, Block] = {}
                    for edge, flipped in self._flips.items():
                        source = edge[0].inputs[edge[1]]
                        fetch = (key[1], key[0]) if flipped else key
                        cache_key = (source.node_id, fetch)
                        block = received.get(cache_key)
                        if block is None:
                            block = values[source].get_block(*fetch)
                            if source.node_id in shared:
                                task.receive_local(block)
                            else:
                                task.receive(block)  # shared inputs move ONCE
                            received[cache_key] = block
                        frontier[edge] = block
                    slice_env = SliceEnv(frontier=frontier)
                    for index, root in enumerate(self.roots):
                        out = evaluate_slice(self.plan, slice_env, root=root)
                        group = (index, self._agg_group(root, key))
                        if group in partials:
                            partials[group] = aggregate_combine(
                                root.kernel, partials[group], out
                            )
                        else:
                            partials[group] = out
                    task.add_flops(slice_env.flops)
                for block in partials.values():
                    task.hold_output(block)
                return partials

            # results arrive in task order, so the combine stage sees the
            # exact partial sequence the serial loop produced
            task_partials.extend(parallel_map(
                run_task, work, self.config.local_parallelism,
                metrics=cluster.metrics,
            ))

        return self._combine(cluster, task_partials)

    def _agg_group(self, root: AggNode, key: tuple[int, int]) -> tuple[int, int]:
        axis = AGGREGATION_KERNELS[root.kernel].axis
        if axis == "all":
            return (0, 0)
        if axis == "row":
            return (key[0], 0)
        return (0, key[1])

    def _combine(
        self,
        cluster: SimulatedCluster,
        task_partials: list[Dict[GroupKey, Block]],
    ) -> Dict[Node, BlockedMatrix]:
        results = {
            root: BlockedMatrix(root.meta) for root in self.roots
        }
        with cluster.stage("multi-agg:final") as stage:
            task = stage.task()
            groups: Dict[GroupKey, Block] = {}
            for partials in task_partials:
                for group, block in sorted(partials.items()):
                    task.receive(block, kind=TransferKind.AGGREGATION)
                    root = self.roots[group[0]]
                    if group in groups:
                        groups[group] = aggregate_combine(
                            root.kernel, groups[group], block
                        )
                    else:
                        groups[group] = block
            for (index, key), block in groups.items():
                task.hold_output(block)
                if block.nnz:
                    results[self.roots[index]].set_block(key[0], key[1], block)
        return results

    def _resolve_frontier(self, env: Env) -> Dict[Node, BlockedMatrix]:
        values: Dict[Node, BlockedMatrix] = {}
        for node in self.plan.frontier():
            value = env.get(node.node_id)
            if value is None and isinstance(node, InputNode):
                value = env.get(node.name)
            if value is None:
                raise ExecutionError(f"no binding for frontier node {node!r}")
            values[node] = value
        return values
