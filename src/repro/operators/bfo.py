"""The Broadcast-based Fused Operator (Section 2.2).

BFO repartitions the main (largest) matrix across tasks and *broadcasts every
side matrix in full to every task*: communication ``|X| + T * (|U| + |V|)``
and per-task memory ``|X|/T + |U| + |V|`` — cheap traffic while the sides are
small, out-of-memory the moment they are not (the O.O.M. failures the paper
reports for SystemDS(B) in Figures 12 and 15).

The number of tasks equals the number of partitions the main matrix
repartitions into (its byte size over the input split size).  For a very
sparse main matrix that is far fewer than the cluster's slots, which starves
the cluster — the effect the paper's "overall analysis" calls out.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from repro.blocks import Block
from repro.blocks.kernels import aggregate_combine, AGGREGATION_KERNELS
from repro.cluster.executor import SimulatedCluster
from repro.cluster.parallel import parallel_map
from repro.cluster.slice_cache import SliceCache
from repro.cluster.task import TaskContext, TransferKind
from repro.config import EngineConfig
from repro.core.cfo import _scatter_tile
from repro.core.fused_eval import SliceEnv, evaluate_masked_slice, evaluate_slice
from repro.core.physical import env_key_of
from repro.core.plan import PartialFusionPlan
from repro.core.spaces import (
    Axis,
    AxisKind,
    SparsityMask,
    find_sparsity_mask,
    plan_layout,
)
from repro.errors import ExecutionError
from repro.lang.dag import AggNode, InputNode, Node
from repro.matrix.distributed import BlockedMatrix

Env = Mapping[object, BlockedMatrix]
Edge = tuple[Node, int]


class BroadcastFusedOperator:
    """Physical fused operator with broadcast consolidation."""

    def __init__(self, plan: PartialFusionPlan, config: EngineConfig):
        self.plan = plan
        self.config = config
        layout = plan_layout(plan)
        self.tree = layout.tree
        self.mm = layout.mm
        self.tags = layout.tags
        self.mask: Optional[SparsityMask] = None
        if config.sparsity_exploitation:
            self.mask = find_sparsity_mask(plan, self.mm, self.tree)
        # rebound to the cluster's per-execute cache in execute()
        self._slices = SliceCache(enabled=False)

    # -- main-matrix selection ----------------------------------------------------

    def _frontier_sources(self) -> list[Node]:
        return list(self.plan.frontier())

    def main_source(self, values: Dict[Node, BlockedMatrix]) -> Node:
        """The largest frontier matrix: the one that gets repartitioned."""
        return max(
            values, key=lambda node: (values[node].nbytes, -node.node_id)
        )

    def num_partitions(self, values: Dict[Node, BlockedMatrix]) -> int:
        main = values[self.main_source(values)]
        split = self.config.cluster.input_split_bytes
        return max(1, math.ceil(main.nbytes / split))

    # -- execution --------------------------------------------------------------------

    def execute(self, cluster: SimulatedCluster, env: Env) -> BlockedMatrix:
        self._slices = cluster.slice_cache
        values = self._resolve_frontier(env)
        # graph-pass sharing annotation, captured once on the driver thread
        # (task closures run on pool threads where the scope is unset)
        shared = {
            node.node_id
            for node in self.plan.frontier()
            if env_key_of(node) in cluster.shared_inputs
        }
        main = self.main_source(values)
        num_tasks = self.num_partitions(values)

        extent_i, extent_j, _ = self.mm.mm_dims()
        grid_keys = [(i, j) for i in range(extent_i) for j in range(extent_j)]
        owner = self._ownership(values, main, grid_keys, num_tasks)

        main_tag = self._main_tag(main)
        is_agg = isinstance(self.plan.root, AggNode)
        result = BlockedMatrix(self.plan.root.meta)
        task_partials: list[Dict[tuple[int, int], Block]] = []

        with cluster.stage("bfo:compute") as stage:
            work = [(t, stage.task()) for t in range(num_tasks)]

            def run_task(item: tuple[int, TaskContext]):
                t, task = item
                # broadcast: full copies of every non-main frontier source
                for source, matrix in values.items():
                    if source is main:
                        continue
                    if source.node_id in shared:
                        task.receive_local(matrix.nbytes)
                    else:
                        task.receive(matrix.nbytes)
                # repartition: this task's main blocks
                owned = [key for key in grid_keys if owner[key] == t]
                main_shared = main.node_id in shared
                if main_tag is not None:
                    for key in owned:
                        fetch = key if main_tag[0].kind is AxisKind.I else (key[1], key[0])
                        block = values[main].blocks.get(fetch)
                        if block is not None:
                            if main_shared:
                                task.receive_local(block)
                            else:
                                task.receive(block)
                elif main_shared:
                    task.receive_local(values[main].nbytes // num_tasks)
                else:
                    task.receive(values[main].nbytes // num_tasks)

                placed: list[tuple[Block, int, int]] = []
                partials: Dict[tuple[int, int], Block] = {}
                for i, j in owned:
                    slice_env = self._bind_block(values, i, j)
                    tile_shape = self._tile_shape(i, j)
                    if self.mask is not None:
                        out = evaluate_masked_slice(
                            self.plan, slice_env, self.mm, self.mask, tile_shape
                        )
                    else:
                        out = evaluate_slice(self.plan, slice_env)
                    task.add_flops(slice_env.flops)
                    if is_agg:
                        group = self._agg_group(i, j)
                        if group in partials:
                            partials[group] = aggregate_combine(
                                self.plan.root.kernel, partials[group], out
                            )
                        else:
                            partials[group] = out
                    else:
                        if out.nnz:
                            task.hold_output(out)
                            placed.append((out, i, j))
                if is_agg:
                    for block in partials.values():
                        task.hold_output(block)
                return placed, partials

            # evaluate possibly in parallel; mutate the shared result and
            # the partial list serially, in task order, as the serial loop did
            outcomes = parallel_map(
                run_task, work, self.config.local_parallelism,
                metrics=cluster.metrics,
            )
            for placed, partials in outcomes:
                for out, i, j in placed:
                    self._place(result, out, i, j)
                if is_agg:
                    task_partials.append(partials)

        if is_agg:
            result = self._combine_aggregates(cluster, task_partials)
        refreshed = result.refreshed_meta()
        return BlockedMatrix(refreshed, result.blocks)

    # -- per-block binding ----------------------------------------------------------------

    def _bind_block(
        self, values: Dict[Node, BlockedMatrix], i: int, j: int
    ) -> SliceEnv:
        frontier: Dict[Edge, Block] = {}
        for edge, tag in self.tags.frontier_tags.items():
            consumer, index = edge
            source = consumer.inputs[index]
            matrix = values[source]
            grid_rows, grid_cols = matrix.block_grid
            row_range = self._axis_range(tag[0], i, j, grid_rows)
            col_range = self._axis_range(tag[1], i, j, grid_cols)
            frontier[edge] = self._slices.get(matrix, row_range, col_range)
        return SliceEnv(frontier=frontier)

    @staticmethod
    def _axis_range(axis: Axis, i: int, j: int, grid_extent: int) -> tuple[int, int]:
        if axis.kind is AxisKind.I:
            return (i, i + 1)
        if axis.kind is AxisKind.J:
            return (j, j + 1)
        return (0, grid_extent)  # K and private axes stay whole

    # -- layout helpers -----------------------------------------------------------------------

    def _main_tag(self, main: Node) -> Optional[tuple[Axis, Axis]]:
        """Tag of the main matrix if it is (I, J)-aligned, else None."""
        for (consumer, index), tag in self.tags.frontier_tags.items():
            if consumer.inputs[index] is main:
                kinds = {tag[0].kind, tag[1].kind}
                if kinds == {AxisKind.I, AxisKind.J}:
                    return tag
        return None

    def _ownership(
        self,
        values: Dict[Node, BlockedMatrix],
        main: Node,
        grid_keys: list[tuple[int, int]],
        num_tasks: int,
    ) -> Dict[tuple[int, int], int]:
        """Assign each output block to the task holding its main block."""
        owner: Dict[tuple[int, int], int] = {}
        main_tag = self._main_tag(main)
        counter = 0
        stored: Dict[tuple[int, int], int] = {}
        if main_tag is not None:
            for idx, key in enumerate(sorted(values[main].blocks)):
                stored[key] = idx % num_tasks
        for key in grid_keys:
            fetch = key
            if main_tag is not None and main_tag[0].kind is AxisKind.J:
                fetch = (key[1], key[0])
            if fetch in stored:
                owner[key] = stored[fetch]
            else:
                owner[key] = counter % num_tasks
                counter += 1
        return owner

    def _root_tag(self) -> tuple[Axis, Axis]:
        root = self.plan.root
        if isinstance(root, AggNode):
            return self.tags.tag_of_operand(root, 0)
        return self.tags.operator_tags[root]

    def _tile_shape(self, i: int, j: int) -> tuple[int, int]:
        tag = self._root_tag()
        meta = self.plan.root.meta
        if isinstance(self.plan.root, AggNode):
            meta = self.plan.root.inputs[0].meta
        bi, bj = (i, j) if tag[0].kind is AxisKind.I else (j, i)
        return meta.block_dims(bi, bj)

    def _place(self, result: BlockedMatrix, tile: Block, i: int, j: int) -> None:
        tag = self._root_tag()
        bi, bj = (i, j) if tag[0].kind is AxisKind.I else (j, i)
        block_size = result.meta.block_size
        _scatter_tile(result, tile, bi * block_size, bj * block_size)

    def _agg_group(self, i: int, j: int) -> tuple[int, int]:
        assert isinstance(self.plan.root, AggNode)
        axis = AGGREGATION_KERNELS[self.plan.root.kernel].axis
        tag = self._root_tag()
        bi, bj = (i, j) if tag[0].kind is AxisKind.I else (j, i)
        if axis == "all":
            return (0, 0)
        if axis == "row":
            return (bi, 0)
        return (0, bj)

    def _combine_aggregates(
        self,
        cluster: SimulatedCluster,
        task_partials: list[Dict[tuple[int, int], Block]],
    ) -> BlockedMatrix:
        root = self.plan.root
        assert isinstance(root, AggNode)
        result = BlockedMatrix(root.meta)
        with cluster.stage("bfo:final-agg") as stage:
            task = stage.task()
            groups: Dict[tuple[int, int], Block] = {}
            for partials in task_partials:
                for key, block in sorted(partials.items()):
                    task.receive(block, kind=TransferKind.AGGREGATION)
                    if key in groups:
                        groups[key] = aggregate_combine(root.kernel, groups[key], block)
                    else:
                        groups[key] = block
            for key, block in groups.items():
                task.hold_output(block)
                if block.nnz:
                    result.set_block(key[0], key[1], block)
        return result

    def _resolve_frontier(self, env: Env) -> Dict[Node, BlockedMatrix]:
        values: Dict[Node, BlockedMatrix] = {}
        for node in self.plan.frontier():
            value = env.get(node.node_id)
            if value is None and isinstance(node, InputNode):
                value = env.get(node.name)
            if value is None:
                raise ExecutionError(f"no binding for frontier node {node!r}")
            values[node] = value
        return values
