"""Block-level kernel layer.

A blocked matrix is a grid of fixed-size blocks (paper: 1000x1000; default
here: 100x100).  A :class:`~repro.blocks.block.Block` wraps either a dense
``numpy.ndarray`` or a ``scipy.sparse.csr_matrix`` and exposes the element-wise,
aggregation, multiplication and reorganization kernels the five basic operator
types of the paper (Section 2.1) need, plus the SDDMM kernel used for sparsity
exploitation in Outer-style fusion.
"""

from repro.blocks.block import Block
from repro.blocks.kernels import (
    AGGREGATION_KERNELS,
    BINARY_KERNELS,
    UNARY_KERNELS,
    aggregate,
    binary,
    binary_flops,
    matmul,
    matmul_flops,
    sddmm,
    sddmm_flops,
    unary,
    unary_flops,
)

__all__ = [
    "Block",
    "UNARY_KERNELS",
    "BINARY_KERNELS",
    "AGGREGATION_KERNELS",
    "unary",
    "binary",
    "aggregate",
    "matmul",
    "sddmm",
    "unary_flops",
    "binary_flops",
    "matmul_flops",
    "sddmm_flops",
]
