"""The :class:`Block` container: one tile of a distributed blocked matrix.

A block is the paper's basic unit of computation, communication and memory
accounting.  It wraps either a dense ``numpy.ndarray`` (float64) or a
``scipy.sparse.csr_matrix``; the wrapper normalises dtypes, provides size
estimates used by the cost model (Eq. 3-4 operate on ``size(v)``), and
converts between representations.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.config import ELEMENT_BYTES
from repro.errors import SparsityError

ArrayLike = Union[np.ndarray, sp.spmatrix]

#: Per-nonzero cost of the CSR layout: 8-byte value + 4-byte column index,
#: plus the row-pointer array amortised into :meth:`Block.nbytes`.
_CSR_NNZ_BYTES = 12
_CSR_ROWPTR_BYTES = 4


class Block:
    """One dense or sparse tile of a blocked matrix.

    Parameters
    ----------
    data:
        A 2-D ``numpy.ndarray`` or any scipy sparse matrix.  Sparse input is
        converted to CSR; dense input to a C-contiguous float64 array.
    """

    __slots__ = ("data",)

    def __init__(self, data: ArrayLike):
        if sp.issparse(data):
            self.data = sp.csr_matrix(data, dtype=np.float64)
        else:
            arr = np.asarray(data, dtype=np.float64)
            if arr.ndim == 0:
                arr = arr.reshape(1, 1)
            elif arr.ndim == 1:
                arr = arr.reshape(-1, 1)
            elif arr.ndim != 2:
                raise ValueError(f"a block must be 2-D, got ndim={arr.ndim}")
            self.data = np.ascontiguousarray(arr)

    # -- classification ---------------------------------------------------

    @property
    def is_sparse(self) -> bool:
        """Whether this block is stored in CSR format."""
        return sp.issparse(self.data)

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape  # type: ignore[return-value]

    @property
    def nnz(self) -> int:
        """Number of stored non-zero elements."""
        if self.is_sparse:
            return int(self.data.nnz)
        return int(np.count_nonzero(self.data))

    @property
    def density(self) -> float:
        rows, cols = self.shape
        total = rows * cols
        return self.nnz / total if total else 0.0

    @property
    def nbytes(self) -> int:
        """Estimated in-memory/on-wire size, as the cost model's ``size(v)``."""
        rows, cols = self.shape
        if self.is_sparse:
            return int(self.data.nnz) * _CSR_NNZ_BYTES + (rows + 1) * _CSR_ROWPTR_BYTES
        return rows * cols * ELEMENT_BYTES

    # -- conversions -------------------------------------------------------

    def to_dense(self) -> "Block":
        """Return a dense copy (self if already dense)."""
        if self.is_sparse:
            return Block(np.asarray(self.data.todense()))
        return self

    def to_sparse(self) -> "Block":
        """Return a CSR copy (self if already sparse)."""
        if self.is_sparse:
            return self
        return Block(sp.csr_matrix(self.data))

    def to_numpy(self) -> np.ndarray:
        """Materialize the block as a dense ndarray (always a safe copy)."""
        if self.is_sparse:
            return np.asarray(self.data.todense())
        return self.data.copy()

    def require_sparse(self) -> sp.csr_matrix:
        """Return the CSR payload or raise :class:`SparsityError`."""
        if not self.is_sparse:
            raise SparsityError("expected a sparse block")
        return self.data

    # -- structural helpers -------------------------------------------------

    def transpose(self) -> "Block":
        """Reorganization kernel ``r(T)``."""
        if self.is_sparse:
            return Block(self.data.transpose().tocsr())
        return Block(np.ascontiguousarray(self.data.T))

    def slice(self, rows: slice, cols: slice) -> "Block":
        """Extract a sub-tile; used when cuboid partitioning splits blocks."""
        return Block(self.data[rows, cols])

    def copy(self) -> "Block":
        return Block(self.data.copy())

    # -- constructors --------------------------------------------------------

    @staticmethod
    def zeros(rows: int, cols: int, sparse: bool = False) -> "Block":
        """An all-zero block, dense or CSR."""
        if sparse:
            return Block(sp.csr_matrix((rows, cols), dtype=np.float64))
        return Block(np.zeros((rows, cols)))

    @staticmethod
    def full(rows: int, cols: int, value: float) -> "Block":
        return Block(np.full((rows, cols), float(value)))

    @staticmethod
    def eye(rows: int, cols: int) -> "Block":
        return Block(np.eye(rows, cols))

    # -- equality / repr ------------------------------------------------------

    def allclose(self, other: "Block", rtol: float = 1e-9, atol: float = 1e-9) -> bool:
        """Numerical equality regardless of representation."""
        if self.shape != other.shape:
            return False
        return np.allclose(self.to_numpy(), other.to_numpy(), rtol=rtol, atol=atol)

    def __repr__(self) -> str:
        kind = "sparse" if self.is_sparse else "dense"
        rows, cols = self.shape
        return f"Block({kind}, {rows}x{cols}, nnz={self.nnz})"
