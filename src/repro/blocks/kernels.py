"""Named element-wise, aggregation and multiplication kernels.

Each kernel is registered under the operator name the DAG layer uses (e.g.
``"mul"`` for the paper's ``b(*)``, ``"log"`` for ``u(log)``,
``"sum"``/``"rowSum"``/``"colSum"`` for the unary aggregations of Section 2.1).
Kernels are pure: they take blocks (or scalars) and return a new block.
Separate ``*_flops`` estimators let the simulated cluster charge computation
cost without instrumenting the math itself, mirroring ``numOp(v)`` in Eq. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Union

import numpy as np
import scipy.sparse as sp

from repro.blocks.block import Block
from repro.errors import MatrixShapeError, SparsityError

Operand = Union[Block, float, int]


# ---------------------------------------------------------------------------
# unary kernels
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UnaryKernel:
    """A named element-wise function of one matrix.

    ``zero_preserving`` kernels map 0 to 0 and may therefore operate on the
    stored values of a sparse block without densifying it; non-preserving
    kernels (``log``, ``exp``, ...) densify, exactly the effect that makes
    sparsity exploitation valuable in the paper's Outer fusion.
    """

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    zero_preserving: bool


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


UNARY_KERNELS: Mapping[str, UnaryKernel] = {
    k.name: k
    for k in (
        UnaryKernel("log", lambda x: np.log(x), zero_preserving=False),
        UnaryKernel("log1p", np.log1p, zero_preserving=True),
        UnaryKernel("exp", np.exp, zero_preserving=False),
        UnaryKernel("sigmoid", _sigmoid, zero_preserving=False),
        UnaryKernel("sqrt", np.sqrt, zero_preserving=True),
        UnaryKernel("abs", np.abs, zero_preserving=True),
        UnaryKernel("neg", np.negative, zero_preserving=True),
        UnaryKernel("sq", np.square, zero_preserving=True),
        UnaryKernel("relu", lambda x: np.maximum(x, 0.0), zero_preserving=True),
        UnaryKernel("sin", np.sin, zero_preserving=True),
        UnaryKernel("cos", np.cos, zero_preserving=False),
        UnaryKernel("tanh", np.tanh, zero_preserving=True),
        UnaryKernel("round", np.round, zero_preserving=True),
        UnaryKernel("recip", lambda x: 1.0 / x, zero_preserving=False),
    )
}


def unary(name: str, a: Block) -> Block:
    """Apply the unary kernel *name* element-wise to block *a*."""
    kernel = UNARY_KERNELS.get(name)
    if kernel is None:
        raise KeyError(f"unknown unary kernel {name!r}")
    if a.is_sparse and kernel.zero_preserving:
        result = a.data.copy()
        result.data = kernel.fn(result.data)
        return Block(result)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        return Block(kernel.fn(a.to_numpy()))


def unary_flops(name: str, a: Block) -> int:
    """Floating point operations charged for a unary kernel application."""
    kernel = UNARY_KERNELS.get(name)
    if kernel is None:
        raise KeyError(f"unknown unary kernel {name!r}")
    if a.is_sparse and kernel.zero_preserving:
        return a.nnz
    rows, cols = a.shape
    return rows * cols


# ---------------------------------------------------------------------------
# binary kernels
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BinaryKernel:
    """A named element-wise function of two matrices (or matrix and scalar).

    ``sparse_safe_left`` means a zero on the left forces a zero output
    regardless of the right operand (e.g. multiplication and division),
    so a sparse left operand keeps the result sparse.
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    sparse_safe_left: bool


BINARY_KERNELS: Mapping[str, BinaryKernel] = {
    k.name: k
    for k in (
        BinaryKernel("add", np.add, sparse_safe_left=False),
        BinaryKernel("sub", np.subtract, sparse_safe_left=False),
        BinaryKernel("mul", np.multiply, sparse_safe_left=True),
        BinaryKernel("div", np.divide, sparse_safe_left=True),
        BinaryKernel("pow", np.power, sparse_safe_left=True),
        BinaryKernel("min", np.minimum, sparse_safe_left=False),
        BinaryKernel("max", np.maximum, sparse_safe_left=False),
        BinaryKernel("neq", lambda a, b: (a != b).astype(np.float64), sparse_safe_left=False),
        BinaryKernel("eq", lambda a, b: (a == b).astype(np.float64), sparse_safe_left=False),
        BinaryKernel("gt", lambda a, b: (a > b).astype(np.float64), sparse_safe_left=False),
        BinaryKernel("lt", lambda a, b: (a < b).astype(np.float64), sparse_safe_left=False),
    )
}

#: Kernels whose output at zero-left is zero even for scalar right operands,
#: so comparing a sparse matrix against a scalar can stay sparse.
_SPARSE_SCALAR_OK = {"mul", "div", "pow", "neq", "gt"}


def _as_operands(a: Operand, b: Operand) -> tuple[Operand, Operand]:
    if not isinstance(a, Block) and not isinstance(b, Block):
        raise TypeError("at least one binary operand must be a Block")
    return a, b


def binary(name: str, a: Operand, b: Operand) -> Block:
    """Apply the binary kernel *name* element-wise.

    Either operand may be a scalar.  Matrix operands must share a shape.
    Sparse representations are preserved whenever the kernel semantics allow
    (a zero on the sparse side forcing a zero output).
    """
    kernel = BINARY_KERNELS.get(name)
    if kernel is None:
        raise KeyError(f"unknown binary kernel {name!r}")
    a, b = _as_operands(a, b)

    # scalar cases -----------------------------------------------------------
    if not isinstance(a, Block):
        left = float(a)
        assert isinstance(b, Block)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            return Block(kernel.fn(left, b.to_numpy()))
    if not isinstance(b, Block):
        right = float(b)
        if a.is_sparse and name in _SPARSE_SCALAR_OK and right != 0.0:
            result = a.data.copy()
            with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                result.data = kernel.fn(result.data, right)
            return Block(result)
        if a.is_sparse and name == "neq" and right == 0.0:
            # the paper's (X != 0) mask: ones at the sparsity pattern of X
            result = a.data.copy()
            result.data = np.ones_like(result.data)
            return Block(result)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            return Block(kernel.fn(a.to_numpy(), right))

    # matrix-matrix case -------------------------------------------------------
    if a.shape != b.shape:
        raise MatrixShapeError(
            f"binary {name!r} operands must match: {a.shape} vs {b.shape}"
        )
    if a.is_sparse and kernel.sparse_safe_left:
        if name == "mul":
            return Block(a.data.multiply(b.data if b.is_sparse else b.to_numpy()).tocsr())
        if name == "div":
            with np.errstate(divide="ignore", invalid="ignore"):
                return Block(a.data.multiply(1.0 / b.to_numpy()).tocsr())
        # pow with a sparse left: operate at the stored pattern
        rows, cols = a.data.nonzero()
        dense_b = b.to_numpy()
        result = a.data.copy()
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            result.data = kernel.fn(result.data, dense_b[rows, cols])
        return Block(result)
    if b.is_sparse and name == "mul":
        return Block(b.data.multiply(a.to_numpy()).tocsr())
    if a.is_sparse and b.is_sparse and name in ("add", "sub"):
        op = a.data + b.data if name == "add" else a.data - b.data
        return Block(op.tocsr())
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        return Block(kernel.fn(a.to_numpy(), b.to_numpy()))


def binary_flops(name: str, a: Operand, b: Operand) -> int:
    """Floating point operations charged for a binary kernel application."""
    if name not in BINARY_KERNELS:
        raise KeyError(f"unknown binary kernel {name!r}")
    blocks = [x for x in (a, b) if isinstance(x, Block)]
    if not blocks:
        raise TypeError("at least one binary operand must be a Block")
    kernel = BINARY_KERNELS[name]
    left = blocks[0]
    if kernel.sparse_safe_left and isinstance(a, Block) and a.is_sparse:
        return a.nnz
    rows, cols = left.shape
    return rows * cols


# ---------------------------------------------------------------------------
# aggregation kernels
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AggregationKernel:
    """A named unary aggregation: full, per-row or per-column reduction.

    ``combine`` merges partial results from different blocks along the
    aggregated axis; for sums it is addition, for min/max the corresponding
    element-wise reduction.  This is what the paper's "matrix aggregation
    step" shuffles.
    """

    name: str
    axis: str  # "all" | "row" | "col"
    fn: Callable[[np.ndarray], np.ndarray]
    combine: Callable[[np.ndarray, np.ndarray], np.ndarray]


AGGREGATION_KERNELS: Mapping[str, AggregationKernel] = {
    k.name: k
    for k in (
        AggregationKernel(
            "sum", "all", lambda x: np.sum(x, keepdims=True).reshape(1, 1), np.add
        ),
        AggregationKernel(
            "rowSum", "row", lambda x: np.sum(x, axis=1, keepdims=True), np.add
        ),
        AggregationKernel(
            "colSum", "col", lambda x: np.sum(x, axis=0, keepdims=True), np.add
        ),
        AggregationKernel(
            "min", "all", lambda x: np.min(x, keepdims=True).reshape(1, 1), np.minimum
        ),
        AggregationKernel(
            "max", "all", lambda x: np.max(x, keepdims=True).reshape(1, 1), np.maximum
        ),
        AggregationKernel(
            "rowMax", "row", lambda x: np.max(x, axis=1, keepdims=True), np.maximum
        ),
        AggregationKernel(
            "colMax", "col", lambda x: np.max(x, axis=0, keepdims=True), np.maximum
        ),
    )
}


def aggregate(name: str, a: Block) -> Block:
    """Apply the aggregation kernel *name* to a single block."""
    kernel = AGGREGATION_KERNELS.get(name)
    if kernel is None:
        raise KeyError(f"unknown aggregation kernel {name!r}")
    return Block(kernel.fn(a.to_numpy()))


def aggregate_combine(name: str, a: Block, b: Block) -> Block:
    """Merge two partial aggregation results for kernel *name*."""
    kernel = AGGREGATION_KERNELS.get(name)
    if kernel is None:
        raise KeyError(f"unknown aggregation kernel {name!r}")
    return Block(kernel.combine(a.to_numpy(), b.to_numpy()))


def aggregate_flops(name: str, a: Block) -> int:
    if name not in AGGREGATION_KERNELS:
        raise KeyError(f"unknown aggregation kernel {name!r}")
    if a.is_sparse:
        return a.nnz
    rows, cols = a.shape
    return rows * cols


# ---------------------------------------------------------------------------
# matrix multiplication and SDDMM
# ---------------------------------------------------------------------------


def matmul(a: Block, b: Block) -> Block:
    """Binary-aggregation kernel ``ba(x)`` on two blocks."""
    if a.shape[1] != b.shape[0]:
        raise MatrixShapeError(
            f"cannot multiply {a.shape} by {b.shape}: inner dimensions differ"
        )
    result = a.data @ b.data
    if sp.issparse(result):
        return Block(result.tocsr())
    return Block(np.asarray(result))


def matmul_flops(a: Block, b: Block) -> int:
    """Multiply-add count for a block multiplication, sparsity-aware."""
    if a.shape[1] != b.shape[0]:
        raise MatrixShapeError(
            f"cannot multiply {a.shape} by {b.shape}: inner dimensions differ"
        )
    n = b.shape[1]
    if a.is_sparse:
        return 2 * a.nnz * n
    if b.is_sparse:
        return 2 * b.nnz * a.shape[0]
    m, k = a.shape
    return 2 * m * k * n


def sddmm(mask: Block, a: Block, b: Block) -> Block:
    """Sampled dense-dense matrix multiplication.

    Computes ``(a @ b)`` only at the non-zero positions of the sparse *mask*
    and returns a CSR block with those values — the kernel behind the paper's
    sparsity exploitation (Figure 1(a) / Outer fusion): for ``(U x V) * X``
    only the cells where ``X`` is non-zero are ever computed.
    """
    if not mask.is_sparse:
        raise SparsityError("sddmm mask must be a sparse block")
    if a.shape[1] != b.shape[0]:
        raise MatrixShapeError(
            f"cannot multiply {a.shape} by {b.shape}: inner dimensions differ"
        )
    if mask.shape != (a.shape[0], b.shape[1]):
        raise MatrixShapeError(
            f"mask shape {mask.shape} does not match product shape "
            f"{(a.shape[0], b.shape[1])}"
        )
    csr = mask.data
    rows, cols = csr.nonzero()
    if rows.size == 0:
        return Block(sp.csr_matrix(mask.shape, dtype=np.float64))
    dense_a = a.to_numpy()
    dense_b = b.to_numpy()
    values = np.einsum("ij,ji->i", dense_a[rows, :], dense_b[:, cols])
    result = sp.csr_matrix((values, (rows, cols)), shape=mask.shape)
    return Block(result)


def sddmm_flops(mask: Block, a: Block, b: Block) -> int:
    """Multiply-add count for SDDMM: ``2 * nnz(mask) * K``."""
    return 2 * mask.nnz * a.shape[1]
