"""Shared engine skeleton.

Every engine in this repository — FuseME and the four baselines — executes a
query the same way: plan the DAG into a fusion plan, *lower* it to a typed
:class:`~repro.core.physical.PhysicalPlan` (operator kinds, cuboid
parameters, cost estimates, dependency edges, materialization lifetimes),
then run the unit graph on the simulated cluster through the
dependency-driven scheduler.  Engines differ only in *how they plan* (which
operators fuse) and *which physical operator runs a unit* — exactly the axes
the paper's evaluation compares.

The physical plan is also the introspection surface: :meth:`Engine.explain`
plans and lowers a query without opening a single cluster stage.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.cluster.executor import SimulatedCluster
from repro.cluster.metrics import MetricsCollector
from repro.cluster.slice_cache import SliceCache
from repro.cluster.runtime import TraceRecorder
from repro.config import EngineConfig
from repro.obs import (
    EventBus,
    QueryProfile,
    Span,
    SpanTracer,
    TelemetryEvent,
    UnitProfile,
)
from repro.core.calibration import (
    CalibrationStore,
    KernelCalibration,
    sparsity_bucket,
)
from repro.core.physical import (
    PhysicalPlan,
    UnitAnnotation,
    UnitEstimate,
    UnitOp,
    generic_unit_estimate,
    lower_plan,
    run_physical_plan,
)
from repro.core.passes import run_graph_passes
from repro.core.plan import FusionPlan, MultiAggPlan, PlanUnit
from repro.core.plan_cache import PlanCache, PlanCacheEntry, dag_fingerprint
from repro.errors import PlanError
from repro.lang.builder import Expr
from repro.lang.dag import DAG, InputNode, Node
from repro.matrix.distributed import BlockedMatrix

Query = Union[DAG, Expr, Sequence[Expr]]


def as_dag(query: Query) -> DAG:
    """Normalize a query (expression, list of expressions, or DAG) to a DAG."""
    if isinstance(query, DAG):
        return query
    if isinstance(query, Expr):
        return DAG(query.node)
    return DAG([e.node for e in query])


@dataclass
class ExecutionResult:
    """Materialized outputs plus everything measured along the way."""

    outputs: Dict[Node, BlockedMatrix]
    metrics: MetricsCollector
    fusion_plan: Optional[FusionPlan]
    dag: Optional[DAG] = None
    #: Structured runtime trace (auto-attached when time_model="scheduled");
    #: per-query slice — on a shared cluster it contains only this query's
    #: events.  Export with ``result.trace.write_chrome_trace("run.json")``.
    trace: Optional[TraceRecorder] = None
    #: The lowered unit graph this query executed through (None only for
    #: hand-built results).
    physical_plan: Optional[PhysicalPlan] = None
    #: Cost-model accountability report + span tree (None when
    #: ``EngineConfig.telemetry`` is off).  ``profile.render()`` is the
    #: engine's EXPLAIN ANALYZE.
    profile: Optional[QueryProfile] = None

    def __post_init__(self) -> None:
        if self.dag is None and self.fusion_plan is not None:
            self.dag = self.fusion_plan.dag

    def output(self, index: int = 0) -> BlockedMatrix:
        """The *index*-th root's result (most queries have one root)."""
        if self.dag is None:
            raise ValueError(
                "ExecutionResult has no DAG attached; read .outputs directly"
            )
        roots = list(self.dag.roots)
        if not -len(roots) <= index < len(roots):
            raise IndexError(
                f"output index {index} out of range: this query has "
                f"{len(roots)} root(s)"
            )
        return self.outputs[roots[index]]

    @property
    def comm_bytes(self) -> int:
        return self.metrics.comm_bytes

    @property
    def elapsed_seconds(self) -> float:
        return self.metrics.elapsed_seconds


class Engine(ABC):
    """Base class: plan a DAG, lower it, then execute units on the cluster."""

    #: Human-readable engine name (appears in benchmark tables).
    name: str = "engine"

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config or EngineConfig()
        #: Finished plans keyed by (planning signature, DAG fingerprint);
        #: iterative workloads hit it from iteration 2 on.  Entries carry
        #: the lowered physical plan, so a hit skips lowering and every
        #: per-unit parameter search too.
        self.plan_cache = PlanCache(self.config.plan_cache_size)
        #: Materialized consolidation slabs, shared across executes so an
        #: iterative workload re-binding the same matrix (GNMF's ``X``)
        #: skips the copy from iteration 2 on.
        self.slice_cache = SliceCache(enabled=self.config.slice_reuse)
        #: Serializes execute() on this engine: the slice cache attachment
        #: and cluster-stage accounting are per-engine mutable state, so
        #: concurrent submitters (the serving layer) take turns; intra-query
        #: parallelism still comes from ``config.local_parallelism``.
        self._execute_lock = threading.RLock()
        #: Telemetry fan-out: attach sinks (``repro.obs``) to receive query
        #: profiles, span trees and counters.  With no sinks attached the
        #: emit path is a single attribute check.
        self.telemetry = EventBus()
        #: The most recent query's :class:`QueryProfile` (None before the
        #: first execute or with ``config.telemetry=False``).
        self.last_profile: Optional[QueryProfile] = None
        #: Per-kernel throughput observations + fits
        #: (:mod:`repro.core.calibration`).  Always constructed — it is
        #: inert (never read, never written) while
        #: ``config.calibration == "off"``; ``"observe"`` feeds it after
        #: each execute; ``"active"`` additionally prices planning with its
        #: fits and re-plans cached entries whose error crossed the
        #: threshold.  The serving layer shares one engine, hence one store,
        #: across tenants.
        self.calibration = CalibrationStore(
            window=self.config.calibration_window,
            min_samples=self.config.calibration_min_samples,
        )
        #: Engine-owned worker-process pool
        #: (``config.execution_backend="process"``).  Lazy: nothing spawns
        #: until the first eligible wave dispatch; persistent: workers
        #: survive across executes.  Release with :meth:`close`.
        self._procpool = None

    # -- process backend -------------------------------------------------------

    def _ensure_procpool(self):
        """The engine's :class:`~repro.cluster.procpool.ProcessPool`,
        created on first use; ``None`` when a previous pool broke or was
        closed (callers then fall back to the thread backend)."""
        pool = self._procpool
        if pool is not None:
            return None if (pool.broken or pool.closed) else pool
        from repro.cluster.procpool import ProcessPool

        pool = ProcessPool(self.config.local_parallelism)
        self._procpool = pool
        return pool

    def close(self) -> None:
        """Release engine-owned runtime resources (idempotent).

        Today that is the worker-process pool; thread-backend engines hold
        nothing and close is a no-op.  The engine stays usable afterwards —
        process-backed executes demote to the thread backend.
        """
        pool = self._procpool
        if pool is not None:
            pool.close()

    def clone(self, config: Optional[EngineConfig] = None) -> "Engine":
        """A fresh engine of this class: own plan/slice caches, own
        calibration store, no worker pool yet.  *config* overrides the
        source engine's (the replica pool divides ``local_parallelism``
        this way); planning behaviour is otherwise identical, so clones
        produce bit-identical outputs and modeled metrics.  Subclasses
        with extra constructor state (e.g. FuseME's optimizer method)
        override to carry it across.
        """
        return type(self)(config if config is not None else self.config)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- subclass hooks --------------------------------------------------------

    @abstractmethod
    def plan_query(self, dag: DAG) -> FusionPlan:
        """Decide which operators fuse and which run alone."""

    @abstractmethod
    def run_unit(
        self,
        op: UnitOp,
        cluster: SimulatedCluster,
        env: Mapping[object, BlockedMatrix],
    ) -> Union[BlockedMatrix, Dict[Node, BlockedMatrix]]:
        """Execute one physical unit and return its materialized output.

        Multi-output units (Multi-aggregation fusion) return a mapping from
        root node to its materialized matrix instead of a single matrix.
        The :class:`UnitOp` carries the lowering-time decisions (operator
        kind, cuboid parameters), so this must not mutate engine state —
        independent units may run concurrently.
        """

    def prepare_dag(self, dag: DAG, inputs: Optional[Mapping[str, BlockedMatrix]] = None) -> DAG:
        """Engine-specific query normalization before planning (rewrites,
        metadata refinement).  *inputs* is None when called from
        :meth:`explain` without bound matrices."""
        return dag

    def annotate_unit(
        self, unit: PlanUnit, hint=None
    ) -> UnitAnnotation:
        """Choose the physical operator kind and cost estimate for *unit*.

        Called once per unit during lowering; *hint* is the cached
        :class:`~repro.core.optimizer.OptimizerResult` on a plan-cache
        rebuild.  The base implementation classifies by plan structure and
        attaches a metadata-only estimate; engines refine it.
        """
        plan = unit.plan
        if isinstance(plan, MultiAggPlan):
            kind = "multi-agg"
        elif plan.contains_matmul:
            kind = "matmul"
        else:
            kind = "cell"
        return UnitAnnotation(kind=kind, estimate=self.calibrated_estimate(kind, unit))

    # -- calibration -----------------------------------------------------------

    @property
    def calibration_active(self) -> bool:
        """Whether planning prices with fitted throughputs."""
        return self.config.calibration == "active"

    def plan_sparsity_bucket(self, plan) -> str:
        """The calibration bucket of a partial plan: its sparsest frontier
        input decides (sparse kernels have very different effective
        throughput than dense ones — the whole point of bucketing)."""
        densities = [
            node.meta.density
            for node in plan.frontier()
            if node.meta.density is not None
        ]
        return sparsity_bucket(min(densities) if densities else None)

    def calibration_for(self, kind: str, plan) -> Optional[KernelCalibration]:
        """Fitted coefficients to price *plan* as a *kind* unit with, or
        ``None`` (paper constants) when calibration is not active or the
        kernel class has no trustworthy fit yet."""
        if not self.calibration_active:
            return None
        return self.calibration.coefficients(
            kind, self.plan_sparsity_bucket(plan)
        )

    def calibrated_estimate(self, kind: str, unit: PlanUnit) -> UnitEstimate:
        """A generic unit estimate, with calibrated modeled seconds attached
        when the engine is active and the kernel class has a fit.  The
        inactive path returns exactly :func:`generic_unit_estimate`."""
        estimate = generic_unit_estimate(unit)
        fit = self.calibration_for(kind, unit.plan)
        if fit is None:
            return estimate
        return replace(
            estimate,
            seconds=fit.predict_seconds(estimate.net_bytes, estimate.flops),
        )

    def planning_signature(self) -> tuple:
        """Everything besides DAG structure that can steer planning.

        Part of the plan-cache key: a changed knob must miss, never reuse a
        plan produced under different rules.  Subclasses with extra planner
        state (e.g. the FuseME optimizer method) append to this tuple.
        """
        config = self.config
        cluster = config.cluster
        return (
            type(self).__name__,
            self.name,
            cluster.num_nodes,
            cluster.tasks_per_node,
            cluster.task_memory_budget,
            cluster.network_bandwidth,
            cluster.compute_bandwidth,
            cluster.task_launch_overhead,
            cluster.input_split_bytes,
            config.block_size,
            config.sparsity_exploitation,
            config.exploitation_phase,
            config.overlap_comm_compute,
            config.sparse_threshold,
            config.calibration,
            config.graph_passes,
        )

    def planning_attrs(self) -> Dict[str, Any]:
        """Engine-specific attributes attached to the planning span.

        Called right after planning/lowering (so per-query planner state —
        e.g. FuseME's exploitation report — is fresh).  Values must be
        plain data; the base engine has nothing to add.
        """
        return {}

    # -- planning / lowering ----------------------------------------------------

    def _plan_physical(
        self, dag: DAG, tracer=None
    ) -> tuple[DAG, PhysicalPlan, bool, Optional[tuple]]:
        """Plan + lower *dag*, via the plan cache.

        Returns ``(dag, physical, cache_hit, cache_key)`` — on a hit the
        returned DAG is the cached one (plan units hold identity-hashed
        nodes of the DAG they were planned against; inputs still bind by
        name, which the fingerprint guarantees to match).  The key lets the
        calibration feedback loop find (and possibly evict) the entry this
        query executed.

        Lowering yields the *raw* plan; the graph-pass pipeline
        (:func:`repro.core.passes.run_graph_passes`) rewrites it before
        anything caches or runs it, so the cache always stores the
        *optimized* plan (the pass spec is part of the planning signature,
        so toggling passes can never reuse the other mode's entry).
        *tracer* rides along so each pass gets its own planning span.
        """
        cache_key = None
        if self.plan_cache.enabled:
            cache_key = (self.planning_signature(), dag_fingerprint(dag))
            entry = self.plan_cache.get(cache_key)
            if entry is not None and entry.physical is not None:
                return entry.dag, entry.physical, True, cache_key
        fusion_plan = self.plan_query(dag)
        physical = lower_plan(
            dag,
            fusion_plan,
            self.annotate_unit,
            engine_name=self.name,
        )
        physical = run_graph_passes(self, physical, tracer=tracer)
        if cache_key is not None:
            # hints stay keyed by *raw* lowering indices (merged members
            # keep theirs), matching how lower_plan consumes them
            hints = {}
            for op in physical.ops:
                for source in (op.members if op.members else (op,)):
                    if source.optimizer_result is not None:
                        hints[source.index] = source.optimizer_result
            self.plan_cache.put(
                cache_key,
                PlanCacheEntry(
                    dag,
                    fusion_plan,
                    hints,
                    physical=physical,
                    fit_generation=(
                        self.calibration.generation
                        if self.calibration_active else None
                    ),
                ),
            )
        return dag, physical, False, cache_key

    def explain(
        self,
        query: Query,
        inputs: Optional[Mapping[str, BlockedMatrix]] = None,
    ) -> str:
        """Render the physical plan for *query* without executing it.

        Plans and lowers exactly the way :meth:`execute` would (sharing the
        plan cache, so a later execute of the same query reuses the work)
        but never opens a cluster stage.  *inputs* is optional — when given
        it feeds the same metadata refinement execute would apply.
        """
        return self.lower_query(query, inputs).render()

    def lower_query(
        self,
        query: Query,
        inputs: Optional[Mapping[str, BlockedMatrix]] = None,
    ) -> PhysicalPlan:
        """Plan + lower *query* to its :class:`PhysicalPlan` (no execution)."""
        dag = self.prepare_dag(as_dag(query), inputs)
        with self._execute_lock:
            _, physical, _, _ = self._plan_physical(dag)
        return physical

    # -- driver ---------------------------------------------------------------------

    def execute(
        self,
        query: Query,
        inputs: Mapping[str, BlockedMatrix],
        cluster: Optional[SimulatedCluster] = None,
    ) -> ExecutionResult:
        """Plan and run *query* against named input matrices.

        Thread-safe: concurrent callers serialize on the engine's execute
        lock (cluster-stage accounting is per-engine mutable state).  The
        returned result's metrics are the delta this query accumulated, so
        queries sharing one long-lived cluster report independent per-query
        numbers while the cluster's own collector keeps whole-job totals.
        """
        dag = self.prepare_dag(as_dag(query), inputs)
        dag.validate_inputs(inputs.keys())
        self._check_bindings(dag, inputs)
        if cluster is None:
            cluster = SimulatedCluster(self.config)
        with self._execute_lock:
            return self._execute(dag, inputs, cluster)

    def profile(
        self,
        query: Query,
        inputs: Mapping[str, BlockedMatrix],
        cluster: Optional[SimulatedCluster] = None,
    ) -> QueryProfile:
        """Execute *query* and return its cost-model accountability report.

        The engine's EXPLAIN ANALYZE: per-unit predicted-vs-measured net
        bytes / flops / modeled seconds with relative errors, the query's
        span tree, and the fast-path counters.  The underlying
        :class:`ExecutionResult` rides along as ``profile.result``.
        """
        if not self.config.telemetry:
            raise RuntimeError(
                "engine.profile() needs telemetry; this engine was built "
                "with EngineConfig.telemetry=False"
            )
        result = self.execute(query, inputs, cluster)
        assert result.profile is not None
        return result.profile

    def _execute(
        self,
        dag: DAG,
        inputs: Mapping[str, BlockedMatrix],
        cluster: SimulatedCluster,
    ) -> ExecutionResult:
        baseline = cluster.metrics.copy()
        cluster.begin_query()
        # attach the engine's long-lived slice cache; counters are bumped per
        # execute as deltas so each run's metrics stand alone
        self.slice_cache.enabled = self.config.slice_reuse
        cluster.slice_cache = self.slice_cache
        slice_hits0 = self.slice_cache.hits
        slice_misses0 = self.slice_cache.misses

        # telemetry is observability only: every modeled number and matrix
        # output below is bit-identical whether the tracer exists or not
        tracer = SpanTracer() if self.config.telemetry else None
        modeled_epoch = cluster.metrics.elapsed_seconds
        plan_span: Optional[Span] = None
        exec_span: Optional[Span] = None
        unit_walls: Dict[int, Tuple[float, float]] = {}
        unit_workers: Dict[int, Dict[str, float]] = {}

        with (
            tracer.span("query", "query", engine=self.name)
            if tracer else nullcontext()
        ):
            with (
                tracer.span("plan", "planning")
                if tracer else nullcontext()
            ) as plan_span:
                dag, physical, cache_hit, cache_key = self._plan_physical(
                    dag, tracer=tracer
                )
            if self.plan_cache.enabled:
                cluster.metrics.bump(
                    "plan_cache_hits" if cache_hit else "plan_cache_misses"
                )
                if cluster.trace is not None:
                    cluster.trace.instant(
                        "plan_cache:" + ("hit" if cache_hit else "miss"),
                        "cache",
                        ts=modeled_epoch,
                        engine=self.name,
                        units=len(physical.ops),
                    )
            optimizer_counters = _optimizer_counters(physical)
            if plan_span is not None:
                plan_span.attrs.update(
                    cache_hit=cache_hit,
                    units=len(physical.ops),
                    waves=len(physical.waves()),
                    **optimizer_counters,
                    **self.planning_attrs(),
                )

            observer = None
            if tracer is not None:
                def observer(op, wall_start, wall_end, worker=None):
                    # the process backend passes the worker-captured span
                    # dict as a 4th argument; the thread path passes none
                    unit_walls[op.index] = (wall_start, wall_end)
                    if worker is not None:
                        unit_workers[op.index] = worker

            env: Dict[object, BlockedMatrix] = dict(inputs)
            with (
                tracer.span("execute", "execution")
                if tracer else nullcontext()
            ) as exec_span:
                try:
                    run_physical_plan(
                        self, physical, cluster, env,
                        parallelism=self.config.local_parallelism,
                        unit_observer=observer,
                    )
                finally:
                    slices = cluster.slice_cache
                    hit_delta = slices.hits - slice_hits0
                    miss_delta = slices.misses - slice_misses0
                    if hit_delta or miss_delta:
                        cluster.metrics.bump("slice_cache_hits", hit_delta)
                        cluster.metrics.bump("slice_cache_misses", miss_delta)
                        if cluster.trace is not None:
                            cluster.trace.instant(
                                "slice_cache",
                                "cache",
                                ts=cluster.metrics.elapsed_seconds,
                                hits=hit_delta,
                                misses=miss_delta,
                            )

        if (
            exec_span is not None
            and self._procpool is not None
            and self._procpool.stats.batches
        ):
            # pool-lifetime utilization (workers persist across executes)
            exec_span.attrs["procpool"] = self._procpool.stats.as_dict()

        outputs = {root: self._root_value(root, env, inputs) for root in dag.roots}
        if self.config.calibration != "off":
            # feed the store (and maybe evict the plan) before the final
            # diff, so the calibration counters land in this query's delta
            self._calibration_feedback(
                cache_key, physical, cluster.metrics.diff_since(baseline),
                cluster,
            )
        metrics = cluster.metrics.diff_since(baseline)

        span = None
        if tracer is not None:
            span = tracer.root
            _attach_unit_spans(
                exec_span, physical, metrics, unit_walls, modeled_epoch,
                unit_workers,
            )
            modeled_end = modeled_epoch + metrics.elapsed_seconds
            span.modeled_start = modeled_epoch
            span.modeled_end = modeled_end
            exec_span.modeled_start = modeled_epoch
            exec_span.modeled_end = modeled_end
            if cluster.trace is not None:
                # planner/unit spans join the stage events on the driver's
                # span row — must happen before query_trace() slices
                cluster.trace.span_tree(span, epoch=modeled_epoch)

        result = ExecutionResult(
            outputs=outputs,
            metrics=metrics,
            fusion_plan=physical.fusion_plan,
            trace=cluster.query_trace(),
            physical_plan=physical,
        )
        if tracer is not None:
            profile = self._build_profile(
                physical, metrics, optimizer_counters, span, result,
                unit_workers,
            )
            result.profile = profile
            self.last_profile = profile
            self._emit_telemetry(profile)
        return result

    def _calibration_feedback(
        self,
        cache_key: Optional[tuple],
        physical: PhysicalPlan,
        delta: MetricsCollector,
        cluster: SimulatedCluster,
    ) -> None:
        """Close the loop after one execute (``observe`` and ``active``).

        Every unit's measured per-unit totals become one
        :class:`~repro.core.calibration.Observation` under its operator
        kind + sparsity bucket.  In ``active`` mode, a cached plan whose
        mean abs seconds error crossed the replan threshold — while the
        store learned something since the plan was made — is evicted, so
        the next structurally identical query re-plans with the latest
        coefficients (adaptive re-planning).  Counters are observability
        only and never feed a modeled number.
        """
        per_unit = delta.per_unit_totals()
        observed = 0
        errors = []
        for op in physical.ops:
            totals = per_unit.get(op.index)
            if totals is None:
                continue
            if op.unit is not None:
                bucket = self.plan_sparsity_bucket(op.unit.plan)
            elif op.members:
                # merged unit: bucket by the sparsest member frontier, the
                # same rule plan_sparsity_bucket applies to a single plan
                densities = [
                    node.meta.density
                    for member in op.members
                    if member.unit is not None
                    for node in member.unit.plan.frontier()
                    if node.meta.density is not None
                ]
                bucket = sparsity_bucket(min(densities) if densities else None)
            else:
                bucket = "dense"
            predicted = (
                op.estimate.seconds if op.estimate is not None else None
            )
            measured = float(totals.get("elapsed_seconds", 0.0))
            # regressors are the planner's own estimates (the space
            # predict_seconds is later applied in); measured counters ride
            # along for accountability only
            if op.estimate is not None:
                net_est = float(op.estimate.net_bytes)
                com_est = float(op.estimate.flops)
            else:
                net_est = float(totals.get("comm_bytes", 0))
                com_est = float(totals.get("flops", 0))
            if self.calibration.observe(
                op.kind,
                bucket,
                net_bytes=net_est,
                flops=com_est,
                measured_seconds=measured,
                predicted_seconds=predicted,
                measured_net_bytes=float(totals.get("comm_bytes", 0)),
                measured_flops=float(totals.get("flops", 0)),
                wall_seconds=float(totals.get("wall_seconds", 0.0)),
                num_stages=int(totals.get("num_stages", 0)),
                num_tasks=int(totals.get("num_tasks", 0)),
            ):
                observed += 1
                if predicted is not None and measured > 0:
                    errors.append(abs(predicted - measured) / measured)
        generation = self.calibration.commit()
        if observed:
            cluster.metrics.bump("calibration_observations", observed)

        if not (self.calibration_active and cache_key is not None and errors):
            return
        entry = self.plan_cache.peek(cache_key)
        if entry is None:
            return
        mean_error = sum(errors) / len(errors)
        stale = entry.fit_generation is None or entry.fit_generation < generation
        if mean_error > self.config.calibration_replan_threshold and stale:
            if self.plan_cache.invalidate(cache_key):
                cluster.metrics.bump("plan_cache_calibration_evictions")
                if cluster.trace is not None:
                    cluster.trace.instant(
                        "plan_cache:invalidate",
                        "cache",
                        ts=cluster.metrics.elapsed_seconds,
                        engine=self.name,
                        mean_error=round(mean_error, 6),
                        generation=generation,
                    )
                if self.telemetry.active:
                    self.telemetry.emit(TelemetryEvent(
                        name="plan_cache.invalidate",
                        kind="event",
                        value=mean_error,
                        attrs={
                            "engine": self.name,
                            "generation": generation,
                        },
                    ))

    def _build_profile(
        self,
        physical: PhysicalPlan,
        metrics: MetricsCollector,
        optimizer_counters: Mapping[str, int],
        span: Span,
        result: ExecutionResult,
        unit_workers: Optional[Mapping[int, Mapping[str, float]]] = None,
    ) -> QueryProfile:
        per_unit = metrics.per_unit_totals()
        workers = unit_workers or {}
        units = []
        for op in physical.ops:
            totals = per_unit.get(op.index, {})
            worker = workers.get(op.index)
            est = op.estimate
            units.append(UnitProfile(
                index=op.index,
                kind=op.kind,
                label=op.label(),
                pqr=op.pqr,
                sources=op.source_indices,
                predicted_seconds=(
                    est.seconds if est is not None else None
                ),
                predicted_net_bytes=(
                    est.net_bytes if est is not None else None
                ),
                predicted_flops=est.flops if est is not None else None,
                predicted_mem_bytes=(
                    est.mem_bytes_per_task if est is not None else None
                ),
                measured_seconds=float(totals.get("elapsed_seconds", 0.0)),
                measured_comm_bytes=float(totals.get("comm_bytes", 0)),
                measured_flops=float(totals.get("flops", 0)),
                num_stages=int(totals.get("num_stages", 0)),
                num_tasks=int(totals.get("num_tasks", 0)),
                # prefer the worker-process clock when the unit ran on the
                # process backend: stage-sum wall time excludes the worker's
                # env open/write overhead and was measured in another process
                measured_wall_seconds=(
                    float(worker["wall_seconds"])
                    if worker is not None and "wall_seconds" in worker
                    else float(totals["wall_seconds"])
                    if "wall_seconds" in totals else None
                ),
            ))
        counters = dict(metrics.counters)
        counters.update(optimizer_counters)
        return QueryProfile(
            engine=self.name,
            units=tuple(units),
            totals=metrics.totals(),
            counters=counters,
            span=span,
            wall_seconds=span.wall_seconds,
            result=result,
        )

    def _emit_telemetry(self, profile: QueryProfile) -> None:
        """Fan the finished query's telemetry out to attached sinks."""
        emit_profile_telemetry(self.telemetry, profile)

    @staticmethod
    def _root_value(
        root: Node,
        env: Mapping[object, BlockedMatrix],
        inputs: Optional[Mapping[str, BlockedMatrix]] = None,
    ) -> BlockedMatrix:
        # a bare-input root resolves by name, never by node id: in a
        # multi-root DAG the leaf object may have been rebuilt by rewrites
        # (meta refresh) or belong to a cached plan's DAG, and the name is
        # the stable binding key
        if isinstance(root, InputNode):
            value = env.get(root.name)
            if value is None and inputs is not None:
                value = inputs.get(root.name)
            if value is None:
                raise PlanError(f"no binding for input root {root!r}")
            return value
        value = env.get(root.node_id)
        if value is None:
            raise PlanError(f"no value produced for root {root!r}")
        return value

    @staticmethod
    def _check_bindings(
        dag: DAG, inputs: Mapping[str, BlockedMatrix]
    ) -> None:
        for leaf in dag.inputs():
            value = inputs.get(leaf.name)
            if value is None:
                continue  # validate_inputs already reported missing names
            if value.shape != leaf.meta.shape:
                raise PlanError(
                    f"input {leaf.name!r} has shape {value.shape}, the query "
                    f"declared {leaf.meta.shape}"
                )
            if value.block_size != leaf.meta.block_size:
                raise PlanError(
                    f"input {leaf.name!r} uses block size {value.block_size}, "
                    f"the query declared {leaf.meta.block_size}"
                )


def emit_profile_telemetry(bus: EventBus, profile: QueryProfile) -> None:
    """Emit a finished query's profile to *bus*: one counter event per
    total and per fast-path counter, plus the full profile document.

    Shared by every engine (including baselines that don't subclass
    :class:`Engine`), so sinks see one uniform event vocabulary.
    """
    if not bus.active:
        return
    engine = profile.engine
    bus.emit_counters("engine.totals", profile.totals, engine=engine)
    bus.emit_counters("engine.counters", profile.counters, engine=engine)
    bus.emit(TelemetryEvent(
        name="query.profile",
        kind="profile",
        value=profile.measured_seconds,
        attrs={"engine": engine, "profile": profile.to_dict()},
    ))


def _optimizer_counters(physical: PhysicalPlan) -> Dict[str, int]:
    """Cuboid-search totals summed over the plan's units.

    ``cuboids_enumerated`` is the size of the full candidate spaces,
    ``cuboids_evaluated`` what the searches actually costed out, and
    ``cuboids_pruned`` their difference — the Figure 13(d) story as
    counters.  Empty for plans that ran no parameter search.
    """
    results = [
        source.optimizer_result
        for op in physical.ops
        for source in (op.members if op.members else (op,))
        if source.optimizer_result is not None
    ]
    if not results:
        return {}
    return {
        "cuboids_enumerated": sum(r.candidates for r in results),
        "cuboids_evaluated": sum(r.evaluations for r in results),
        "cuboids_pruned": sum(r.pruned for r in results),
        "cost_memo_hits": sum(r.memo_hits for r in results),
        "cost_memo_misses": sum(r.memo_misses for r in results),
    }


def _attach_unit_spans(
    exec_span: Span,
    physical: PhysicalPlan,
    metrics: MetricsCollector,
    unit_walls: Mapping[int, Tuple[float, float]],
    modeled_epoch: float,
    unit_workers: Optional[Mapping[int, Mapping[str, float]]] = None,
) -> None:
    """Grow the execute span: one child per unit, one grandchild per stage.

    Stage records are sequential on the modeled clock (wave dispatch
    re-sorts them into unit order), so walking them while accumulating
    seconds reconstructs each stage's modeled ``[start, end]`` window.
    Wall times come from the unit observer; stages carry modeled time only.

    Units that ran on the process backend additionally get a ``worker``
    child span built from the clock the *worker* captured: anchored inside
    the driver-observed dispatch window, carrying the worker pid, kernel
    seconds and shared-memory traffic — the cross-process half of the
    unified timeline.
    """
    clock = modeled_epoch
    windows: Dict[int, list] = {}
    for record in metrics.stages:
        start, clock = clock, clock + record.seconds
        if record.unit is not None:
            windows.setdefault(record.unit, []).append((record, start, clock))

    workers = unit_workers or {}
    for op in physical.ops:
        unit_span = exec_span.child(
            f"unit[{op.index}]", "unit", kind=op.kind, label=op.label()
        )
        if op.pqr is not None:
            unit_span.attrs["pqr"] = op.pqr
        if op.members:
            unit_span.attrs["sources"] = list(op.source_indices)
        wall = unit_walls.get(op.index)
        if wall is not None:
            unit_span.wall_start, unit_span.wall_end = wall
        worker = workers.get(op.index)
        if worker is not None:
            pid = int(worker.get("pid", -1))
            worker_span = unit_span.child(
                f"worker[{pid}]",
                "worker",
                pid=pid,
                kernel_seconds=worker.get("kernel_seconds"),
                shm_read_bytes=worker.get("shm_read_bytes"),
                shm_write_bytes=worker.get("shm_write_bytes"),
            )
            if "worker_id" in worker:
                worker_span.attrs["worker_id"] = int(worker["worker_id"])
            if wall is not None and "wall_seconds" in worker:
                # the worker clock measures duration; anchor it at the tail
                # of the driver-observed dispatch window (queue wait first,
                # execution second), clamped so it never precedes dispatch
                duration = float(worker["wall_seconds"])
                worker_span.wall_end = wall[1]
                worker_span.wall_start = max(wall[0], wall[1] - duration)
        stage_windows = windows.get(op.index, [])
        if stage_windows:
            unit_span.modeled_start = stage_windows[0][1]
            unit_span.modeled_end = stage_windows[-1][2]
        for record, start, end in stage_windows:
            stage_span = unit_span.child(
                record.name,
                "stage",
                num_tasks=record.num_tasks,
                comm_bytes=record.comm_bytes,
                flops=record.flops,
            )
            stage_span.modeled_start = start
            stage_span.modeled_end = end
