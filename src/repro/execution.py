"""Shared engine skeleton.

Every engine in this repository — FuseME and the four baselines — executes a
query the same way: plan the DAG into units, then run the units in dependency
order on the simulated cluster, materializing each unit's output.  Engines
differ only in *how they plan* (which operators fuse) and *which physical
operator runs a unit* — exactly the axes the paper's evaluation compares.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Union

from repro.cluster.executor import SimulatedCluster
from repro.cluster.metrics import MetricsCollector
from repro.cluster.slice_cache import SliceCache
from repro.cluster.runtime import TraceRecorder
from repro.config import EngineConfig
from repro.core.plan import FusionPlan, PlanUnit
from repro.core.plan_cache import PlanCache, PlanCacheEntry, dag_fingerprint
from repro.errors import PlanError
from repro.lang.builder import Expr
from repro.lang.dag import DAG, Node
from repro.matrix.distributed import BlockedMatrix

Query = Union[DAG, Expr, Sequence[Expr]]


def as_dag(query: Query) -> DAG:
    """Normalize a query (expression, list of expressions, or DAG) to a DAG."""
    if isinstance(query, DAG):
        return query
    if isinstance(query, Expr):
        return DAG(query.node)
    return DAG([e.node for e in query])


@dataclass
class ExecutionResult:
    """Materialized outputs plus everything measured along the way."""

    outputs: Dict[Node, BlockedMatrix]
    metrics: MetricsCollector
    fusion_plan: Optional[FusionPlan]
    dag: Optional[DAG] = None
    #: Structured runtime trace (auto-attached when time_model="scheduled");
    #: export with ``result.trace.write_chrome_trace("run.json")``.
    trace: Optional[TraceRecorder] = None

    def __post_init__(self) -> None:
        if self.dag is None and self.fusion_plan is not None:
            self.dag = self.fusion_plan.dag

    def output(self, index: int = 0) -> BlockedMatrix:
        """The *index*-th root's result (most queries have one root)."""
        if self.dag is None:
            raise ValueError(
                "ExecutionResult has no DAG attached; read .outputs directly"
            )
        roots = list(self.dag.roots)
        return self.outputs[roots[index]]

    @property
    def comm_bytes(self) -> int:
        return self.metrics.comm_bytes

    @property
    def elapsed_seconds(self) -> float:
        return self.metrics.elapsed_seconds


class Engine(ABC):
    """Base class: plan a DAG, then execute its units on the cluster."""

    #: Human-readable engine name (appears in benchmark tables).
    name: str = "engine"

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config or EngineConfig()
        #: Finished plans keyed by (planning signature, DAG fingerprint);
        #: iterative workloads hit it from iteration 2 on.
        self.plan_cache = PlanCache(self.config.plan_cache_size)
        #: Materialized consolidation slabs, shared across executes so an
        #: iterative workload re-binding the same matrix (GNMF's ``X``)
        #: skips the copy from iteration 2 on.
        self.slice_cache = SliceCache(enabled=self.config.slice_reuse)
        self._unit_hints: Optional[Dict[int, object]] = None
        self._hint_sink: Optional[Dict[int, object]] = None
        self._unit_index = -1
        #: Serializes execute() on this engine: planner hints, the slice
        #: cache attachment and cluster-stage accounting are per-engine
        #: mutable state, so concurrent submitters (the serving layer) take
        #: turns; intra-query parallelism still comes from
        #: ``config.local_parallelism``.
        self._execute_lock = threading.RLock()

    # -- subclass hooks --------------------------------------------------------

    @abstractmethod
    def plan_query(self, dag: DAG) -> FusionPlan:
        """Decide which operators fuse and which run alone."""

    @abstractmethod
    def run_unit(
        self,
        unit: PlanUnit,
        cluster: SimulatedCluster,
        env: Mapping[object, BlockedMatrix],
    ) -> Union[BlockedMatrix, Dict[Node, BlockedMatrix]]:
        """Execute one plan unit and return its materialized output.

        Multi-output units (Multi-aggregation fusion) return a mapping from
        root node to its materialized matrix instead of a single matrix.
        """

    def planning_signature(self) -> tuple:
        """Everything besides DAG structure that can steer planning.

        Part of the plan-cache key: a changed knob must miss, never reuse a
        plan produced under different rules.  Subclasses with extra planner
        state (e.g. the FuseME optimizer method) append to this tuple.
        """
        config = self.config
        cluster = config.cluster
        return (
            type(self).__name__,
            self.name,
            cluster.num_nodes,
            cluster.tasks_per_node,
            cluster.task_memory_budget,
            cluster.network_bandwidth,
            cluster.compute_bandwidth,
            cluster.task_launch_overhead,
            cluster.input_split_bytes,
            config.block_size,
            config.sparsity_exploitation,
            config.exploitation_phase,
            config.overlap_comm_compute,
            config.sparse_threshold,
        )

    # -- per-unit optimizer hints (populated by the plan cache) ---------------

    def _unit_hint(self):
        """The cached OptimizerResult for the unit currently running."""
        if self._unit_hints is None:
            return None
        return self._unit_hints.get(self._unit_index)

    def _store_unit_hint(self, result: object) -> None:
        """Remember this unit's optimizer outcome for future cache hits."""
        if self._hint_sink is not None and result is not None:
            self._hint_sink[self._unit_index] = result

    # -- driver ---------------------------------------------------------------------

    def execute(
        self,
        query: Query,
        inputs: Mapping[str, BlockedMatrix],
        cluster: Optional[SimulatedCluster] = None,
    ) -> ExecutionResult:
        """Plan and run *query* against named input matrices.

        Thread-safe: concurrent callers serialize on the engine's execute
        lock (planner hints and cluster-stage accounting are per-engine
        mutable state).  The returned result's metrics are the delta this
        query accumulated, so queries sharing one long-lived cluster report
        independent per-query numbers while the cluster's own collector
        keeps whole-job totals.
        """
        dag = as_dag(query)
        dag.validate_inputs(inputs.keys())
        self._check_bindings(dag, inputs)
        if cluster is None:
            cluster = SimulatedCluster(self.config)
        with self._execute_lock:
            return self._execute(dag, inputs, cluster)

    def _execute(
        self,
        dag: DAG,
        inputs: Mapping[str, BlockedMatrix],
        cluster: SimulatedCluster,
    ) -> ExecutionResult:
        baseline = cluster.metrics.copy()
        cluster.begin_query()
        # attach the engine's long-lived slice cache; counters are bumped per
        # execute as deltas so each run's metrics stand alone
        self.slice_cache.enabled = self.config.slice_reuse
        cluster.slice_cache = self.slice_cache
        slice_hits0 = self.slice_cache.hits
        slice_misses0 = self.slice_cache.misses

        cache_key = None
        entry = None
        if self.plan_cache.enabled:
            cache_key = (self.planning_signature(), dag_fingerprint(dag))
            entry = self.plan_cache.get(cache_key)
        if entry is not None:
            # plan units reference the cached DAG's (identity-hashed) nodes,
            # so execution proceeds against that DAG; inputs still bind by
            # name, which the fingerprint guarantees to match
            dag = entry.dag
            fusion_plan = entry.fusion_plan
            self._unit_hints = entry.unit_hints
            self._hint_sink = None
            cluster.metrics.bump("plan_cache_hits")
        else:
            fusion_plan = self.plan_query(dag)
            self._unit_hints = None
            self._hint_sink = {} if cache_key is not None else None
            if cache_key is not None:
                cluster.metrics.bump("plan_cache_misses")

        env: Dict[object, BlockedMatrix] = dict(inputs)
        try:
            for index, unit in enumerate(fusion_plan):
                self._unit_index = index
                result = self.run_unit(unit, cluster, env)
                if isinstance(result, dict):
                    # multi-output unit (Multi-aggregation fusion)
                    for node, value in result.items():
                        env[node.node_id] = value
                else:
                    env[unit.output.node_id] = result
        finally:
            self._unit_index = -1
            slices = cluster.slice_cache
            hit_delta = slices.hits - slice_hits0
            miss_delta = slices.misses - slice_misses0
            if hit_delta or miss_delta:
                cluster.metrics.bump("slice_cache_hits", hit_delta)
                cluster.metrics.bump("slice_cache_misses", miss_delta)
            hints = self._hint_sink
            self._unit_hints = None
            self._hint_sink = None

        if cache_key is not None and entry is None:
            # store only finished executions: an aborted run may have planned
            # fine, but its hints would be incomplete
            self.plan_cache.put(
                cache_key, PlanCacheEntry(dag, fusion_plan, hints or {})
            )
        outputs = {root: self._root_value(root, env) for root in dag.roots}
        return ExecutionResult(
            outputs=outputs,
            metrics=cluster.metrics.diff_since(baseline),
            fusion_plan=fusion_plan,
            trace=cluster.trace,
        )

    @staticmethod
    def _root_value(root: Node, env: Mapping[object, BlockedMatrix]) -> BlockedMatrix:
        value = env.get(root.node_id)
        if value is None:
            # a root that is itself an input matrix
            name = getattr(root, "name", None)
            if name is not None and name in env:
                return env[name]
            raise PlanError(f"no value produced for root {root!r}")
        return value

    @staticmethod
    def _check_bindings(dag: DAG, inputs: Mapping[str, BlockedMatrix]) -> None:
        for leaf in dag.inputs():
            value = inputs.get(leaf.name)
            if value is None:
                continue  # validate_inputs already reported missing names
            if value.shape != leaf.meta.shape:
                raise PlanError(
                    f"input {leaf.name!r} has shape {value.shape}, the query "
                    f"declared {leaf.meta.shape}"
                )
            if value.block_size != leaf.meta.block_size:
                raise PlanError(
                    f"input {leaf.name!r} uses block size {value.block_size}, "
                    f"the query declared {leaf.meta.block_size}"
                )
