"""Shared engine skeleton.

Every engine in this repository — FuseME and the four baselines — executes a
query the same way: plan the DAG into units, then run the units in dependency
order on the simulated cluster, materializing each unit's output.  Engines
differ only in *how they plan* (which operators fuse) and *which physical
operator runs a unit* — exactly the axes the paper's evaluation compares.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Union

from repro.cluster.executor import SimulatedCluster
from repro.cluster.metrics import MetricsCollector
from repro.cluster.runtime import TraceRecorder
from repro.config import EngineConfig
from repro.core.plan import FusionPlan, PlanUnit
from repro.errors import PlanError
from repro.lang.builder import Expr
from repro.lang.dag import DAG, Node
from repro.matrix.distributed import BlockedMatrix

Query = Union[DAG, Expr, Sequence[Expr]]


def as_dag(query: Query) -> DAG:
    """Normalize a query (expression, list of expressions, or DAG) to a DAG."""
    if isinstance(query, DAG):
        return query
    if isinstance(query, Expr):
        return DAG(query.node)
    return DAG([e.node for e in query])


@dataclass
class ExecutionResult:
    """Materialized outputs plus everything measured along the way."""

    outputs: Dict[Node, BlockedMatrix]
    metrics: MetricsCollector
    fusion_plan: Optional[FusionPlan]
    dag: Optional[DAG] = None
    #: Structured runtime trace (auto-attached when time_model="scheduled");
    #: export with ``result.trace.write_chrome_trace("run.json")``.
    trace: Optional[TraceRecorder] = None

    def __post_init__(self) -> None:
        if self.dag is None and self.fusion_plan is not None:
            self.dag = self.fusion_plan.dag

    def output(self, index: int = 0) -> BlockedMatrix:
        """The *index*-th root's result (most queries have one root)."""
        assert self.dag is not None
        roots = list(self.dag.roots)
        return self.outputs[roots[index]]

    @property
    def comm_bytes(self) -> int:
        return self.metrics.comm_bytes

    @property
    def elapsed_seconds(self) -> float:
        return self.metrics.elapsed_seconds


class Engine(ABC):
    """Base class: plan a DAG, then execute its units on the cluster."""

    #: Human-readable engine name (appears in benchmark tables).
    name: str = "engine"

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config or EngineConfig()

    # -- subclass hooks --------------------------------------------------------

    @abstractmethod
    def plan_query(self, dag: DAG) -> FusionPlan:
        """Decide which operators fuse and which run alone."""

    @abstractmethod
    def run_unit(
        self,
        unit: PlanUnit,
        cluster: SimulatedCluster,
        env: Mapping[object, BlockedMatrix],
    ) -> Union[BlockedMatrix, Dict[Node, BlockedMatrix]]:
        """Execute one plan unit and return its materialized output.

        Multi-output units (Multi-aggregation fusion) return a mapping from
        root node to its materialized matrix instead of a single matrix.
        """

    # -- driver ---------------------------------------------------------------------

    def execute(
        self,
        query: Query,
        inputs: Mapping[str, BlockedMatrix],
        cluster: Optional[SimulatedCluster] = None,
    ) -> ExecutionResult:
        """Plan and run *query* against named input matrices."""
        dag = as_dag(query)
        dag.validate_inputs(inputs.keys())
        self._check_bindings(dag, inputs)
        fusion_plan = self.plan_query(dag)
        if cluster is None:
            cluster = SimulatedCluster(self.config)
        env: Dict[object, BlockedMatrix] = dict(inputs)
        for unit in fusion_plan:
            result = self.run_unit(unit, cluster, env)
            if isinstance(result, dict):
                # multi-output unit (Multi-aggregation fusion)
                for node, value in result.items():
                    env[node.node_id] = value
            else:
                env[unit.output.node_id] = result
        outputs = {root: self._root_value(root, env) for root in dag.roots}
        return ExecutionResult(
            outputs=outputs,
            metrics=cluster.metrics,
            fusion_plan=fusion_plan,
            trace=cluster.trace,
        )

    @staticmethod
    def _root_value(root: Node, env: Mapping[object, BlockedMatrix]) -> BlockedMatrix:
        value = env.get(root.node_id)
        if value is None:
            # a root that is itself an input matrix
            name = getattr(root, "name", None)
            if name is not None and name in env:
                return env[name]
            raise PlanError(f"no value produced for root {root!r}")
        return value

    @staticmethod
    def _check_bindings(dag: DAG, inputs: Mapping[str, BlockedMatrix]) -> None:
        for leaf in dag.inputs():
            value = inputs.get(leaf.name)
            if value is None:
                continue  # validate_inputs already reported missing names
            if value.shape != leaf.meta.shape:
                raise PlanError(
                    f"input {leaf.name!r} has shape {value.shape}, the query "
                    f"declared {leaf.meta.shape}"
                )
            if value.block_size != leaf.meta.block_size:
                raise PlanError(
                    f"input {leaf.name!r} uses block size {value.block_size}, "
                    f"the query declared {leaf.meta.block_size}"
                )
