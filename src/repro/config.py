"""Engine and cluster configuration.

:class:`EngineConfig` gathers every knob the paper specifies for the
experimental setup (Section 6.1): number of worker nodes ``N``, tasks per node
``Tc``, per-task memory budget ``theta_t``, peak network bandwidth ``Bn`` and
peak computation bandwidth ``Bc``, and the block size of the blocked matrix
layout.  Benchmarks construct configs that mirror the paper's cluster (8 nodes,
12 tasks/node, 1 Gbps, 546 GFLOPS, 10 GB/task) scaled down to laptop size.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # avoid a config <-> cluster import cycle at runtime
    from repro.cluster.runtime.faults import FaultPlan

#: Valid values for :attr:`EngineConfig.time_model`.
TIME_MODELS = ("aggregate", "scheduled")

#: Valid values for :attr:`EngineConfig.execution_backend`.
EXECUTION_BACKENDS = ("thread", "process")

#: Valid values for :attr:`EngineConfig.calibration`.
CALIBRATION_MODES = ("off", "observe", "active")

#: Graph-level optimizer passes (``repro.core.passes``) in pipeline order.
#: Defined here (not in ``core``) so the config layer can validate the
#: :attr:`EngineConfig.graph_passes` spec without importing upward.
GRAPH_PASSES = ("merge_units", "dedup_consolidations")

GBPS = 1e9 / 8  # bytes per second in one gigabit per second
GFLOPS = 1e9

#: The paper uses 1000x1000 blocks; we default to 100x100 scaled-down blocks.
DEFAULT_BLOCK_SIZE = 100

#: Bytes per double-precision element.
ELEMENT_BYTES = 8


@dataclass(frozen=True)
class ClusterConfig:
    """Shape and speed of the (simulated) cluster.

    Parameters
    ----------
    num_nodes:
        ``N`` in the paper: number of worker nodes.
    tasks_per_node:
        ``Tc`` in the paper: concurrent tasks per node (paper: 12).
    task_memory_budget:
        ``theta_t`` in bytes: per-task memory limit (paper: 10 GB).
    network_bandwidth:
        ``Bn`` in bytes/second: peak point-to-point bandwidth (paper: 1 Gbps).
    compute_bandwidth:
        ``Bc`` in flops/second per node (paper: 546 GFLOPS).
    task_launch_overhead:
        Fixed modeled seconds added per scheduled wave of tasks; Spark-like
        scheduling latency.  Small but nonzero so plans with many stages pay
        for them.
    input_split_bytes:
        Bytes per input partition (Spark/HDFS split size).  Determines how
        many partitions a repartitioned main matrix yields — the quantity
        SystemDS' BFO/RFO selection rule inspects, and the reason a very
        sparse matrix starves BFO of parallelism (Section 6.2).
    """

    num_nodes: int = 8
    tasks_per_node: int = 12
    task_memory_budget: int = 512 * 1024 * 1024
    network_bandwidth: float = 1.0 * GBPS
    compute_bandwidth: float = 546.0 * GFLOPS
    task_launch_overhead: float = 0.05
    input_split_bytes: int = 4 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.tasks_per_node <= 0:
            raise ValueError("tasks_per_node must be positive")
        if self.task_memory_budget <= 0:
            raise ValueError("task_memory_budget must be positive")
        if self.network_bandwidth <= 0 or self.compute_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")

    @property
    def total_tasks(self) -> int:
        """``T`` in the paper: total parallel task slots in the cluster."""
        return self.num_nodes * self.tasks_per_node

    @property
    def total_memory_budget(self) -> int:
        """Aggregate task memory across the cluster: ``T * theta_t`` bytes.

        The serving layer's default admission budget — the most data the
        cluster could hold in task memory at once.
        """
        return self.total_tasks * self.task_memory_budget


def enabled_graph_passes(spec: str) -> tuple:
    """Pass names a ``graph_passes`` spec enables, in pipeline order.

    ``"off"`` (or empty) enables none, ``"all"`` enables every pass in
    :data:`GRAPH_PASSES`, and a comma-separated list enables that subset —
    always re-ordered to the canonical pipeline order, never the spec's.
    Unknown names are preserved so ``EngineConfig.__post_init__`` can
    reject them.
    """
    spec = (spec or "").strip()
    if spec in ("", "off"):
        return ()
    if spec == "all":
        return GRAPH_PASSES
    requested = {part.strip() for part in spec.split(",") if part.strip()}
    ordered = tuple(name for name in GRAPH_PASSES if name in requested)
    unknown = tuple(sorted(requested - set(GRAPH_PASSES)))
    return ordered + unknown


@dataclass(frozen=True)
class EngineConfig:
    """Full engine configuration: cluster shape plus planner knobs."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    block_size: int = DEFAULT_BLOCK_SIZE
    #: Simulated-time timeout; the paper uses 12 hours.
    timeout_seconds: float = 12 * 3600.0
    #: Enable sparsity exploitation inside fused operators (Outer-style).
    sparsity_exploitation: bool = True
    #: Enable the CFG exploitation phase (plan splitting, Algorithm 3).
    exploitation_phase: bool = True
    #: Model communication/computation overlap (Eq. 2 uses max; False -> sum).
    overlap_comm_compute: bool = True
    #: Density below which generated blocks are stored sparse (CSR).
    sparse_threshold: float = 0.4
    #: Replace declared input densities with measured densities before
    #: planning (sharpens the optimizer's size estimates).
    refine_input_metas: bool = False
    #: RNG seed used by dataset generators unless overridden.
    seed: int = 0
    #: How stage elapsed time is modeled: ``"aggregate"`` applies Eq. 2 to
    #: the stage's totals (the seed behaviour, perfectly load-balanced);
    #: ``"scheduled"`` runs the event-driven per-slot runtime
    #: (:mod:`repro.cluster.runtime`), so skew, stragglers and retries cost
    #: real modeled seconds.
    time_model: str = "aggregate"
    #: Seeded fault injection (crashes / stragglers / node loss), only
    #: honoured by the ``"scheduled"`` time model.
    fault_plan: Optional["FaultPlan"] = None
    #: Real worker threads evaluating cuboid/block tasks concurrently.
    #: Simulated numbers (modeled seconds, traffic, flops) and matrix
    #: outputs are identical at any setting; only wall-clock changes.
    local_parallelism: int = 1
    #: How physical-plan waves execute when ``local_parallelism > 1``:
    #: ``"thread"`` (the seed behaviour) dispatches units to an in-process
    #: thread pool — kernels contend on the GIL; ``"process"`` dispatches to
    #: a persistent pool of worker *processes* fed through a shared-memory
    #: block store (:mod:`repro.cluster.procpool`), so numpy/scipy work runs
    #: truly in parallel.  Outputs stay bit-identical and modeled numbers
    #: unchanged under either backend; ineligible configurations
    #: (``time_model="scheduled"``, broken pools) demote to ``"thread"``
    #: with a RuntimeWarning rather than ever risking a wrong answer.
    execution_backend: str = "thread"
    #: Fusion-plan cache capacity (entries) per engine; 0 disables caching.
    #: Iterative workloads re-executing a structurally identical DAG skip
    #: CFG planning and the (P, Q, R) search entirely on a hit.
    plan_cache_size: int = 64
    #: Share one materialized slab per ``(matrix, row_range, col_range)``
    #: within an execute instead of re-copying it for every task.  Modeled
    #: traffic is unaffected; False forces the pre-fast-path copies (for
    #: A/B wall-clock measurements).
    slice_reuse: bool = True
    #: Build per-query span trees + cost-model accountability profiles
    #: (:mod:`repro.obs`).  Observability only: modeled numbers and matrix
    #: outputs are bit-identical at either setting; False removes even the
    #: bookkeeping wall-clock for overhead A/B runs.
    telemetry: bool = True
    #: Cost-model calibration state machine (:mod:`repro.core.calibration`).
    #: ``"off"`` (default): paper constants only — every number bit-identical
    #: to the uncalibrated engine.  ``"observe"``: executions feed the
    #: per-kernel throughput store but planning is unchanged.  ``"active"``:
    #: the ``(P, Q, R)`` search and CFG plan costing price with the fitted
    #: effective throughputs, and cached plans whose observed seconds-error
    #: crosses :attr:`calibration_replan_threshold` are evicted and
    #: re-planned with the latest coefficients.
    calibration: str = "off"
    #: Observations retained per (kernel kind, sparsity bucket) window.
    calibration_window: int = 256
    #: Minimum observations before a kernel's fit is trusted; below it the
    #: cost model falls back to the pooled kind-wide fit, then to the paper
    #: constants.
    calibration_min_samples: int = 3
    #: Mean abs relative seconds-error above which an ``"active"`` engine
    #: evicts a cached plan and re-plans it with the latest coefficients.
    calibration_replan_threshold: float = 0.5
    #: Graph-level optimizer passes run over the raw physical plan before
    #: execution (:mod:`repro.core.passes`).  ``"off"`` (default) skips the
    #: pipeline entirely — outputs *and* modeled metrics bit-identical to
    #: the seed.  ``"all"`` runs every registered pass in pipeline order;
    #: a comma-separated subset of :data:`GRAPH_PASSES` (e.g.
    #: ``"dedup_consolidations"``) runs just those passes.  Passes never
    #: change matrix outputs — only modeled cost and unit structure.
    graph_passes: str = "off"

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        if not 0.0 <= self.sparse_threshold <= 1.0:
            raise ValueError("sparse_threshold must be within [0, 1]")
        if self.time_model not in TIME_MODELS:
            raise ValueError(
                f"time_model must be one of {TIME_MODELS}, "
                f"got {self.time_model!r}"
            )
        if self.local_parallelism <= 0:
            raise ValueError("local_parallelism must be positive")
        if self.execution_backend not in EXECUTION_BACKENDS:
            raise ValueError(
                f"execution_backend must be one of {EXECUTION_BACKENDS}, "
                f"got {self.execution_backend!r}"
            )
        if self.plan_cache_size < 0:
            raise ValueError("plan_cache_size cannot be negative")
        if self.calibration not in CALIBRATION_MODES:
            raise ValueError(
                f"calibration must be one of {CALIBRATION_MODES}, "
                f"got {self.calibration!r}"
            )
        if self.calibration_window <= 0:
            raise ValueError("calibration_window must be positive")
        if self.calibration_min_samples < 2:
            raise ValueError("calibration_min_samples must be at least 2")
        if self.calibration_replan_threshold <= 0:
            raise ValueError("calibration_replan_threshold must be positive")
        for name in enabled_graph_passes(self.graph_passes):
            if name not in GRAPH_PASSES:
                raise ValueError(
                    f"graph_passes must be 'off', 'all', or a comma-separated "
                    f"subset of {GRAPH_PASSES}, got {self.graph_passes!r}"
                )

    def with_cluster(self, **kwargs) -> "EngineConfig":
        """Return a copy with cluster fields replaced (e.g. ``num_nodes=2``)."""
        return replace(self, cluster=replace(self.cluster, **kwargs))

    def with_options(self, **kwargs) -> "EngineConfig":
        """Return a copy with engine fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the multi-tenant serving layer (:mod:`repro.serving`).

    Admission control gates query start on two resources: *concurrency*
    (at most ``max_concurrency`` queries execute per dispatch wave) and
    *memory* (the summed footprint estimates of a wave never exceed
    ``memory_budget_bytes``, which defaults to the cluster's aggregate task
    memory ``N * Tc * theta_t``).  Queries that cannot start immediately
    wait in a bounded per-tenant priority queue drained by deficit
    round-robin; a full queue or a single query that could never fit the
    budget is shed with :class:`~repro.errors.ServiceOverloadedError`, and
    a queued query that waits longer than ``queue_timeout_seconds`` fails
    with :class:`~repro.errors.QueryTimeoutError` instead of waiting
    forever.
    """

    #: Maximum queries executed per dispatch wave (thread-pool width).
    max_concurrency: int = 4
    #: Total queued queries across all tenants before submits are shed.
    max_queue_depth: int = 64
    #: Wall-clock seconds a query may wait queued; ``None`` disables.
    queue_timeout_seconds: Optional[float] = 30.0
    #: Admission memory budget; ``None`` means the cluster's
    #: :attr:`~ClusterConfig.total_memory_budget`.
    memory_budget_bytes: Optional[int] = None
    #: Deficit round-robin quantum: bytes of footprint each tenant may
    #: admit per scheduling round.  Smaller quanta interleave tenants more
    #: finely; the default serves one mid-sized query per tenant per round.
    drr_quantum_bytes: int = 32 * 1024 * 1024
    #: Result-cache capacity (entries); 0 disables result caching.
    result_cache_entries: int = 128
    #: Result-cache capacity in materialized output bytes.
    result_cache_bytes: int = 256 * 1024 * 1024
    #: Emit one summary log line every N completed queries; 0 disables.
    log_every: int = 0
    #: Dispatcher poll interval (seconds) while waiting for work/timeouts.
    dispatch_poll_seconds: float = 0.02
    #: Engine replicas behind the service.  Each replica owns its own
    #: cluster, plan/slice caches and dispatcher thread; tenants shard
    #: across replicas by consistent hash.  Per-replica admission budgets
    #: *split* the service memory budget (they sum to it, never multiply).
    num_replicas: int = 1
    #: Virtual nodes per replica on the consistent-hash ring; more vnodes
    #: spread tenants more evenly at slightly larger rings.
    ring_vnodes: int = 64
    #: In-flight query cap of the asyncio front end
    #: (:class:`repro.serving.async_service.AsyncMatrixService`); submits
    #: beyond it are shed *before* touching the admission queues.  ``None``
    #: defaults to ``2 * max_queue_depth``.
    async_max_inflight: Optional[int] = None
    #: Cross-query common-subexpression elimination: concurrent queries
    #: with the same planning signature, DAG fingerprint, and bound-input
    #: versions share one execution through a service-wide in-flight index
    #: (:class:`repro.serving.cse.SubplanIndex`).  Waiters adopt the
    #: owner's (deterministic, hence bit-identical) result.  Off by
    #: default: with the default, every query executes independently, so
    #: per-query metric deltas still sum to the shared cluster's totals
    #: (the seed serving invariant).
    cross_query_cse: bool = False
    #: Per-tenant resource accounting
    #: (:class:`repro.obs.accounting.ResourceAccountant`): served queries
    #: deposit modeled usage and wall time into per-tenant ledgers surfaced
    #: via ``service.accounting()`` and ``repro_tenant_*`` metric families.
    #: Strictly observational.
    accounting: bool = True
    #: Fraction of an execution's modeled cost a cross-query-CSE adopter
    #: is charged (and the owning tenant credited) in the ledgers.
    cse_adopter_cost_share: float = 0.5
    #: Latency SLOs: a sequence of :class:`repro.obs.slo.SLOSpec`, one per
    #: tenant to track.  Non-empty enables burn-rate tracking surfaced in
    #: ``status()["slo"]``, ``repro_slo_*`` families and ``slo.burn_alert``
    #: bus events.  Stored as a tuple (kept loosely typed here — the spec
    #: class lives in :mod:`repro.obs`, which this module must not import).
    slos: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "slos", tuple(self.slos))
        if self.max_concurrency <= 0:
            raise ValueError("max_concurrency must be positive")
        if self.max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive")
        if self.queue_timeout_seconds is not None and self.queue_timeout_seconds <= 0:
            raise ValueError("queue_timeout_seconds must be positive or None")
        if self.memory_budget_bytes is not None and self.memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive or None")
        if self.drr_quantum_bytes <= 0:
            raise ValueError("drr_quantum_bytes must be positive")
        if self.result_cache_entries < 0:
            raise ValueError("result_cache_entries cannot be negative")
        if self.result_cache_bytes < 0:
            raise ValueError("result_cache_bytes cannot be negative")
        if self.log_every < 0:
            raise ValueError("log_every cannot be negative")
        if self.dispatch_poll_seconds <= 0:
            raise ValueError("dispatch_poll_seconds must be positive")
        if self.num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if self.ring_vnodes <= 0:
            raise ValueError("ring_vnodes must be positive")
        if self.async_max_inflight is not None and self.async_max_inflight <= 0:
            raise ValueError("async_max_inflight must be positive or None")
        if not 0.0 <= self.cse_adopter_cost_share <= 1.0:
            raise ValueError(
                "cse_adopter_cost_share must be within [0, 1]"
            )
        seen = set()
        for spec in self.slos:
            tenant = getattr(spec, "tenant", None)
            if tenant is None:
                raise ValueError(
                    f"slos entries must be SLOSpec-like (got {spec!r})"
                )
            if tenant in seen:
                raise ValueError(f"duplicate SLO for tenant {tenant!r}")
            seen.add(tenant)


def paper_cluster(num_nodes: int = 8) -> EngineConfig:
    """Config mirroring the paper's testbed, scaled to simulation size.

    The paper uses 8 worker nodes, 12 tasks per node, a 10 GB budget per
    task, 1 Gbps Ethernet and 546 GFLOPS per node, with 1000x1000 blocks.
    We keep the ratios and bandwidths but default to 100x100 blocks and a
    proportionally smaller task budget so experiments run on one machine.
    """
    cluster = ClusterConfig(
        num_nodes=num_nodes,
        tasks_per_node=12,
        task_memory_budget=512 * 1024 * 1024,
        network_bandwidth=1.0 * GBPS,
        compute_bandwidth=546.0 * GFLOPS,
    )
    return EngineConfig(cluster=cluster)
