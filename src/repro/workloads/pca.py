"""The PCA covariance pattern ``(X x S)^T x X`` (Figure 2(b), Row fusion).

``S`` is a narrow projection matrix; the pattern reads the rows of ``X``
twice but a fused operator scans them once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DEFAULT_BLOCK_SIZE
from repro.lang.builder import Expr, matrix_input


@dataclass(frozen=True)
class PCAQuery:
    expr: Expr
    x: Expr
    s: Expr


def pca_covariance_query(
    rows: int,
    cols: int,
    projected: int = 1,
    block_size: int = DEFAULT_BLOCK_SIZE,
    density: float = 1.0,
) -> PCAQuery:
    """Build ``(X x S)^T x X`` with ``S`` of ``cols x projected``."""
    x = matrix_input("X", rows, cols, block_size, density=density)
    s = matrix_input("S", cols, projected, block_size)
    expr = (x @ s).T @ x
    return PCAQuery(expr=expr, x=x, s=s)
