"""Top-k recommendation from GNMF factor matrices.

The paper motivates GNMF with recommendation (Section 6.4): after
factorizing ``X ~ V x U``, the predicted rating of item ``j`` for user ``i``
is ``(V x U)[i, j]`` and the system recommends the highest-rated unseen
items.  The prediction itself is a matrix query executed on an engine; the
top-k selection happens on the collected rows.
"""

from __future__ import annotations

import numpy as np

from repro.execution import Engine
from repro.lang.builder import matrix_input
from repro.matrix.distributed import BlockedMatrix


def top_k_items(
    engine: Engine,
    x: BlockedMatrix,
    u: BlockedMatrix,
    v: BlockedMatrix,
    user: int,
    k: int = 10,
) -> list[tuple[int, float]]:
    """Recommend the top-*k* unseen items for *user*.

    Computes the predicted rating matrix ``V x U`` on *engine*, masks items
    the user already rated in ``x``, and returns ``(item, score)`` pairs in
    descending score order.
    """
    if not 0 <= user < x.shape[0]:
        raise IndexError(f"user {user} outside [0, {x.shape[0]})")
    if k <= 0:
        raise ValueError("k must be positive")
    ue = matrix_input("U", *u.shape, u.block_size, density=1.0)
    ve = matrix_input("V", *v.shape, v.block_size, density=1.0)
    result = engine.execute(ve @ ue, {"U": u, "V": v})
    predicted = result.output().to_numpy()[user]
    seen = x.to_numpy()[user] != 0
    predicted = np.where(seen, -np.inf, predicted)
    order = np.argsort(-predicted)[:k]
    return [(int(j), float(predicted[j])) for j in order if np.isfinite(predicted[j])]
