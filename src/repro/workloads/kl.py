"""The generalized KL-divergence loss (Section 2.1's other Outer pattern).

Alongside the weighted squared loss, the paper cites the generalized
KL-divergence ``D(X || W x H)`` as a matrix computation whose element-wise
multiplication with a sparse ``X`` makes Outer fusion profitable.  The loss
splits into a masked part (non-zero cells of ``X`` only — exactly what the
CFO's sparsity exploitation computes) and a mass-difference part::

    D(X || WH) = sum(X * log(X / (W x H))) - sum(X) + sum(W x H)

The first term is built so the sparse ``X`` masks the product; the
correction terms are cheap aggregations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DEFAULT_BLOCK_SIZE
from repro.lang.builder import Expr, log, matrix_input, sum_of


@dataclass(frozen=True)
class KLDivergenceQuery:
    """The three loss components plus the declared inputs.

    ``masked_term`` is ``sum(X * log(X / (W x H)))`` — Outer-fusable;
    ``x_mass`` is ``sum(X)``; ``wh_mass`` is ``sum(W x H)``.  The full loss
    is ``masked_term - x_mass + wh_mass`` (combine the three scalars).
    """

    masked_term: Expr
    x_mass: Expr
    wh_mass: Expr
    x: Expr
    w: Expr
    h: Expr


def kl_divergence_query(
    rows: int,
    cols: int,
    factors: int,
    density: float,
    block_size: int = DEFAULT_BLOCK_SIZE,
    eps: float = 1e-12,
) -> KLDivergenceQuery:
    """Build the generalized KL-divergence of ``X`` against ``W x H``.

    ``W`` is ``rows x factors``, ``H`` is ``factors x cols``; ``eps`` guards
    the logarithm at the (never materialized) zero cells.
    """
    x = matrix_input("X", rows, cols, block_size, density=density)
    w = matrix_input("W", rows, factors, block_size)
    h = matrix_input("H", factors, cols, block_size)
    masked = sum_of(x * log((x + eps) / (w @ h + eps)))
    return KLDivergenceQuery(
        masked_term=masked,
        x_mass=sum_of(x),
        wh_mass=sum_of(w @ h),
        x=x,
        w=w,
        h=h,
    )


def kl_divergence_value(result_masked, result_x, result_wh) -> float:
    """Combine the three executed components into the scalar loss."""
    masked = float(result_masked.to_numpy()[0, 0])
    x_mass = float(result_x.to_numpy()[0, 0])
    wh_mass = float(result_wh.to_numpy()[0, 0])
    return masked - x_mass + wh_mass
