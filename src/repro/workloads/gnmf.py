"""Gaussian Non-negative Matrix Factorization (Section 6.4, Eq. 6).

GNMF factorizes a rating matrix ``X (users x items)`` into ``V (users x k)``
and ``U (k x items)`` with multiplicative updates::

    U <- U * (V^T x X) / (V^T x V x U)
    V <- V * (X x U^T) / (V x U x U^T)

Each iteration contains four matrix multiplications — the query the paper
uses to compare whole-engine fusion plans (Figure 14).  :class:`GNMF` drives
any engine through a fixed number of iterations, re-executing the update DAG
with the current factors bound, and records per-iteration metrics exactly
the way Figures 14(a-c, e-g) accumulate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config import DEFAULT_BLOCK_SIZE
from repro.execution import Engine
from repro.lang.builder import Expr, matrix_input
from repro.matrix.distributed import BlockedMatrix
from repro.matrix.generators import rand_dense


@dataclass(frozen=True)
class GNMFQuery:
    """One iteration's update expressions and declared inputs."""

    u_update: Expr
    v_update: Expr
    x: Expr
    u: Expr
    v: Expr


def gnmf_updates(
    users: int,
    items: int,
    factors: int,
    density: float,
    block_size: int = DEFAULT_BLOCK_SIZE,
    eps: float = 1e-9,
) -> GNMFQuery:
    """Eq. 6 as a two-root DAG; ``eps`` guards the divisions."""
    x = matrix_input("X", users, items, block_size, density=density)
    u = matrix_input("U", factors, items, block_size)
    v = matrix_input("V", users, factors, block_size)
    u_update = u * (v.T @ x) / (v.T @ v @ u + eps)
    v_update = v * (x @ u.T) / (v @ u @ u.T + eps)
    return GNMFQuery(u_update=u_update, v_update=v_update, x=x, u=u, v=v)


@dataclass
class GNMFIteration:
    """Metrics of one GNMF iteration on one engine."""

    iteration: int
    elapsed_seconds: float
    comm_bytes: int
    loss: Optional[float] = None


@dataclass
class GNMFRun:
    """Outcome of a full GNMF factorization run."""

    u: BlockedMatrix
    v: BlockedMatrix
    iterations: List[GNMFIteration] = field(default_factory=list)

    @property
    def accumulated_seconds(self) -> List[float]:
        """The running total the paper's Figure 14 plots."""
        totals, acc = [], 0.0
        for it in self.iterations:
            acc += it.elapsed_seconds
            totals.append(acc)
        return totals

    @property
    def total_comm_bytes(self) -> int:
        return sum(it.comm_bytes for it in self.iterations)


class GNMF:
    """Drives an engine through GNMF iterations (the Figure 14 harness)."""

    def __init__(
        self,
        users: int,
        items: int,
        factors: int,
        density: float,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        self.users = users
        self.items = items
        self.factors = factors
        self.block_size = block_size
        self.query = gnmf_updates(users, items, factors, density, block_size)

    def initial_factors(self, seed: int = 0) -> tuple[BlockedMatrix, BlockedMatrix]:
        """Random positive starting factors (reproducible)."""
        u = rand_dense(
            self.factors, self.items, self.block_size, seed=seed + 1,
            low=0.1, high=1.0,
        )
        v = rand_dense(
            self.users, self.factors, self.block_size, seed=seed + 2,
            low=0.1, high=1.0,
        )
        return u, v

    def run(
        self,
        engine: Engine,
        x: BlockedMatrix,
        iterations: int = 10,
        seed: int = 0,
        track_loss: bool = False,
        sequential: bool = False,
    ) -> GNMFRun:
        """Run *iterations* multiplicative updates of both factors.

        ``sequential=False`` updates both factors from the same old values
        (the paper's Eq. 6, one two-root DAG per iteration).
        ``sequential=True`` updates ``U`` first and feeds the new ``U`` into
        the ``V`` update — the classic Lee-Seung schedule whose loss is
        monotone non-increasing.
        """
        u, v = self.initial_factors(seed)
        run = GNMFRun(u=u, v=v)
        x_dense = x.to_numpy() if track_loss else None
        for i in range(iterations):
            if sequential:
                first = engine.execute(
                    self.query.u_update, {"X": x, "U": u, "V": v}
                )
                u = first.output()
                second = engine.execute(
                    self.query.v_update, {"X": x, "U": u, "V": v}
                )
                v = second.output()
                elapsed = (
                    first.metrics.elapsed_seconds
                    + second.metrics.elapsed_seconds
                )
                comm = first.metrics.comm_bytes + second.metrics.comm_bytes
            else:
                result = engine.execute(
                    [self.query.u_update, self.query.v_update],
                    {"X": x, "U": u, "V": v},
                )
                roots = list(result.dag.roots)
                u = result.outputs[roots[0]]
                v = result.outputs[roots[1]]
                elapsed = result.metrics.elapsed_seconds
                comm = result.metrics.comm_bytes
            loss = None
            if track_loss:
                approx = v.to_numpy() @ u.to_numpy()
                loss = float(np.linalg.norm(x_dense - approx) ** 2)
            run.iterations.append(
                GNMFIteration(
                    iteration=i,
                    elapsed_seconds=elapsed,
                    comm_bytes=comm,
                    loss=loss,
                )
            )
        run.u, run.v = u, v
        return run
