"""The Section 6.2 micro-benchmark query: ``O = X * log(U x V^T + eps)``.

One large multiplication wrapped in element-wise operators with a sparse
mask — the query the paper uses to compare BFO, RFO and CFO head-to-head
(Figures 3, 8, 12).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DEFAULT_BLOCK_SIZE
from repro.lang.builder import Expr, log, matrix_input


@dataclass(frozen=True)
class NMFQuery:
    """The query expression plus its declared inputs."""

    expr: Expr
    x: Expr
    u: Expr
    v: Expr


def nmf_query(
    rows: int,
    cols: int,
    factors: int,
    density: float,
    block_size: int = DEFAULT_BLOCK_SIZE,
    eps: float = 1e-8,
) -> NMFQuery:
    """Build ``X * log(U x V^T + eps)`` for an ``rows x cols`` rating matrix.

    ``X`` is ``rows x cols`` with the given density, ``U`` is
    ``rows x factors`` dense and ``V`` is ``cols x factors`` dense — the
    shapes of Section 2.2's running example.
    """
    x = matrix_input("X", rows, cols, block_size, density=density)
    u = matrix_input("U", rows, factors, block_size)
    v = matrix_input("V", cols, factors, block_size)
    expr = x * log(u @ v.T + eps)
    return NMFQuery(expr=expr, x=x, u=u, v=v)
