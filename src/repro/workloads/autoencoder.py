"""The two-hidden-layer AutoEncoder of Section 6.5.

Follows SystemDS' ``autoencoder_2layer`` architecture: the encoder has two
fully connected layers (weights ``W1: h1 x features``, ``W2: h2 x h1``), the
decoder mirrors them (``W3: h1 x h2``, ``W4: features x h1``), all with
sigmoid activations.  One training step — forward pass, mean-squared-error
backward pass and weight updates — is expressed as a single four-root matrix
DAG, so any engine in the repository can execute it; the epoch driver feeds
batches exactly like the paper's batch-wise evaluation (Figure 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping

import numpy as np

from repro.config import DEFAULT_BLOCK_SIZE
from repro.errors import DataError
from repro.execution import Engine
from repro.lang.builder import Expr, matrix_input, sigmoid
from repro.matrix.distributed import BlockedMatrix
from repro.matrix.generators import rand_dense


@dataclass(frozen=True)
class AutoEncoderShapes:
    """Model dimensions (paper defaults: h1=500, h2=2)."""

    features: int
    hidden1: int = 500
    hidden2: int = 2

    def weight_shapes(self) -> dict[str, tuple[int, int]]:
        return {
            "W1": (self.hidden1, self.features),
            "W2": (self.hidden2, self.hidden1),
            "W3": (self.hidden1, self.hidden2),
            "W4": (self.features, self.hidden1),
        }


@dataclass
class EpochStep:
    step: int
    elapsed_seconds: float
    comm_bytes: int


@dataclass
class EpochRun:
    """One epoch's metrics plus the updated weights."""

    weights: dict[str, BlockedMatrix]
    steps: List[EpochStep] = field(default_factory=list)

    @property
    def elapsed_seconds(self) -> float:
        return sum(s.elapsed_seconds for s in self.steps)

    @property
    def comm_bytes(self) -> int:
        return sum(s.comm_bytes for s in self.steps)


class AutoEncoder:
    """Builds and drives the AutoEncoder training step."""

    def __init__(
        self,
        shapes: AutoEncoderShapes,
        batch_size: int,
        learning_rate: float = 0.01,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        if batch_size <= 0:
            raise DataError("batch_size must be positive")
        self.shapes = shapes
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.block_size = block_size
        self.step_exprs = self._build_step()

    # -- model construction ---------------------------------------------------

    def _build_step(self) -> list[Expr]:
        """One SGD step: returns the four updated-weight expressions."""
        s = self.shapes
        bs = self.block_size
        lr = self.learning_rate

        batch = matrix_input("B", self.batch_size, s.features, bs)
        w1 = matrix_input("W1", s.hidden1, s.features, bs)
        w2 = matrix_input("W2", s.hidden2, s.hidden1, bs)
        w3 = matrix_input("W3", s.hidden1, s.hidden2, bs)
        w4 = matrix_input("W4", s.features, s.hidden1, bs)

        # forward
        a1 = sigmoid(batch @ w1.T)          # batch x h1
        a2 = sigmoid(a1 @ w2.T)             # batch x h2
        a3 = sigmoid(a2 @ w3.T)             # batch x h1
        out = sigmoid(a3 @ w4.T)            # batch x features

        # backward (MSE): d = dL/dZ at each layer
        d4 = (out - batch) * out * (1.0 - out)
        d3 = (d4 @ w4) * a3 * (1.0 - a3)
        d2 = (d3 @ w3) * a2 * (1.0 - a2)
        d1 = (d2 @ w2) * a1 * (1.0 - a1)

        g4 = d4.T @ a3                      # features x h1
        g3 = d3.T @ a2                      # h1 x h2
        g2 = d2.T @ a1                      # h2 x h1
        g1 = d1.T @ batch                   # h1 x features

        scale = lr / self.batch_size
        return [
            w1 - scale * g1,
            w2 - scale * g2,
            w3 - scale * g3,
            w4 - scale * g4,
        ]

    def initial_weights(self, seed: int = 0) -> dict[str, BlockedMatrix]:
        """Small random weights, reproducible per seed."""
        weights = {}
        for i, (name, (rows, cols)) in enumerate(self.shapes.weight_shapes().items()):
            weights[name] = rand_dense(
                rows, cols, self.block_size, seed=seed + i,
                low=-0.05, high=0.05,
            )
        return weights

    # -- training ----------------------------------------------------------------

    def run_epoch(
        self,
        engine: Engine,
        data: BlockedMatrix,
        weights: Mapping[str, BlockedMatrix] | None = None,
        seed: int = 0,
        max_steps: int | None = None,
    ) -> EpochRun:
        """One pass over *data* in row batches of ``batch_size``.

        ``data`` rows must be a multiple of the batch size, and the batch
        size a multiple of the block size (batches slice on block
        boundaries, as they would on a real blocked store).
        """
        if self.batch_size % self.block_size:
            raise DataError("batch_size must be a multiple of block_size")
        if data.shape[0] % self.batch_size:
            raise DataError("data rows must be a multiple of batch_size")
        current = dict(weights) if weights is not None else self.initial_weights(seed)
        blocks_per_batch = self.batch_size // self.block_size
        num_batches = data.shape[0] // self.batch_size
        if max_steps is not None:
            num_batches = min(num_batches, max_steps)
        run = EpochRun(weights=current)
        grid_cols = data.block_grid[1]
        for step in range(num_batches):
            row0 = step * blocks_per_batch
            batch = data.block_slice((row0, row0 + blocks_per_batch), (0, grid_cols))
            result = engine.execute(
                self.step_exprs, {"B": batch, **current}
            )
            roots = list(result.dag.roots)
            for name, root in zip(("W1", "W2", "W3", "W4"), roots):
                current[name] = result.outputs[root]
            run.steps.append(
                EpochStep(
                    step=step,
                    elapsed_seconds=result.metrics.elapsed_seconds,
                    comm_bytes=result.metrics.comm_bytes,
                )
            )
        run.weights = current
        return run

    # -- evaluation -----------------------------------------------------------------

    def reconstruction_error(
        self, data: BlockedMatrix, weights: Mapping[str, BlockedMatrix]
    ) -> float:
        """Mean squared reconstruction error, computed densely (for tests)."""
        x = data.to_numpy()
        w1 = weights["W1"].to_numpy()
        w2 = weights["W2"].to_numpy()
        w3 = weights["W3"].to_numpy()
        w4 = weights["W4"].to_numpy()

        def sig(z: np.ndarray) -> np.ndarray:
            return 1.0 / (1.0 + np.exp(-z))

        a1 = sig(x @ w1.T)
        a2 = sig(a1 @ w2.T)
        a3 = sig(a2 @ w3.T)
        out = sig(a3 @ w4.T)
        return float(np.mean((out - x) ** 2))
