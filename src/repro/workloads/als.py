"""The ALS weighted-squared-loss query (Figure 1(a)).

``sum((X != 0) * (X - U x V)^2)`` — the paper's motivating example for
sparsity exploitation: the product ``U x V`` only ever needs computing at the
non-zero cells of ``X``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DEFAULT_BLOCK_SIZE
from repro.lang.builder import Expr, matrix_input, nnz_mask, sq, sum_of


@dataclass(frozen=True)
class ALSLossQuery:
    expr: Expr
    x: Expr
    u: Expr
    v: Expr


def als_loss_query(
    rows: int,
    cols: int,
    factors: int,
    density: float,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> ALSLossQuery:
    """Build the weighted squared loss over an ``rows x cols`` rating matrix.

    ``U`` is ``rows x factors`` and ``V`` is ``factors x cols``, following
    Figure 1(a)'s orientation (``U x V`` approximates ``X`` directly).
    """
    x = matrix_input("X", rows, cols, block_size, density=density)
    u = matrix_input("U", rows, factors, block_size)
    v = matrix_input("V", factors, cols, block_size)
    expr = sum_of(nnz_mask(x) * sq(x - u @ v))
    return ALSLossQuery(expr=expr, x=x, u=u, v=v)
