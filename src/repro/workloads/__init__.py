"""The paper's evaluation workloads, expressed against the public API.

* :mod:`repro.workloads.nmf` — the Section 6.2 micro-query
  ``X * log(U x V^T + eps)`` (one multiplication, one sparse mask).
* :mod:`repro.workloads.gnmf` — Gaussian NMF (Eq. 6): the Section 6.4
  macro-benchmark with four multiplications per iteration.
* :mod:`repro.workloads.als` — the weighted-squared-loss of ALS
  (Figure 1(a)): ``sum((X != 0) * (X - U x V)^2)``.
* :mod:`repro.workloads.kl` — the generalized KL-divergence loss, the
  paper's other Outer-fusion motivating pattern.
* :mod:`repro.workloads.pca` — the PCA covariance pattern ``(X x S)^T x X``
  used to illustrate Row fusion (Figure 2(b)).
* :mod:`repro.workloads.autoencoder` — the two-hidden-layer AutoEncoder of
  Section 6.5, forward and backward passes as matrix expressions.
* :mod:`repro.workloads.recommender` — top-k recommendation on factor
  matrices (the application the paper's GNMF section motivates).
"""

from repro.workloads.nmf import nmf_query
from repro.workloads.gnmf import GNMF, gnmf_updates
from repro.workloads.als import als_loss_query
from repro.workloads.kl import kl_divergence_query, kl_divergence_value
from repro.workloads.pca import pca_covariance_query
from repro.workloads.autoencoder import AutoEncoder, AutoEncoderShapes
from repro.workloads.recommender import top_k_items

__all__ = [
    "nmf_query",
    "GNMF",
    "gnmf_updates",
    "als_loss_query",
    "kl_divergence_query",
    "kl_divergence_value",
    "pca_covariance_query",
    "AutoEncoder",
    "AutoEncoderShapes",
    "top_k_items",
]
