"""Shared helpers: validation, formatting and logging."""

from repro.utils.formatting import format_bytes, format_seconds, render_table
from repro.utils.validation import (
    check_multipliable,
    check_positive,
    check_same_shape,
)

__all__ = [
    "format_bytes",
    "format_seconds",
    "render_table",
    "check_multipliable",
    "check_positive",
    "check_same_shape",
]
