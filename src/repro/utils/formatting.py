"""Human-readable formatting for benchmark output.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output consistent (GB with one decimal, seconds or minutes,
aligned ASCII tables).
"""

from __future__ import annotations

from typing import Iterable, Sequence

_BYTE_UNITS = ("B", "KB", "MB", "GB", "TB", "PB")


def format_bytes(num_bytes: float) -> str:
    """Format a byte count the way the paper's figures label data volumes."""
    if num_bytes < 0:
        raise ValueError("byte count cannot be negative")
    value = float(num_bytes)
    for unit in _BYTE_UNITS:
        if value < 1024.0 or unit == _BYTE_UNITS[-1]:
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Format a duration: ms below one second, minutes above two minutes."""
    if seconds < 0:
        raise ValueError("duration cannot be negative")
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.1f} s"
    if seconds < 2 * 3600.0:
        return f"{seconds / 60.0:.1f} min"
    return f"{seconds / 3600.0:.2f} h"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table (used by every benchmark harness)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
