"""Validation helpers shared across the library."""

from __future__ import annotations

from typing import Sequence

from repro.errors import MatrixShapeError


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless *value* is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_same_shape(a: Sequence[int], b: Sequence[int], what: str = "operands") -> None:
    """Raise :class:`MatrixShapeError` unless shapes *a* and *b* match."""
    if tuple(a) != tuple(b):
        raise MatrixShapeError(f"{what} must have the same shape: {tuple(a)} vs {tuple(b)}")


def check_multipliable(a: Sequence[int], b: Sequence[int]) -> None:
    """Raise :class:`MatrixShapeError` unless ``a @ b`` is well formed."""
    if a[1] != b[0]:
        raise MatrixShapeError(
            f"cannot multiply {tuple(a)} by {tuple(b)}: inner dimensions differ"
        )
