"""Dataset builders for the paper's evaluation.

* :mod:`repro.datasets.synthetic` — the three synthetic regimes of Table 3:
  matrices varying two large dimensions, a common large dimension, and
  density.
* :mod:`repro.datasets.real` — synthetic stand-ins with the statistics of
  Table 2's real datasets (MovieLens, Netflix, YahooMusic), scaled by a
  configurable factor (we do not ship the proprietary rating data; GNMF's
  cost behaviour depends only on shape and density, which are preserved).
"""

from repro.datasets.synthetic import (
    SyntheticCase,
    common_dimension_cases,
    density_cases,
    density_skewed_matrix,
    nmf_inputs,
    two_large_dimension_cases,
)
from repro.datasets.real import REAL_DATASETS, RealDatasetSpec, load_real_dataset

__all__ = [
    "SyntheticCase",
    "two_large_dimension_cases",
    "common_dimension_cases",
    "density_cases",
    "density_skewed_matrix",
    "nmf_inputs",
    "RealDatasetSpec",
    "REAL_DATASETS",
    "load_real_dataset",
]
