"""Synthetic dataset regimes of Section 6.2 / Table 3.

The paper evaluates the ``X * log(U x V^T + eps)`` query on three families of
uniformly random matrices:

* **two large dimensions** — ``n x 2K x n`` with very sparse ``X``
  (density 0.001), ``n`` in {100K, 250K, 500K, 750K};
* **a common large dimension** — ``100K x n x 100K`` with denser ``X``
  (0.2), ``n`` in {2K, 5K, 10K, 50K};
* **density** — ``100K x 2K x 100K`` with density in {0.05, 0.1, 0.5, 1.0}.

A :class:`SyntheticCase` keeps the paper's dimensions and a scaled-down
version of them (``scale`` divides each dimension) so the benchmark tables
can print both.  Dimensions here follow the paper's ``I x K x J`` ordering:
``X`` is ``I x J``, ``U`` is ``I x K``, ``V`` is ``J x K``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DEFAULT_BLOCK_SIZE
from repro.errors import DataError
from repro.matrix.distributed import BlockedMatrix
from repro.matrix.generators import rand_dense, rand_sparse


@dataclass(frozen=True)
class SyntheticCase:
    """One row of Table 3 (scaled)."""

    label: str
    paper_rows: int
    paper_common: int
    paper_cols: int
    density: float
    scale: int

    @property
    def rows(self) -> int:
        return max(self.paper_rows // self.scale, 1)

    @property
    def common(self) -> int:
        return max(self.paper_common // self.scale, 1)

    @property
    def cols(self) -> int:
        return max(self.paper_cols // self.scale, 1)

def two_large_dimension_cases(scale: int = 2500) -> list[SyntheticCase]:
    """``n x 2K x n`` at density 0.001 for n in {100K, 250K, 500K, 750K}."""
    return [
        SyntheticCase(f"n={n // 1000}K", n, 2_000, n, 0.001, scale)
        for n in (100_000, 250_000, 500_000, 750_000)
    ]


def common_dimension_cases(scale: int = 2500) -> list[SyntheticCase]:
    """``100K x n x 100K`` at density 0.2 for n in {2K, 5K, 10K, 50K}."""
    return [
        SyntheticCase(f"n={n // 1000}K", 100_000, n, 100_000, 0.2, scale)
        for n in (2_000, 5_000, 10_000, 50_000)
    ]


def density_cases(scale: int = 2500) -> list[SyntheticCase]:
    """``100K x 2K x 100K`` at densities {0.05, 0.1, 0.5, 1.0}."""
    return [
        SyntheticCase(f"d={d}", 100_000, 2_000, 100_000, d, scale)
        for d in (0.05, 0.1, 0.5, 1.0)
    ]


def nmf_inputs(
    case: SyntheticCase,
    block_size: int = DEFAULT_BLOCK_SIZE,
    seed: int = 0,
) -> dict[str, BlockedMatrix]:
    """Materialize ``X``, ``U``, ``V`` for one synthetic case."""
    rows = _blocks_up(case.rows, block_size)
    cols = _blocks_up(case.cols, block_size)
    common = _blocks_up(case.common, block_size)
    return {
        "X": rand_sparse(rows, cols, case.density, block_size, seed=seed),
        "U": rand_dense(rows, common, block_size, seed=seed + 1),
        "V": rand_dense(cols, common, block_size, seed=seed + 2),
    }


def _blocks_up(value: int, block_size: int) -> int:
    """Round a scaled dimension up to a whole number of blocks."""
    if value <= 0:
        raise DataError(f"dimension must be positive, got {value}")
    return max(block_size, (value + block_size - 1) // block_size * block_size)


def density_skewed_matrix(
    rows: int,
    cols: int,
    dense_fraction: float,
    dense_density: float,
    sparse_density: float,
    block_size: int = DEFAULT_BLOCK_SIZE,
    seed: int = 0,
) -> BlockedMatrix:
    """A matrix whose first rows are much denser than the rest.

    Used by the load-balancing failure-injection tests: the paper's future
    work notes that skewed cuboid sparsity hurts balance — this generator
    creates exactly that skew.
    """
    if not 0.0 < dense_fraction < 1.0:
        raise DataError("dense_fraction must be in (0, 1)")
    split = max(1, int(rows * dense_fraction))
    top = rand_sparse(split, cols, dense_density, block_size, seed=seed)
    bottom = rand_sparse(rows - split, cols, sparse_density, block_size, seed=seed + 1)
    merged = np.zeros((rows, cols))
    merged[:split] = top.to_numpy()
    merged[split:] = bottom.to_numpy()
    from repro.matrix.generators import from_numpy

    return from_numpy(merged, block_size)
