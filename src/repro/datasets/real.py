"""Real-dataset stand-ins with Table 2's statistics.

The paper evaluates GNMF on MovieLens, Netflix and YahooMusic.  We cannot
ship those rating matrices, so :func:`load_real_dataset` synthesizes a sparse
matrix with each dataset's user/item counts and non-zero count (Table 2),
scaled down by a configurable factor.  GNMF's distributed cost profile —
partition counts, replication factors, operator fusion opportunities —
depends only on the shape and density preserved here, not on the rating
values (the paper itself uses uniform synthetic data for its operator-level
experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.config import DEFAULT_BLOCK_SIZE
from repro.errors import DataError
from repro.matrix.distributed import BlockedMatrix
from repro.matrix.generators import rand_sparse


@dataclass(frozen=True)
class RealDatasetSpec:
    """Statistics of one real dataset (Table 2)."""

    name: str
    users: int
    items: int
    nonzeros: int

    @property
    def density(self) -> float:
        return self.nonzeros / (self.users * self.items)

    def scaled(self, scale: int, block_size: int = DEFAULT_BLOCK_SIZE) -> tuple[int, int]:
        """Scaled (users, items), rounded up to whole blocks."""
        if scale <= 0:
            raise DataError("scale must be positive")

        def snap(value: int) -> int:
            value = max(value // scale, 1)
            return max(block_size, (value + block_size - 1) // block_size * block_size)

        return snap(self.users), snap(self.items)


#: Table 2 of the paper.
REAL_DATASETS: Mapping[str, RealDatasetSpec] = {
    spec.name: spec
    for spec in (
        RealDatasetSpec("MovieLens", 283_228, 58_098, 27_753_444),
        RealDatasetSpec("Netflix", 480_189, 17_770, 100_480_507),
        RealDatasetSpec("YahooMusic", 1_823_179, 136_736, 717_872_016),
    )
}


def load_real_dataset(
    name: str,
    scale: int = 500,
    block_size: int = DEFAULT_BLOCK_SIZE,
    seed: int = 0,
) -> BlockedMatrix:
    """Synthesize a rating matrix shaped like dataset *name*, scaled down.

    Ratings are uniform in ``[1, 5)`` at the dataset's density; positions are
    uniform, as in the paper's synthetic generator.
    """
    spec = REAL_DATASETS.get(name)
    if spec is None:
        raise DataError(
            f"unknown dataset {name!r}; choose from {sorted(REAL_DATASETS)}"
        )
    users, items = spec.scaled(scale, block_size)
    return rand_sparse(
        users, items, spec.density, block_size, seed=seed, low=1.0, high=5.0
    )
