"""Exception hierarchy for the FuseME reproduction.

Every error raised by the engine derives from :class:`ReproError`, so callers
can catch a single base class.  The distributed substrate raises
:class:`TaskOutOfMemoryError` when a task's memory ledger exceeds the
configured budget, mirroring the O.O.M. failures the paper reports for BFO and
MatFast, and :class:`SimulatedTimeoutError` mirroring the paper's 12-hour
``T.O.`` entries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class MatrixShapeError(ReproError, ValueError):
    """Two matrices have incompatible shapes for the requested operator."""


class BlockLayoutError(ReproError, ValueError):
    """Two blocked matrices have incompatible block grids or block sizes."""


class SparsityError(ReproError, ValueError):
    """An operation required a sparse (or dense) block and got the other."""


class PlanError(ReproError, RuntimeError):
    """A fusion plan is malformed (cycle, dangling edge, missing input)."""


class OptimizerError(ReproError, RuntimeError):
    """The (P, Q, R) optimizer could not find feasible parameters."""


class ExecutionError(ReproError, RuntimeError):
    """A distributed operator failed while executing on the cluster."""


class TaskOutOfMemoryError(ExecutionError):
    """A simulated task exceeded the per-task memory budget ``theta_t``.

    Attributes
    ----------
    task_id:
        Identifier of the failing task.
    used_bytes:
        Bytes the task attempted to hold.
    budget_bytes:
        Configured per-task budget.
    """

    def __init__(self, task_id: str, used_bytes: int, budget_bytes: int):
        self.task_id = task_id
        self.used_bytes = used_bytes
        self.budget_bytes = budget_bytes
        super().__init__(
            f"task {task_id} out of memory: needs {used_bytes} bytes, "
            f"budget is {budget_bytes} bytes"
        )

    # exceptions with non-message constructor arguments must spell out how
    # to rebuild themselves, or pickling (used by the process execution
    # backend to ship worker-side failures to the driver) degrades them to
    # a generic RuntimeError carrying only the traceback text
    def __reduce__(self):
        return (type(self), (self.task_id, self.used_bytes, self.budget_bytes))


class TaskRetriesExceededError(ExecutionError):
    """A simulated task failed on every allowed attempt (crash/node loss).

    Mirrors Spark's ``spark.task.maxFailures`` abort: the scheduler retried
    the task with exponential backoff until the fault plan's
    ``max_attempts`` bound, and every attempt failed.
    """

    def __init__(self, task_id: str, attempts: int):
        self.task_id = task_id
        self.attempts = attempts
        super().__init__(
            f"task {task_id} failed on all {attempts} allowed attempts"
        )

    def __reduce__(self):
        return (type(self), (self.task_id, self.attempts))


class ClusterLostError(ExecutionError):
    """Every node was lost mid-stage; no slots remain to retry on."""

    def __init__(self, stage_name: str):
        self.stage_name = stage_name
        super().__init__(
            f"stage {stage_name!r} lost every cluster node; nothing left "
            f"to schedule retries on"
        )

    def __reduce__(self):
        return (type(self), (self.stage_name,))


class SimulatedTimeoutError(ExecutionError):
    """Modeled elapsed time exceeded the configured timeout (paper: 12 h)."""

    def __init__(self, elapsed_seconds: float, timeout_seconds: float):
        self.elapsed_seconds = elapsed_seconds
        self.timeout_seconds = timeout_seconds
        super().__init__(
            f"simulated time {elapsed_seconds:.1f}s exceeded the "
            f"timeout of {timeout_seconds:.1f}s"
        )

    def __reduce__(self):
        return (type(self), (self.elapsed_seconds, self.timeout_seconds))


class DataError(ReproError, ValueError):
    """A dataset file or generator received invalid parameters."""


class ServingError(ReproError, RuntimeError):
    """Base class for errors raised by the serving layer (repro.serving)."""


class ServiceOverloadedError(ServingError):
    """The service shed a query instead of queueing it unboundedly.

    Raised at submit time when the admission queue is full, when a single
    query's estimated footprint can never fit the service memory budget, or
    when the service is shutting down with queries still queued.
    """


class QueryTimeoutError(ServingError):
    """A queued query waited longer than the configured queue timeout.

    Attributes
    ----------
    query_id:
        Identifier of the expired query.
    waited_seconds:
        Wall-clock seconds the query spent queued.
    timeout_seconds:
        The configured queue timeout it exceeded.
    """

    def __init__(self, query_id: str, waited_seconds: float, timeout_seconds: float):
        self.query_id = query_id
        self.waited_seconds = waited_seconds
        self.timeout_seconds = timeout_seconds
        super().__init__(
            f"query {query_id} waited {waited_seconds:.3f}s in the admission "
            f"queue, exceeding the {timeout_seconds:.3f}s timeout"
        )

    def __reduce__(self):
        return (
            type(self),
            (self.query_id, self.waited_seconds, self.timeout_seconds),
        )


class SessionClosedError(ServingError):
    """A query was submitted through a session that has been closed."""
