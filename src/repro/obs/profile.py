"""Cost-model accountability: the predicted-vs-measured join.

The optimizer picks a ``(P, Q, R)`` cuboid and an operator per unit because
its cost model (the paper's Eq. 2 / Table 1) predicts that choice is
cheapest.  A :class:`QueryProfile` holds the join of those predictions
(per-unit estimated network bytes, flops, modeled seconds, memory) against
what execution actually measured (per-unit stage totals), with signed
relative errors — so a mis-modeled unit is a number on a report instead of
being invisible.

Everything here is plain data: the execution layer extracts floats from its
``UnitOp`` estimates and ``MetricsCollector`` per-unit totals and builds
these dataclasses; sinks and tests consume them without importing any
engine machinery.  :meth:`QueryProfile.render` is the engine's
"EXPLAIN ANALYZE": a deterministic text table (wall-clock values are
excluded unless asked for, so golden tests can pin the report).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.obs.span import Span


def relative_error(
    predicted: Optional[float], measured: Optional[float]
) -> Optional[float]:
    """Signed relative error ``(predicted - measured) / measured``.

    Positive means the model over-predicted.  ``None`` whenever no honest
    ratio exists: either side unknown or non-finite, a zero prediction
    against a nonzero measurement (an estimator that produced 0 made no
    claim, and calling it "-100% off" would poison every error aggregate
    calibration trusts), or a nonzero prediction against a zero measurement
    (the ratio is undefined; the old ``+/-inf`` answer leaked into means and
    JSON).  ``0.0`` when both sides are zero — the model claimed no work and
    none happened.
    """
    if predicted is None or measured is None:
        return None
    if not (math.isfinite(predicted) and math.isfinite(measured)):
        return None
    if measured == 0:
        return 0.0 if predicted == 0 else None
    if predicted == 0:
        return None
    return (predicted - measured) / measured


@dataclass(frozen=True)
class UnitProfile:
    """One physical-plan unit's prediction joined with its measurement."""

    index: int
    kind: str
    label: str
    pqr: Optional[Tuple[int, int, int]] = None
    #: Raw-lowering unit indices this unit descends from.  ``(index,)`` (or
    #: empty) for untouched units; a merged unit lists every source unit so
    #: profiles and calibration observations stay joinable across the
    #: graph-pass rewrite instead of dangling on a renumbered id.
    sources: Tuple[int, ...] = ()
    #: Planner-side estimates (None where the unit ran no parameter search).
    predicted_seconds: Optional[float] = None
    predicted_net_bytes: Optional[float] = None
    predicted_flops: Optional[float] = None
    predicted_mem_bytes: Optional[float] = None
    #: Execution-side modeled totals over the unit's stages.
    measured_seconds: float = 0.0
    measured_comm_bytes: float = 0.0
    measured_flops: float = 0.0
    num_stages: int = 0
    num_tasks: int = 0
    #: Real wall-clock seconds the unit's stages took where they ran (driver
    #: thread, thread pool or process-pool worker).  Observability only —
    #: never enters an error ratio, since it depends on host load.
    measured_wall_seconds: Optional[float] = None

    @property
    def seconds_error(self) -> Optional[float]:
        return relative_error(self.predicted_seconds, self.measured_seconds)

    @property
    def net_bytes_error(self) -> Optional[float]:
        return relative_error(self.predicted_net_bytes, self.measured_comm_bytes)

    @property
    def flops_error(self) -> Optional[float]:
        return relative_error(self.predicted_flops, self.measured_flops)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "label": self.label,
            "pqr": list(self.pqr) if self.pqr is not None else None,
            "sources": list(self.sources),
            "predicted_seconds": self.predicted_seconds,
            "predicted_net_bytes": self.predicted_net_bytes,
            "predicted_flops": self.predicted_flops,
            "predicted_mem_bytes": self.predicted_mem_bytes,
            "measured_seconds": self.measured_seconds,
            "measured_comm_bytes": self.measured_comm_bytes,
            "measured_flops": self.measured_flops,
            "num_stages": self.num_stages,
            "num_tasks": self.num_tasks,
            "measured_wall_seconds": self.measured_wall_seconds,
            "seconds_error": self.seconds_error,
            "net_bytes_error": self.net_bytes_error,
            "flops_error": self.flops_error,
        }


@dataclass(frozen=True)
class QueryProfile:
    """The whole query's accountability report (engine's EXPLAIN ANALYZE)."""

    engine: str
    units: Tuple[UnitProfile, ...]
    #: Modeled whole-query totals (``MetricsCollector.totals()``).
    totals: Dict[str, Any] = field(default_factory=dict)
    #: Observability counters accumulated by this query.
    counters: Dict[str, int] = field(default_factory=dict)
    #: The query's span tree (None when telemetry was disabled).
    span: Optional[Span] = None
    #: Real end-to-end wall-clock seconds for the query (None w/o telemetry).
    wall_seconds: Optional[float] = None
    #: The ExecutionResult this profile was built from (opaque here; the
    #: execution layer attaches it so callers keep outputs + profile in one
    #: round trip).  Excluded from ``to_dict``.
    result: Any = None

    # -- aggregates --------------------------------------------------------

    @property
    def measured_seconds(self) -> float:
        return float(self.totals.get("elapsed_seconds", 0.0))

    @property
    def predicted_seconds(self) -> Optional[float]:
        """Summed modeled-seconds predictions over units that carry one."""
        known = [
            u.predicted_seconds for u in self.units
            if u.predicted_seconds is not None
        ]
        return sum(known) if known else None

    @property
    def seconds_error(self) -> Optional[float]:
        """Whole-query error, restricted to units with a seconds estimate
        (comparing a partial prediction against the full measurement would
        manufacture error where the model made no claim)."""
        predicted = measured = 0.0
        any_known = False
        for unit in self.units:
            if unit.predicted_seconds is not None:
                any_known = True
                predicted += unit.predicted_seconds
                measured += unit.measured_seconds
        if not any_known:
            return None
        return relative_error(predicted, measured)

    @property
    def mean_abs_seconds_error(self) -> Optional[float]:
        errors = [
            abs(u.seconds_error) for u in self.units
            if u.seconds_error is not None and math.isfinite(u.seconds_error)
        ]
        return sum(errors) / len(errors) if errors else None

    @property
    def max_abs_seconds_error(self) -> Optional[float]:
        errors = [
            abs(u.seconds_error) for u in self.units
            if u.seconds_error is not None and math.isfinite(u.seconds_error)
        ]
        return max(errors) if errors else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "units": [u.to_dict() for u in self.units],
            "totals": dict(self.totals),
            "counters": dict(self.counters),
            "wall_seconds": self.wall_seconds,
            "predicted_seconds": self.predicted_seconds,
            "measured_seconds": self.measured_seconds,
            "seconds_error": self.seconds_error,
            "mean_abs_seconds_error": self.mean_abs_seconds_error,
            "span": self.span.to_dict() if self.span is not None else None,
        }

    # -- rendering ---------------------------------------------------------

    def render(self, include_wall: bool = False) -> str:
        """The EXPLAIN ANALYZE text report.

        Deterministic by default: only modeled/predicted/measured numbers
        appear (golden tests pin the output).  ``include_wall=True`` adds
        the wall-clock header line and per-span wall timings.
        """
        header = (
            f"QueryProfile[{self.engine}]: {len(self.units)} unit(s), "
            f"{self.totals.get('num_stages', 0)} stage(s); "
            f"measured {_fmt(self.measured_seconds)}s"
        )
        predicted = self.predicted_seconds
        if predicted is not None:
            header += (
                f", predicted {_fmt(predicted)}s "
                f"(err {_fmt_error(self.seconds_error)})"
            )
        lines = [header]
        if include_wall and self.wall_seconds is not None:
            lines.append(f"wall-clock: {self.wall_seconds:.6f}s")
        lines.extend(_render_table(self.units))
        if self.counters:
            parts = ", ".join(
                f"{name}={self.counters[name]}" for name in sorted(self.counters)
            )
            lines.append(f"counters: {parts}")
        if include_wall and self.span is not None:
            lines.append("spans:")
            lines.append(self.span.render(indent=1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"QueryProfile(engine={self.engine!r}, units={len(self.units)}, "
            f"measured={self.measured_seconds:.6g}s)"
        )


_COLUMNS = (
    "unit", "kind", "pqr",
    "sec(pred)", "sec(meas)", "sec err",
    "net(pred)", "net(meas)", "net err",
    "flops(pred)", "flops(meas)", "flops err",
    "label",
)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.4g}"


def _fmt_error(error: Optional[float]) -> str:
    if error is None:
        return "-"
    if math.isinf(error):
        return "+inf" if error > 0 else "-inf"
    return f"{error * 100:+.1f}%"


def _render_table(units: Sequence[UnitProfile]) -> list[str]:
    rows = [list(_COLUMNS)]
    for unit in units:
        merged = unit.sources and unit.sources != (unit.index,)
        unit_cell = (
            f"[{unit.index}<-{','.join(str(s) for s in unit.sources)}]"
            if merged else f"[{unit.index}]"
        )
        rows.append([
            unit_cell,
            unit.kind,
            str(unit.pqr) if unit.pqr is not None else "-",
            _fmt(unit.predicted_seconds),
            _fmt(unit.measured_seconds),
            _fmt_error(unit.seconds_error),
            _fmt(unit.predicted_net_bytes),
            _fmt(unit.measured_comm_bytes),
            _fmt_error(unit.net_bytes_error),
            _fmt(unit.predicted_flops),
            _fmt(unit.measured_flops),
            _fmt_error(unit.flops_error),
            unit.label,
        ])
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(_COLUMNS))
    ]
    lines = []
    for row in rows:
        cells = [cell.ljust(width) for cell, width in zip(row, widths)]
        lines.append("  ".join(cells).rstrip())
    return lines
