"""Per-tenant latency SLOs with multi-window error-budget burn-rate alerts.

An :class:`SLOSpec` declares the objective: "*objective* of tenant X's
queries finish within *latency_target_s*".  The error budget is
``1 - objective``; the **burn rate** over a window is the window's error
rate divided by that budget — burn 1.0 means the budget is being spent
exactly as fast as it accrues, burn 14.4 (the classic fast-burn page
threshold) means a 30-day budget is gone in ~2 days.

:class:`SLOTracker` keeps a sliding event window per tenant and computes
the burn over a *short* and a *long* window (default 5 minutes / 1 hour).
An alert fires only when **both** windows exceed the threshold — the long
window proves sustained damage, the short window proves it is still
happening (so alerts reset quickly after recovery).  Transitions emit
``slo.burn_alert`` / ``slo.burn_recovered`` events on the bus.

The clock is injectable (``clock=`` a callable returning seconds) so tests
and simulations can replay hours of traffic instantly; by default
``time.monotonic`` is used.

Layering: pure stdlib + :mod:`repro.obs.bus`.  Never imports ``core``,
``cluster`` or ``serving`` (enforced by ``scripts/check_layers.py``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, Optional, Tuple

from .bus import EventBus, TelemetryEvent


def _window_label(seconds: float) -> str:
    if seconds >= 3600 and seconds % 3600 == 0:
        return f"{int(seconds) // 3600}h"
    if seconds >= 60 and seconds % 60 == 0:
        return f"{int(seconds) // 60}m"
    return f"{seconds:g}s"


@dataclass(frozen=True)
class SLOSpec:
    """One tenant's latency objective.

    *objective* is the target good-fraction (e.g. ``0.99`` = 99% of
    queries within *latency_target_s*); shed, timed-out and failed
    queries always count against the budget.
    """

    tenant: str
    latency_target_s: float
    objective: float = 0.99
    short_window_s: float = 300.0
    long_window_s: float = 3600.0
    burn_alert_threshold: float = 14.4

    def __post_init__(self):
        if not self.tenant:
            raise ValueError("SLOSpec.tenant must be a non-empty string")
        if self.latency_target_s <= 0:
            raise ValueError(
                f"latency_target_s must be positive, "
                f"got {self.latency_target_s}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be strictly between 0 and 1, "
                f"got {self.objective}"
            )
        if self.short_window_s <= 0 or self.long_window_s <= 0:
            raise ValueError("SLO windows must be positive")
        if self.short_window_s > self.long_window_s:
            raise ValueError(
                f"short window ({self.short_window_s}s) must not exceed "
                f"long window ({self.long_window_s}s)"
            )
        if self.burn_alert_threshold <= 0:
            raise ValueError("burn_alert_threshold must be positive")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective

    @property
    def windows(self) -> Tuple[float, float]:
        return (self.short_window_s, self.long_window_s)


class _TenantWindow:
    """Sliding (timestamp, good) log plus current alert state."""

    __slots__ = ("spec", "events", "burning", "alerts")

    def __init__(self, spec: SLOSpec):
        self.spec = spec
        self.events: Deque[Tuple[float, bool]] = deque()
        self.burning = False
        self.alerts = 0


class SLOTracker:
    """Tracks burn rates for a set of :class:`SLOSpec` (thread-safe).

    Tenants without a spec are ignored: :meth:`record` is a no-op for
    them, keeping the hot path free when SLOs are not configured.
    """

    def __init__(
        self,
        specs: Iterable[SLOSpec] = (),
        clock: Optional[Callable[[], float]] = None,
        bus: Optional[EventBus] = None,
    ):
        self._clock = clock if clock is not None else time.monotonic
        self.bus = bus
        self._lock = threading.Lock()
        self._tenants: Dict[str, _TenantWindow] = {}
        for spec in specs:
            if spec.tenant in self._tenants:
                raise ValueError(
                    f"duplicate SLOSpec for tenant {spec.tenant!r}"
                )
            self._tenants[spec.tenant] = _TenantWindow(spec)

    @property
    def enabled(self) -> bool:
        return bool(self._tenants)

    def specs(self) -> Tuple[SLOSpec, ...]:
        return tuple(w.spec for w in self._tenants.values())

    # -- recording ---------------------------------------------------------

    def record(
        self,
        tenant: str,
        latency_seconds: Optional[float] = None,
        ok: Optional[bool] = None,
        now: Optional[float] = None,
    ) -> bool:
        """Record one query outcome; returns the tenant's burning state.

        Pass *latency_seconds* for served queries (good iff within the
        target) or ``ok=False`` for shed/timeout/failure outcomes.  *now*
        overrides the tracker clock for replay-style tests.
        """
        window = self._tenants.get(tenant)
        if window is None:
            return False
        ts = self._clock() if now is None else now
        if ok is None:
            good = (
                latency_seconds is not None
                and latency_seconds <= window.spec.latency_target_s
            )
        else:
            good = bool(ok)
        event: Optional[TelemetryEvent] = None
        with self._lock:
            window.events.append((ts, good))
            self._prune(window, ts)
            burning = self._is_burning(window, ts)
            if burning and not window.burning:
                window.alerts += 1
                event = self._alert_event(window, ts, "slo.burn_alert")
            elif window.burning and not burning:
                event = self._alert_event(window, ts, "slo.burn_recovered")
            window.burning = burning
        if event is not None and self.bus is not None:
            self.bus.emit(event)
        return burning

    # -- math (call with lock held) ----------------------------------------

    @staticmethod
    def _prune(window: _TenantWindow, now: float) -> None:
        horizon = now - window.spec.long_window_s
        events = window.events
        while events and events[0][0] < horizon:
            events.popleft()

    @staticmethod
    def _burn_rates(window: _TenantWindow, now: float) -> Dict[str, Dict[str, float]]:
        spec = window.spec
        out: Dict[str, Dict[str, float]] = {}
        for seconds in spec.windows:
            horizon = now - seconds
            total = bad = 0
            for ts, good in window.events:
                if ts >= horizon:
                    total += 1
                    if not good:
                        bad += 1
            error_rate = bad / total if total else 0.0
            out[_window_label(seconds)] = {
                "window_seconds": seconds,
                "total": total,
                "bad": bad,
                "error_rate": error_rate,
                "burn_rate": error_rate / spec.error_budget,
            }
        return out

    def _is_burning(self, window: _TenantWindow, now: float) -> bool:
        rates = self._burn_rates(window, now)
        threshold = window.spec.burn_alert_threshold
        return all(
            r["total"] > 0 and r["burn_rate"] >= threshold
            for r in rates.values()
        )

    def _alert_event(
        self, window: _TenantWindow, now: float, name: str
    ) -> TelemetryEvent:
        spec = window.spec
        rates = self._burn_rates(window, now)
        attrs = {
            "tenant": spec.tenant,
            "latency_target_s": spec.latency_target_s,
            "objective": spec.objective,
            "threshold": spec.burn_alert_threshold,
        }
        for label, r in rates.items():
            attrs[f"burn_{label}"] = r["burn_rate"]
        long_label = _window_label(spec.long_window_s)
        return TelemetryEvent(
            name=name,
            kind="event",
            value=rates[long_label]["burn_rate"],
            attrs=attrs,
        )

    # -- reading -----------------------------------------------------------

    def burning(self, tenant: str) -> bool:
        window = self._tenants.get(tenant)
        if window is None:
            return False
        with self._lock:
            return window.burning

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Dict[str, object]]:
        """Per-tenant burn state (feeds ``status()["slo"]`` and Prometheus)."""
        ts = self._clock() if now is None else now
        snap: Dict[str, Dict[str, object]] = {}
        with self._lock:
            for tenant, window in sorted(self._tenants.items()):
                self._prune(window, ts)
                spec = window.spec
                snap[tenant] = {
                    "latency_target_s": spec.latency_target_s,
                    "objective": spec.objective,
                    "error_budget": spec.error_budget,
                    "threshold": spec.burn_alert_threshold,
                    "burning": window.burning,
                    "alerts": window.alerts,
                    "windows": self._burn_rates(window, ts),
                }
        return snap

    def __repr__(self) -> str:
        with self._lock:
            burning = sorted(
                t for t, w in self._tenants.items() if w.burning
            )
        return (
            f"SLOTracker(tenants={len(self._tenants)}, burning={burning})"
        )
