"""A tiny stdlib HTTP endpoint for pull-based observability.

:class:`MetricsHTTPServer` serves a fixed route table of callables over
``http.server`` — enough for a real Prometheus to scrape ``/metrics`` and
an operator to ``curl /status``, with zero dependencies.  Each route maps
a path to a zero-argument callable returning ``(content_type, body)``;
the callable runs per-request on the serving thread, so scrapes always
see fresh state.

The server binds ``127.0.0.1`` on an ephemeral port by default and runs
on a daemon thread; :meth:`close` shuts it down synchronously.  Handler
errors surface as HTTP 500 with the exception text rather than killing
the serving thread.

Layering: pure stdlib.  Never imports ``core``, ``cluster`` or
``serving`` — the service layer injects its callbacks.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Mapping, Tuple

Route = Callable[[], Tuple[str, str]]


class _Handler(BaseHTTPRequestHandler):
    # set per-server-class in MetricsHTTPServer.start()
    routes: Mapping[str, Route] = {}

    def do_GET(self):  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        route = self.routes.get(path)
        if route is None:
            body = f"not found: {path}\navailable: " + \
                ", ".join(sorted(self.routes)) + "\n"
            self._reply(404, "text/plain; charset=utf-8", body)
            return
        try:
            content_type, body = route()
        except Exception as exc:  # pragma: no cover - defensive
            self._reply(
                500, "text/plain; charset=utf-8",
                f"handler error: {exc!r}\n",
            )
            return
        self._reply(200, content_type, body)

    def _reply(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format, *args):  # noqa: A002 (http.server API)
        pass  # scrapes every few seconds would spam stderr


class MetricsHTTPServer:
    """Serve *routes* over HTTP on a daemon thread until :meth:`close`."""

    def __init__(
        self,
        routes: Mapping[str, Route],
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        handler = type("_BoundHandler", (_Handler,), {"routes": dict(routes)})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-httpd",
            daemon=True,
        )
        self._thread.start()
        self._closed = False

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._thread.join(timeout=5.0)
        self._server.server_close()

    def __enter__(self) -> "MetricsHTTPServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "serving"
        return f"MetricsHTTPServer({self.url}, {state})"
