"""Per-tenant resource accounting: who consumed what, as a chargeback ledger.

The serving layer records every query outcome here (see
:mod:`repro.serving.pool`): served queries deposit their *usage* — modeled
compute/network seconds, modeled elapsed seconds, shuffled bytes, flops —
plus real wall seconds; shed, timed-out and failed queries bump their
outcome counters.  The accountant is strictly observational: nothing in it
is ever read back by planning or execution.

Two views per tenant:

* **usage** — raw resources of the executions charged to this tenant, a
  monotonic counter per resource dimension;
* **charged** — usage after cross-query-CSE redistribution.  When a tenant
  adopts another tenant's in-flight result (:mod:`repro.serving.cse`), the
  adopter is charged a configurable share of the owner's cost and the owner
  is credited the same amount, so **per-dimension charged totals always sum
  to the usage totals** — which themselves sum to the cluster-level
  :class:`~repro.cluster.metrics.MetricsCollector` totals (the conservation
  invariant the regression tests pin).  Transfers are clamped so an owner's
  charged balance never goes negative, no matter how many adopters share
  one execution.

Layering: this module consumes plain dicts and floats only.  It must never
import ``core``, ``cluster`` or ``serving`` (enforced by
``scripts/check_layers.py``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

#: Resource dimensions a query charges (all modeled except wall seconds,
#: which rides separately — it depends on host load, never on the plan).
RESOURCE_FIELDS = (
    "modeled_seconds",
    "compute_seconds",
    "network_seconds",
    "shuffled_bytes",
    "flops",
)

#: Query outcome counters a ledger tracks.
OUTCOME_FIELDS = (
    "submitted",
    "served",
    "cache_hits",
    "cse_adoptions",
    "shed",
    "timed_out",
    "failed",
)


def _zero_resources() -> Dict[str, float]:
    return {name: 0.0 for name in RESOURCE_FIELDS}


@dataclass
class TenantLedger:
    """One tenant's lifetime account: outcomes, usage, and charged cost."""

    tenant: str
    submitted: int = 0
    served: int = 0
    cache_hits: int = 0
    cse_adoptions: int = 0
    shed: int = 0
    timed_out: int = 0
    failed: int = 0
    #: Real wall seconds of this tenant's completed queries (queue + run).
    wall_seconds: float = 0.0
    #: Raw resources of executions charged here (monotonic per dimension).
    usage: Dict[str, float] = field(default_factory=_zero_resources)
    #: Usage after CSE redistribution (owner credits, adopter charges).
    charged: Dict[str, float] = field(default_factory=_zero_resources)
    #: Modeled seconds moved *off* this ledger by adopters of its results.
    cse_credited_seconds: float = 0.0
    #: Modeled seconds moved *onto* this ledger by adopting others' results.
    cse_charged_seconds: float = 0.0

    def snapshot(self) -> Dict[str, object]:
        snap: Dict[str, object] = {
            name: getattr(self, name) for name in OUTCOME_FIELDS
        }
        snap["wall_seconds"] = self.wall_seconds
        snap["usage"] = dict(self.usage)
        snap["charged"] = dict(self.charged)
        snap["cse_credited_seconds"] = self.cse_credited_seconds
        snap["cse_charged_seconds"] = self.cse_charged_seconds
        return snap


class ResourceAccountant:
    """Thread-safe per-tenant ledger book (the chargeback source of truth).

    *cse_adopter_share* is the fraction of an execution's cost a CSE
    adopter is charged (and the owner credited); transfers clamp at the
    owner's remaining charged balance so charged totals stay conserved.
    """

    def __init__(self, cse_adopter_share: float = 0.5):
        if not 0.0 <= cse_adopter_share <= 1.0:
            raise ValueError(
                f"cse_adopter_share must be within [0, 1], "
                f"got {cse_adopter_share}"
            )
        self.cse_adopter_share = cse_adopter_share
        self._lock = threading.Lock()
        self._ledgers: Dict[str, TenantLedger] = {}

    def _ledger(self, tenant: str) -> TenantLedger:
        ledger = self._ledgers.get(tenant)
        if ledger is None:
            ledger = self._ledgers[tenant] = TenantLedger(tenant)
        return ledger

    # -- recording ---------------------------------------------------------

    def record_submitted(self, tenant: str) -> None:
        with self._lock:
            self._ledger(tenant).submitted += 1

    def record_shed(self, tenant: str) -> None:
        with self._lock:
            self._ledger(tenant).shed += 1

    def record_timed_out(self, tenant: str) -> None:
        with self._lock:
            self._ledger(tenant).timed_out += 1

    def record_failed(self, tenant: str) -> None:
        with self._lock:
            self._ledger(tenant).failed += 1

    def charge_query(
        self,
        tenant: str,
        usage: Optional[Mapping[str, float]] = None,
        wall_seconds: float = 0.0,
        from_cache: bool = False,
    ) -> None:
        """Charge one served query to *tenant*.

        *usage* maps :data:`RESOURCE_FIELDS` names to amounts (missing
        keys charge zero); cache hits pass no usage — the execution that
        filled the cache was already charged to whoever ran it.
        """
        with self._lock:
            ledger = self._ledger(tenant)
            ledger.served += 1
            ledger.wall_seconds += max(0.0, wall_seconds)
            if from_cache:
                ledger.cache_hits += 1
            if usage:
                for name in RESOURCE_FIELDS:
                    amount = float(usage.get(name, 0.0))
                    ledger.usage[name] += amount
                    ledger.charged[name] += amount

    def charge_adoption(
        self,
        adopter: str,
        owner: Optional[str],
        usage: Optional[Mapping[str, float]] = None,
        wall_seconds: float = 0.0,
    ) -> Dict[str, float]:
        """Charge *adopter* for adopting *owner*'s in-flight result.

        Transfers ``cse_adopter_share`` of *usage* (the owner execution's
        resources) from the owner's charged balance to the adopter's,
        clamped per dimension at what the owner still holds.  Returns the
        per-dimension amounts actually transferred.
        """
        share = self.cse_adopter_share
        with self._lock:
            ledger = self._ledger(adopter)
            ledger.served += 1
            ledger.cse_adoptions += 1
            ledger.wall_seconds += max(0.0, wall_seconds)
            transferred = _zero_resources()
            if owner is None or owner == adopter or share == 0.0 or not usage:
                return transferred
            owner_ledger = self._ledger(owner)
            for name in RESOURCE_FIELDS:
                amount = share * float(usage.get(name, 0.0))
                amount = min(amount, owner_ledger.charged[name])
                if amount <= 0.0:
                    continue
                owner_ledger.charged[name] -= amount
                ledger.charged[name] += amount
                transferred[name] = amount
            owner_ledger.cse_credited_seconds += transferred["modeled_seconds"]
            ledger.cse_charged_seconds += transferred["modeled_seconds"]
            return transferred

    # -- reading -----------------------------------------------------------

    def tenants(self) -> list:
        with self._lock:
            return sorted(self._ledgers)

    def totals(self) -> Dict[str, object]:
        """Outcome counters, usage and charged amounts summed over tenants.

        ``totals()["usage"] == totals()["charged"]`` per dimension — the
        conservation invariant CSE transfers preserve.
        """
        with self._lock:
            ledgers = list(self._ledgers.values())
        totals: Dict[str, object] = {name: 0 for name in OUTCOME_FIELDS}
        totals["wall_seconds"] = 0.0
        usage = _zero_resources()
        charged = _zero_resources()
        for ledger in ledgers:
            for name in OUTCOME_FIELDS:
                totals[name] += getattr(ledger, name)
            totals["wall_seconds"] += ledger.wall_seconds
            for name in RESOURCE_FIELDS:
                usage[name] += ledger.usage[name]
                charged[name] += ledger.charged[name]
        totals["usage"] = usage
        totals["charged"] = charged
        return totals

    def snapshot(self) -> Dict[str, object]:
        """The whole book as one plain dict (feeds ``repro_tenant_*``)."""
        with self._lock:
            tenants = {
                name: ledger.snapshot()
                for name, ledger in sorted(self._ledgers.items())
            }
        return {
            "cse_adopter_share": self.cse_adopter_share,
            "tenants": tenants,
            "totals": self.totals(),
        }

    def render_chargeback(self) -> str:
        """The chargeback report: one row per tenant, a totals row last."""
        snap = self.snapshot()
        header = [
            "tenant", "served", "cache", "cse", "shed", "t/o", "fail",
            "charged_s", "compute_s", "network_s", "shuffled_MB", "wall_s",
        ]
        rows = [header]

        def row(name: str, data: Mapping[str, object]) -> list:
            charged = data["charged"]
            return [
                name,
                str(data["served"]),
                str(data["cache_hits"]),
                str(data["cse_adoptions"]),
                str(data["shed"]),
                str(data["timed_out"]),
                str(data["failed"]),
                f"{charged['modeled_seconds']:.4f}",
                f"{charged['compute_seconds']:.4f}",
                f"{charged['network_seconds']:.4f}",
                f"{charged['shuffled_bytes'] / 1e6:.2f}",
                f"{data['wall_seconds']:.3f}",
            ]

        for tenant, data in snap["tenants"].items():
            rows.append(row(tenant, data))
        rows.append(row("TOTAL", snap["totals"]))
        widths = [max(len(r[col]) for r in rows) for col in range(len(header))]
        lines = ["chargeback report (share per CSE adoption: "
                 f"{self.cse_adopter_share:g})"]
        for r in rows:
            lines.append("  ".join(
                cell.ljust(width) for cell, width in zip(r, widths)
            ).rstrip())
        return "\n".join(lines)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ResourceAccountant(tenants={len(self._ledgers)}, "
                f"cse_adopter_share={self.cse_adopter_share})"
            )
