"""Unified query telemetry (`repro.obs`).

The observability subsystem every layer above it reports into:

* :mod:`repro.obs.span` — hierarchical query spans (parse -> plan -> lower
  -> per-unit execution -> stages), each carrying wall-clock *and* modeled
  seconds plus free-form attributes;
* :mod:`repro.obs.profile` — the cost-model accountability join: per-unit
  predicted-vs-measured tables (:class:`QueryProfile`) with relative
  errors, rendered as the engine's "EXPLAIN ANALYZE";
* :mod:`repro.obs.bus` — a tiny event bus decoupling producers from
  exporters;
* :mod:`repro.obs.sinks` — pluggable exporters (structured log, in-memory,
  JSON dump for benchmarks);
* :mod:`repro.obs.prometheus` — Prometheus text-exposition rendering plus
  a line-format validator;
* :mod:`repro.obs.accounting` — per-tenant resource ledgers and the
  chargeback report (CSE-aware cost redistribution);
* :mod:`repro.obs.slo` — latency SLOs with multi-window error-budget
  burn-rate alerts;
* :mod:`repro.obs.httpd` — a stdlib HTTP endpoint serving ``/metrics``
  and ``/status`` for pull-based scraping.

Layering: this package sits next to ``config``/``utils`` at the *bottom*
of the stack.  It never imports ``repro.core``, ``repro.cluster`` or
``repro.serving`` — producers up there hand it plain data (dicts, floats,
strings), so any layer may attach a sink without creating an import cycle
(enforced by ``scripts/check_layers.py``).
"""

from repro.obs.accounting import ResourceAccountant, TenantLedger
from repro.obs.bus import EventBus, Sink, TelemetryEvent
from repro.obs.httpd import MetricsHTTPServer
from repro.obs.profile import QueryProfile, UnitProfile, relative_error
from repro.obs.prometheus import (
    MetricFamily,
    PrometheusSink,
    render_exposition,
    slo_families,
    tenant_families,
    validate_exposition,
)
from repro.obs.sinks import JsonDumpSink, LoggingSink, MemorySink
from repro.obs.slo import SLOSpec, SLOTracker
from repro.obs.span import Span, SpanTracer

__all__ = [
    "EventBus",
    "JsonDumpSink",
    "LoggingSink",
    "MemorySink",
    "MetricFamily",
    "MetricsHTTPServer",
    "PrometheusSink",
    "QueryProfile",
    "ResourceAccountant",
    "SLOSpec",
    "SLOTracker",
    "Sink",
    "Span",
    "SpanTracer",
    "TelemetryEvent",
    "TenantLedger",
    "UnitProfile",
    "relative_error",
    "render_exposition",
    "slo_families",
    "tenant_families",
    "validate_exposition",
]
