"""Hierarchical query spans.

A :class:`Span` is one timed phase of a query's life — parse, planning,
cuboid search, lowering, one physical unit, one cluster stage — arranged in
a tree rooted at the query span.  Spans carry two clocks:

* **wall seconds** (``wall_start``/``wall_end``) — real time measured by the
  tracer's clock, what an operator debugging slow planning cares about;
* **modeled seconds** (``modeled_start``/``modeled_end``) — the simulator's
  deterministic clock, filled in for phases that ran cluster stages.

Free-form ``attrs`` hold per-phase counters (cuboids enumerated/pruned,
plan-cache hit, stage task counts).  Everything here is plain data: span
trees are handed to sinks and trace exporters as-is, and ``to_dict()``
round-trips through JSON.

:class:`SpanTracer` builds the tree with nested context managers.  The
clock is injectable so tests pin wall timestamps deterministically.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass
class Span:
    """One timed phase with wall + modeled clocks and free-form attributes."""

    name: str
    category: str = "span"
    wall_start: float = 0.0
    wall_end: Optional[float] = None
    modeled_start: Optional[float] = None
    modeled_end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def wall_seconds(self) -> float:
        """Wall-clock duration (0.0 while the span is still open)."""
        if self.wall_end is None:
            return 0.0
        return max(0.0, self.wall_end - self.wall_start)

    @property
    def modeled_seconds(self) -> Optional[float]:
        """Modeled duration, when both modeled endpoints are known."""
        if self.modeled_start is None or self.modeled_end is None:
            return None
        return max(0.0, self.modeled_end - self.modeled_start)

    def child(self, name: str, category: str = "span", **attrs: Any) -> "Span":
        """Append and return a new child span (caller closes it)."""
        span = Span(name=name, category=category, attrs=dict(attrs))
        self.children.append(span)
        return span

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, children in order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """The first span named *name* in depth-first order (or None)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-serializable when attrs are)."""
        return {
            "name": self.name,
            "category": self.category,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
            "wall_seconds": self.wall_seconds,
            "modeled_start": self.modeled_start,
            "modeled_end": self.modeled_end,
            "modeled_seconds": self.modeled_seconds,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, indent: int = 0) -> str:
        """An indented one-line-per-span text tree (wall + modeled)."""
        pad = "  " * indent
        line = f"{pad}{self.name} [{self.category}] wall={self.wall_seconds:.6f}s"
        modeled = self.modeled_seconds
        if modeled is not None:
            line += f" modeled={modeled:.6g}s"
        if self.attrs:
            parts = ", ".join(
                f"{key}={self.attrs[key]}" for key in sorted(self.attrs)
            )
            line += f" ({parts})"
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, category={self.category!r}, "
            f"wall={self.wall_seconds:.6f}s, children={len(self.children)})"
        )


class SpanTracer:
    """Builds a span tree with nested ``with tracer.span(...)`` blocks.

    The tracer is single-threaded by design: the engine's execute lock
    serializes query phases, and per-unit spans are attached after the
    (possibly concurrent) unit dispatch finished, from measured wall
    durations — so no span is ever mutated from two threads.

    *clock* defaults to :func:`time.perf_counter`; inject a fake for
    deterministic tests.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or time.perf_counter
        self.root: Optional[Span] = None
        self._stack: List[Span] = []

    def now(self) -> float:
        return self._clock()

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span (None outside any ``span()`` block)."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(
        self, name: str, category: str = "span", **attrs: Any
    ) -> Iterator[Span]:
        """Open a span as a child of the current one (or as the root)."""
        span = Span(
            name=name,
            category=category,
            wall_start=self.now(),
            attrs=dict(attrs),
        )
        if self._stack:
            self._stack[-1].children.append(span)
        elif self.root is None:
            self.root = span
        else:
            # a second top-level span joins the existing root as a child so
            # one tracer always yields one tree
            self.root.children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.wall_end = self.now()
