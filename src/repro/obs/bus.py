"""A tiny telemetry event bus with pluggable sinks.

Producers (engine, serving layer, benchmarks) emit
:class:`TelemetryEvent` records — plain name/kind/value/attrs data — and
the :class:`EventBus` fans each one out to every attached :class:`Sink`.
Telemetry must never take a query down, so a sink that raises is detached
and logged instead of propagating into the execute path.

With no sinks attached, :meth:`EventBus.emit` is a single attribute check —
the default configuration pays essentially nothing.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

logger = logging.getLogger("repro.obs")

#: Event kinds understood by the bundled sinks.
EVENT_KINDS = ("counter", "gauge", "event", "profile", "span")


@dataclass(frozen=True)
class TelemetryEvent:
    """One telemetry record: a named value with free-form attributes."""

    name: str
    kind: str = "event"
    value: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "value": self.value,
            "attrs": dict(self.attrs),
        }


class Sink:
    """Base sink: receives events; subclasses override :meth:`emit`."""

    def emit(self, event: TelemetryEvent) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; called by :meth:`EventBus.close`."""


class EventBus:
    """Fans telemetry events out to attached sinks (thread-safe).

    Emission order per sink matches emission order on the bus; sinks that
    raise are detached (telemetry is best-effort, queries must not fail
    because an exporter did).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sinks: List[Sink] = []

    @property
    def sinks(self) -> List[Sink]:
        with self._lock:
            return list(self._sinks)

    @property
    def active(self) -> bool:
        """True when at least one sink is attached (cheap emit guard)."""
        return bool(self._sinks)

    def attach(self, sink: Sink) -> Sink:
        with self._lock:
            self._sinks.append(sink)
        return sink

    def detach(self, sink: Sink) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def emit(self, event: TelemetryEvent) -> None:
        if not self._sinks:
            return
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink.emit(event)
            except Exception:  # noqa: BLE001 - telemetry is best-effort
                logger.exception(
                    "telemetry sink %r failed; detaching it", sink
                )
                self.detach(sink)

    def emit_counters(
        self,
        prefix: str,
        counters: Mapping[str, Any],
        **attrs: Any,
    ) -> None:
        """Emit one counter event per ``name -> numeric value`` entry."""
        if not self._sinks:
            return
        for name in sorted(counters):
            value = counters[name]
            if isinstance(value, (int, float)):
                self.emit(TelemetryEvent(
                    name=f"{prefix}.{name}",
                    kind="counter",
                    value=float(value),
                    attrs=dict(attrs),
                ))

    def close(self) -> None:
        with self._lock:
            sinks, self._sinks = self._sinks, []
        for sink in sinks:
            try:
                sink.close()
            except Exception:  # noqa: BLE001 - closing is best-effort too
                logger.exception("telemetry sink %r failed to close", sink)

    def __repr__(self) -> str:
        return f"EventBus({len(self._sinks)} sink(s))"
