"""Prometheus text-exposition export (version 0.0.4 line format).

Builders turn plain metric dicts — the shapes produced by
``MetricsCollector.snapshot()``, the caches' ``stats()`` and the serving
layer's ``status()`` — into :class:`MetricFamily` rows, and
:func:`render_exposition` renders them as the text format a Prometheus
scraper ingests.  :func:`validate_exposition` is a minimal line-format
parser used by tests and CI to prove the output actually parses.

Everything consumes plain data on purpose: this module knows nothing about
engines or services (see the package layering note in
:mod:`repro.obs`), so any layer can hand its numbers down.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.bus import Sink, TelemetryEvent

#: Metric types of the text exposition format.
METRIC_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

Labels = Mapping[str, str]
Sample = Tuple[Dict[str, str], float]


@dataclass
class MetricFamily:
    """One metric family: name, type, help text and labeled samples."""

    name: str
    mtype: str = "gauge"
    help: str = ""
    samples: List[Sample] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(f"invalid metric name {self.name!r}")
        if self.mtype not in METRIC_TYPES:
            raise ValueError(
                f"metric type must be one of {METRIC_TYPES}, got {self.mtype!r}"
            )

    def add(self, value: float, **labels: str) -> "MetricFamily":
        self.samples.append(({k: str(v) for k, v in labels.items()}, float(value)))
        return self


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.10g}"


def render_exposition(families: List[MetricFamily]) -> str:
    """Render *families* as the Prometheus text exposition format."""
    lines: List[str] = []
    for family in families:
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.mtype}")
        for labels, value in family.samples:
            # the "__suffix" pseudo-label turns a sample into a summary's
            # _sum/_count companion row without a separate family
            labels = dict(labels)
            suffix = labels.pop("__suffix", "")
            name = f"{family.name}{suffix}" if suffix else family.name
            if labels:
                body = ",".join(
                    f'{key}="{_escape_label(str(labels[key]))}"'
                    for key in sorted(labels)
                )
                lines.append(f"{name}{{{body}}} {_format_value(value)}")
            else:
                lines.append(f"{name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def validate_exposition(text: str) -> int:
    """Validate Prometheus text exposition; returns the sample count.

    A minimal parser of the 0.0.4 line format: comment lines must be
    well-formed HELP/TYPE, TYPE must precede its samples and appear at most
    once per family, sample lines must have a valid metric name, parseable
    labels and a float value.  Raises ``ValueError`` naming the first bad
    line.
    """
    typed: Dict[str, str] = {}
    seen_samples: set = set()
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            name = parts[2]
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: invalid metric name {name!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in METRIC_TYPES:
                    raise ValueError(
                        f"line {lineno}: invalid TYPE line {line!r}"
                    )
                if name in typed:
                    raise ValueError(
                        f"line {lineno}: duplicate TYPE for {name!r}"
                    )
                typed[name] = parts[3]
            continue
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)(\s+-?\d+)?$", line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name, _, label_body, value = match.group(1), match.group(2), match.group(3), match.group(4)
        labels: Tuple[Tuple[str, str], ...] = ()
        if label_body:
            parsed = _LABEL_RE.findall(label_body)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in parsed)
            if rebuilt != label_body:
                raise ValueError(f"line {lineno}: malformed labels {{{label_body}}}")
            labels = tuple(parsed)
        try:
            float(value)
        except ValueError:
            raise ValueError(f"line {lineno}: bad sample value {value!r}") from None
        base = name
        for suffix in ("_sum", "_count", "_bucket", "_total"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
                break
        if typed and base not in typed and name not in typed:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding TYPE"
            )
        key = (name, labels)
        if key in seen_samples:
            raise ValueError(f"line {lineno}: duplicate sample {line!r}")
        seen_samples.add(key)
        samples += 1
    return samples


# ---------------------------------------------------------------------------
# builders from plain metric dicts
# ---------------------------------------------------------------------------


def engine_families(
    snapshot: Mapping[str, Any], prefix: str = "repro_engine"
) -> List[MetricFamily]:
    """Families for a ``MetricsCollector.snapshot()`` dict: modeled stage
    totals plus every observability counter."""
    comm = MetricFamily(
        f"{prefix}_comm_bytes_total", "counter",
        "Modeled bytes moved, by transfer phase",
    )
    comm.add(snapshot.get("consolidation_bytes", 0), phase="consolidation")
    comm.add(snapshot.get("aggregation_bytes", 0), phase="aggregation")
    families = [
        MetricFamily(
            f"{prefix}_stages_total", "counter", "Cluster stages executed",
        ).add(snapshot.get("num_stages", 0)),
        MetricFamily(
            f"{prefix}_tasks_total", "counter", "Simulated tasks executed",
        ).add(snapshot.get("num_tasks", 0)),
        MetricFamily(
            f"{prefix}_task_attempts_total", "counter",
            "Task attempts including retries",
        ).add(snapshot.get("num_attempts", 0)),
        comm,
        MetricFamily(
            f"{prefix}_flops_total", "counter", "Modeled floating point operations",
        ).add(snapshot.get("flops", 0)),
        MetricFamily(
            f"{prefix}_elapsed_modeled_seconds_total", "counter",
            "Modeled elapsed seconds across stages",
        ).add(snapshot.get("elapsed_seconds", 0.0)),
        MetricFamily(
            f"{prefix}_peak_task_memory_bytes", "gauge",
            "Largest per-task memory footprint observed",
        ).add(snapshot.get("peak_task_memory", 0)),
        MetricFamily(
            f"{prefix}_aborted_stages_total", "counter",
            "Stages whose body raised before closing",
        ).add(snapshot.get("num_aborted_stages", 0)),
    ]
    counters = snapshot.get("counters") or {}
    if counters:
        family = MetricFamily(
            f"{prefix}_counter_total", "counter",
            "Engine observability counters",
        )
        for name in sorted(counters):
            family.add(counters[name], name=name)
        families.append(family)
    return families


def cache_families(
    caches: Mapping[str, Mapping[str, Any]], prefix: str = "repro_cache"
) -> List[MetricFamily]:
    """Families for ``{cache name -> stats() dict}`` (plan/slice/result)."""
    hits = MetricFamily(f"{prefix}_hits_total", "counter", "Cache hits")
    misses = MetricFamily(f"{prefix}_misses_total", "counter", "Cache misses")
    entries = MetricFamily(f"{prefix}_entries", "gauge", "Live cache entries")
    size = MetricFamily(f"{prefix}_bytes", "gauge", "Cached payload bytes")
    for name in sorted(caches):
        stats = caches[name]
        hits.add(stats.get("hits", 0), cache=name)
        misses.add(stats.get("misses", 0), cache=name)
        entries.add(stats.get("entries", 0), cache=name)
        if "bytes" in stats:
            size.add(stats["bytes"], cache=name)
    families = [hits, misses, entries]
    if size.samples:
        families.append(size)
    return families


def serving_families(
    status: Mapping[str, Any], prefix: str = "repro_serving"
) -> List[MetricFamily]:
    """Families for a ``MatrixService.status()`` dict: per-tenant query
    outcomes and latency quantiles, plus queue/running/session gauges."""
    outcomes = MetricFamily(
        f"{prefix}_queries_total", "counter",
        "Queries by tenant and outcome",
    )
    latency = MetricFamily(
        f"{prefix}_latency_seconds", "summary",
        "Per-tenant submit-to-completion latency",
    )
    tenants = status.get("tenants") or {}
    for tenant in sorted(tenants):
        stats = tenants[tenant]
        for outcome in ("submitted", "served", "cache_hits", "shed",
                        "timed_out", "failed"):
            outcomes.add(stats.get(outcome, 0), tenant=tenant, outcome=outcome)
        tenant_latency = stats.get("latency") or {}
        for quantile in ("p50", "p95", "p99"):
            if quantile in tenant_latency:
                latency.add(
                    tenant_latency[quantile],
                    tenant=tenant,
                    quantile=f"0.{quantile[1:]}",
                )
        if "count" in tenant_latency:
            latency.add(
                tenant_latency["count"], tenant=tenant, __suffix="_count"
            )
        if "mean" in tenant_latency and "count" in tenant_latency:
            latency.add(
                tenant_latency["mean"] * tenant_latency["count"],
                tenant=tenant,
                __suffix="_sum",
            )
    families = [outcomes]
    if latency.samples:
        families.append(latency)
    families.extend([
        MetricFamily(
            f"{prefix}_queue_depth", "gauge", "Queries waiting for admission",
        ).add(status.get("queue_depth", 0)),
        MetricFamily(
            f"{prefix}_running", "gauge", "Queries currently executing",
        ).add(status.get("running", 0)),
        MetricFamily(
            f"{prefix}_sessions", "gauge", "Open sessions",
        ).add(status.get("sessions", 0)),
    ])
    cse = status.get("cse")
    if cse:
        families.extend([
            MetricFamily(
                f"{prefix}_cse_hits_total", "counter",
                "Queries that adopted a concurrent query's in-flight result",
            ).add(cse.get("hits", 0)),
            MetricFamily(
                f"{prefix}_cse_inflight", "gauge",
                "Result keys currently executing under a CSE lease",
            ).add(cse.get("inflight", 0)),
        ])
    return families


def replica_families(
    replicas: List[Mapping[str, Any]], prefix: str = "repro_replica"
) -> List[MetricFamily]:
    """Families for ``MatrixService.status()["replicas"]``: one sample per
    engine replica, labeled ``replica=<name>`` — queue depth, busy/idle,
    outcome counters, memory budget and calibration generation."""
    queue_depth = MetricFamily(
        f"{prefix}_queue_depth", "gauge",
        "Queries waiting for admission, per replica",
    )
    running = MetricFamily(
        f"{prefix}_running", "gauge",
        "Queries currently executing, per replica",
    )
    busy = MetricFamily(
        f"{prefix}_busy", "gauge",
        "1 when the replica is executing at least one query",
    )
    budget = MetricFamily(
        f"{prefix}_memory_budget_bytes", "gauge",
        "Admission memory budget share, per replica",
    )
    generation = MetricFamily(
        f"{prefix}_calibration_generation", "gauge",
        "Shared calibration-store generation seen by the replica",
    )
    served = MetricFamily(
        f"{prefix}_served_total", "counter",
        "Queries completed by the replica",
    )
    cache_hits = MetricFamily(
        f"{prefix}_result_cache_hits_total", "counter",
        "Result-cache hits answered on the replica's dispatch path",
    )
    cse_hits = MetricFamily(
        f"{prefix}_cse_hits_total", "counter",
        "In-flight results adopted via cross-query CSE on the replica",
    )
    failed = MetricFamily(
        f"{prefix}_failed_total", "counter",
        "Queries failed on the replica",
    )
    timed_out = MetricFamily(
        f"{prefix}_timed_out_total", "counter",
        "Queries expired from the replica's admission queue",
    )
    for replica in replicas:
        name = str(replica.get("name", ""))
        queue_depth.add(replica.get("queue_depth", 0), replica=name)
        running.add(replica.get("running", 0), replica=name)
        busy.add(1 if replica.get("busy") else 0, replica=name)
        budget.add(replica.get("memory_budget_bytes", 0), replica=name)
        generation.add(replica.get("calibration_generation", 0), replica=name)
        served.add(replica.get("served", 0), replica=name)
        cache_hits.add(replica.get("result_cache_hits", 0), replica=name)
        cse_hits.add(replica.get("cse_hits", 0), replica=name)
        failed.add(replica.get("failed", 0), replica=name)
        timed_out.add(replica.get("timed_out", 0), replica=name)
    return [
        queue_depth, running, busy, budget, generation,
        served, cache_hits, cse_hits, failed, timed_out,
    ]


def calibration_families(
    stats: Mapping[str, Any], prefix: str = "repro_calibration"
) -> List[MetricFamily]:
    """Families for a ``CalibrationStore.stats()`` dict: fit generation,
    observation volume, planner error and per-kernel fitted coefficients."""
    families = [
        MetricFamily(
            f"{prefix}_generation", "counter",
            "Calibration fit generation (bumped per committed batch)",
        ).add(stats.get("generation", 0)),
        MetricFamily(
            f"{prefix}_observations_total", "counter",
            "Unit profiles fed into the calibration store",
        ).add(stats.get("observations", 0)),
    ]
    error = stats.get("mean_abs_seconds_error")
    if error is not None:
        families.append(
            MetricFamily(
                f"{prefix}_mean_abs_seconds_error", "gauge",
                "Mean absolute relative error of planner-predicted seconds",
            ).add(error)
        )
    kernels = stats.get("kernels") or {}
    if kernels:
        samples = MetricFamily(
            f"{prefix}_kernel_samples", "gauge",
            "Observations in the fit window, per kernel and sparsity bucket",
        )
        residual = MetricFamily(
            f"{prefix}_kernel_residual_error", "gauge",
            "Mean absolute relative fit residual, per kernel and sparsity bucket",
        )
        for name in sorted(kernels):
            kernel = kernels[name]
            kind, _, bucket = name.partition("/")
            samples.add(kernel.get("samples", 0), kind=kind, bucket=bucket)
            if "residual_error" in kernel:
                residual.add(kernel["residual_error"], kind=kind, bucket=bucket)
        families.append(samples)
        if residual.samples:
            families.append(residual)
    return families


def tenant_families(
    accounting: Mapping[str, Any], prefix: str = "repro_tenant"
) -> List[MetricFamily]:
    """Families for a ``ResourceAccountant.snapshot()`` dict: per-tenant
    query outcomes, charged/raw resource usage, and CSE cost transfers."""
    outcomes = MetricFamily(
        f"{prefix}_queries_total", "counter",
        "Accounted queries by tenant and outcome",
    )
    charged = MetricFamily(
        f"{prefix}_charged_seconds_total", "counter",
        "Modeled seconds charged after CSE redistribution, by resource",
    )
    usage = MetricFamily(
        f"{prefix}_usage_seconds_total", "counter",
        "Raw modeled seconds of executions run for the tenant, by resource",
    )
    shuffled = MetricFamily(
        f"{prefix}_charged_shuffled_bytes_total", "counter",
        "Shuffled bytes charged after CSE redistribution",
    )
    flops = MetricFamily(
        f"{prefix}_charged_flops_total", "counter",
        "Floating point operations charged after CSE redistribution",
    )
    wall = MetricFamily(
        f"{prefix}_wall_seconds_total", "counter",
        "Real submit-to-completion wall seconds of served queries",
    )
    transfers = MetricFamily(
        f"{prefix}_cse_transfer_seconds_total", "counter",
        "Modeled seconds moved between ledgers by CSE adoption",
    )
    seconds_dims = ("modeled_seconds", "compute_seconds", "network_seconds")
    tenants = accounting.get("tenants") or {}
    for tenant in sorted(tenants):
        ledger = tenants[tenant]
        for outcome in ("submitted", "served", "cache_hits", "cse_adoptions",
                        "shed", "timed_out", "failed"):
            outcomes.add(ledger.get(outcome, 0), tenant=tenant,
                         outcome=outcome)
        ledger_charged = ledger.get("charged") or {}
        ledger_usage = ledger.get("usage") or {}
        for dim in seconds_dims:
            label = dim[: -len("_seconds")]
            charged.add(ledger_charged.get(dim, 0.0), tenant=tenant,
                        resource=label)
            usage.add(ledger_usage.get(dim, 0.0), tenant=tenant,
                      resource=label)
        shuffled.add(ledger_charged.get("shuffled_bytes", 0.0), tenant=tenant)
        flops.add(ledger_charged.get("flops", 0.0), tenant=tenant)
        wall.add(ledger.get("wall_seconds", 0.0), tenant=tenant)
        transfers.add(ledger.get("cse_credited_seconds", 0.0),
                      tenant=tenant, direction="credited")
        transfers.add(ledger.get("cse_charged_seconds", 0.0),
                      tenant=tenant, direction="charged")
    return [outcomes, charged, usage, shuffled, flops, wall, transfers]


def slo_families(
    slo: Mapping[str, Mapping[str, Any]], prefix: str = "repro_slo"
) -> List[MetricFamily]:
    """Families for an ``SLOTracker.snapshot()`` dict: per-tenant targets,
    window burn rates, and the burning / alert-count state."""
    target = MetricFamily(
        f"{prefix}_latency_target_seconds", "gauge",
        "Latency target of the tenant's SLO",
    )
    objective = MetricFamily(
        f"{prefix}_objective", "gauge",
        "Good-fraction objective of the tenant's SLO",
    )
    burn = MetricFamily(
        f"{prefix}_burn_rate", "gauge",
        "Error-budget burn rate, per alert window",
    )
    error_rate = MetricFamily(
        f"{prefix}_window_error_rate", "gauge",
        "Observed error rate, per alert window",
    )
    burning = MetricFamily(
        f"{prefix}_burning", "gauge",
        "1 while the multi-window burn-rate alert is firing",
    )
    alerts = MetricFamily(
        f"{prefix}_alerts_total", "counter",
        "Burn-rate alerts fired since startup",
    )
    for tenant in sorted(slo):
        state = slo[tenant]
        target.add(state.get("latency_target_s", 0.0), tenant=tenant)
        objective.add(state.get("objective", 0.0), tenant=tenant)
        burning.add(1 if state.get("burning") else 0, tenant=tenant)
        alerts.add(state.get("alerts", 0), tenant=tenant)
        for label, window in (state.get("windows") or {}).items():
            burn.add(window.get("burn_rate", 0.0), tenant=tenant,
                     window=label)
            error_rate.add(window.get("error_rate", 0.0), tenant=tenant,
                           window=label)
    return [target, objective, burn, error_rate, burning, alerts]


class PrometheusSink(Sink):
    """Aggregates counter/gauge telemetry events into a scrapeable page.

    ``counter`` events accumulate by (name, attrs); ``gauge`` events keep
    the latest value.  Event names are sanitized into metric names
    (``.`` -> ``_``); attributes become labels.  :meth:`render` returns the
    text exposition for everything seen so far.
    """

    def __init__(self, prefix: str = "repro"):
        self.prefix = prefix
        self._counters: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
        self._gauges: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}

    @staticmethod
    def _metric_name(name: str) -> str:
        cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
        if not _NAME_RE.match(cleaned):
            cleaned = "_" + cleaned
        return cleaned

    def emit(self, event: TelemetryEvent) -> None:
        if event.value is None or event.kind not in ("counter", "gauge"):
            return
        name = self._metric_name(f"{self.prefix}_{event.name}")
        labels = tuple(sorted((str(k), str(v)) for k, v in event.attrs.items()))
        if event.kind == "counter":
            key = (name + "_total", labels)
            self._counters[key] = self._counters.get(key, 0.0) + event.value
        else:
            self._gauges[(name, labels)] = event.value

    def families(self) -> List[MetricFamily]:
        grouped: Dict[Tuple[str, str], MetricFamily] = {}
        for store, mtype in ((self._counters, "counter"), (self._gauges, "gauge")):
            for (name, labels), value in sorted(store.items()):
                family = grouped.get((name, mtype))
                if family is None:
                    family = grouped[(name, mtype)] = MetricFamily(
                        name, mtype, "Telemetry events"
                    )
                family.add(value, **dict(labels))
        return [grouped[key] for key in sorted(grouped)]

    def render(self) -> str:
        return render_exposition(self.families())
