"""Bundled telemetry sinks: structured log, in-memory, JSON dump.

Every sink consumes plain :class:`~repro.obs.bus.TelemetryEvent` data, so
they work identically whether the producer was the engine, the serving
layer, or a benchmark harness.
"""

from __future__ import annotations

import json
import logging
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.obs.bus import Sink, TelemetryEvent


class LoggingSink(Sink):
    """Writes one structured log line per event.

    The line is ``<name> <kind> value=<v> <k>=<v>...`` with attribute keys
    sorted — grep-friendly and stable for log-based assertions.

    *max_per_second* caps the log rate with a token bucket (burst = one
    second's allowance) so a hot telemetry source can't flood the log of a
    long-running service; suppressed events are counted and reported in a
    ``...suppressed N events...`` line when output resumes.
    """

    def __init__(
        self,
        logger: Optional[logging.Logger] = None,
        level: int = logging.INFO,
        max_per_second: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if max_per_second is not None and max_per_second <= 0:
            raise ValueError(
                f"max_per_second must be positive, got {max_per_second}"
            )
        self._logger = logger or logging.getLogger("repro.obs")
        self._level = level
        self._rate = max_per_second
        self._clock = clock if clock is not None else time.monotonic
        self._tokens = max_per_second if max_per_second is not None else 0.0
        self._last_refill = self._clock()
        self.suppressed = 0

    def _admit(self) -> bool:
        if self._rate is None:
            return True
        now = self._clock()
        self._tokens = min(
            self._rate, self._tokens + (now - self._last_refill) * self._rate
        )
        self._last_refill = now
        if self._tokens < 1.0:
            self.suppressed += 1
            return False
        self._tokens -= 1.0
        if self.suppressed:
            self._logger.log(
                self._level,
                "...suppressed %d events (rate limit %g/s)...",
                self.suppressed,
                self._rate,
            )
            self.suppressed = 0
        return True

    def emit(self, event: TelemetryEvent) -> None:
        if not self._admit():
            return
        parts = [event.name, event.kind]
        if event.value is not None:
            parts.append(f"value={event.value:g}")
        for key in sorted(event.attrs):
            parts.append(f"{key}={event.attrs[key]}")
        self._logger.log(self._level, "%s", " ".join(parts))


class MemorySink(Sink):
    """Keeps events in memory (tests and interactive inspection).

    *max_events* bounds the buffer: when full, the oldest event is
    dropped and :attr:`dropped` counts how many were lost, so a sink left
    attached to a long-running service holds steady memory.  Unbounded by
    default — short-lived tests want every event.
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        if max_events is not None and max_events <= 0:
            raise ValueError(
                f"max_events must be positive, got {max_events}"
            )
        self.max_events = max_events
        self.events: Deque[TelemetryEvent] = deque(maxlen=max_events)
        self.dropped = 0

    def emit(self, event: TelemetryEvent) -> None:
        if (
            self.max_events is not None
            and len(self.events) == self.max_events
        ):
            self.dropped += 1
        self.events.append(event)

    def named(self, name: str) -> List[TelemetryEvent]:
        return [e for e in self.events if e.name == name]

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)


class JsonDumpSink(Sink):
    """Accumulates events and dumps them as one JSON document.

    Benchmarks attach one, run their workload, then :meth:`dump` the
    collected telemetry next to their other artifacts.  When *path* is
    given, :meth:`close` (called by ``EventBus.close``) writes the file.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: TelemetryEvent) -> None:
        self.events.append(event.to_dict())

    def to_json(self, indent: int = 1) -> str:
        return json.dumps({"events": self.events}, indent=indent, default=str)

    def dump(self, path: Optional[str] = None) -> None:
        target = path or self.path
        if target is None:
            raise ValueError("JsonDumpSink needs a path to dump to")
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    def close(self) -> None:
        if self.path is not None:
            self.dump()
