"""Bundled telemetry sinks: structured log, in-memory, JSON dump.

Every sink consumes plain :class:`~repro.obs.bus.TelemetryEvent` data, so
they work identically whether the producer was the engine, the serving
layer, or a benchmark harness.
"""

from __future__ import annotations

import json
import logging
from typing import Any, Dict, List, Optional

from repro.obs.bus import Sink, TelemetryEvent


class LoggingSink(Sink):
    """Writes one structured log line per event.

    The line is ``<name> <kind> value=<v> <k>=<v>...`` with attribute keys
    sorted — grep-friendly and stable for log-based assertions.
    """

    def __init__(
        self,
        logger: Optional[logging.Logger] = None,
        level: int = logging.INFO,
    ):
        self._logger = logger or logging.getLogger("repro.obs")
        self._level = level

    def emit(self, event: TelemetryEvent) -> None:
        parts = [event.name, event.kind]
        if event.value is not None:
            parts.append(f"value={event.value:g}")
        for key in sorted(event.attrs):
            parts.append(f"{key}={event.attrs[key]}")
        self._logger.log(self._level, "%s", " ".join(parts))


class MemorySink(Sink):
    """Keeps every event in a list (tests and interactive inspection)."""

    def __init__(self) -> None:
        self.events: List[TelemetryEvent] = []

    def emit(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    def named(self, name: str) -> List[TelemetryEvent]:
        return [e for e in self.events if e.name == name]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class JsonDumpSink(Sink):
    """Accumulates events and dumps them as one JSON document.

    Benchmarks attach one, run their workload, then :meth:`dump` the
    collected telemetry next to their other artifacts.  When *path* is
    given, :meth:`close` (called by ``EventBus.close``) writes the file.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: TelemetryEvent) -> None:
        self.events.append(event.to_dict())

    def to_json(self, indent: int = 1) -> str:
        return json.dumps({"events": self.events}, indent=indent, default=str)

    def dump(self, path: Optional[str] = None) -> None:
        target = path or self.path
        if target is None:
            raise ValueError("JsonDumpSink needs a path to dump to")
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    def close(self) -> None:
        if self.path is not None:
            self.dump()
