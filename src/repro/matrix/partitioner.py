"""Block partitioners: row, column and grid schemes.

The paper (Section 5) extends Spark's ``RDD`` partitioner with row, column and
grid partitioning; MatFast in particular chooses output partitioning schemes
to reduce the cost of the next operator.  A partitioner maps a block key to a
partition id in ``[0, num_partitions)``; the simulated cluster uses the id to
decide which node initially hosts the block, which determines whether a
consolidation transfer is node-local (free) or remote (charged).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.utils.validation import check_positive

BlockKey = tuple[int, int]


class Partitioner(ABC):
    """Maps a block key to a partition id."""

    def __init__(self, num_partitions: int):
        check_positive("num_partitions", num_partitions)
        self.num_partitions = num_partitions

    @abstractmethod
    def partition(self, key: BlockKey) -> int:
        """Partition id for block *key*."""

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.num_partitions == other.num_partitions  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_partitions={self.num_partitions})"


class RowPartitioner(Partitioner):
    """Blocks in the same block-row land in the same partition."""

    def partition(self, key: BlockKey) -> int:
        return key[0] % self.num_partitions


class ColumnPartitioner(Partitioner):
    """Blocks in the same block-column land in the same partition."""

    def partition(self, key: BlockKey) -> int:
        return key[1] % self.num_partitions


@dataclass(frozen=True)
class _GridShape:
    grid_rows: int
    grid_cols: int


class GridPartitioner(Partitioner):
    """2-D grid partitioning: co-locates rectangular neighbourhoods.

    A ``(gr, gc)`` grid spreads the block grid over ``gr * gc`` partitions
    such that block ``(i, j)`` goes to ``(i % gr) * gc + (j % gc)`` — the
    default placement for inputs on the simulated cluster.
    """

    def __init__(self, grid_rows: int, grid_cols: int):
        check_positive("grid_rows", grid_rows)
        check_positive("grid_cols", grid_cols)
        super().__init__(grid_rows * grid_cols)
        self.grid_rows = grid_rows
        self.grid_cols = grid_cols

    def partition(self, key: BlockKey) -> int:
        return (key[0] % self.grid_rows) * self.grid_cols + (key[1] % self.grid_cols)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GridPartitioner)
            and self.grid_rows == other.grid_rows
            and self.grid_cols == other.grid_cols
        )

    def __hash__(self) -> int:
        return hash(("GridPartitioner", self.grid_rows, self.grid_cols))

    def __repr__(self) -> str:
        return f"GridPartitioner({self.grid_rows}x{self.grid_cols})"
