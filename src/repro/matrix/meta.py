"""Matrix metadata: shape, blocking and size estimation.

The cost model (Section 3.3) reasons about matrices *before* they exist —
``size(v)`` in Eqs. 3-4 is an estimate from dimensions and density.
:class:`MatrixMeta` carries exactly that information and is propagated
through the DAG by shape/sparsity inference, so the optimizer never has to
touch actual blocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.config import DEFAULT_BLOCK_SIZE, ELEMENT_BYTES
from repro.errors import MatrixShapeError


@dataclass(frozen=True)
class MatrixMeta:
    """Shape, blocking and estimated density of one matrix.

    Parameters
    ----------
    rows, cols:
        Element dimensions.
    block_size:
        Side length of square tiles (edge tiles may be ragged).
    density:
        Estimated fraction of non-zero elements in ``[0, 1]``.
    """

    rows: int
    cols: int
    block_size: int = DEFAULT_BLOCK_SIZE
    density: float = 1.0

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise MatrixShapeError(
                f"matrix dimensions must be positive, got {self.rows}x{self.cols}"
            )
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if not 0.0 <= self.density <= 1.0:
            raise ValueError(f"density must be within [0, 1], got {self.density}")

    # -- blocking ------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def block_rows(self) -> int:
        """``I`` (or ``J``/``K``) of the paper: grid height in blocks."""
        return math.ceil(self.rows / self.block_size)

    @property
    def block_cols(self) -> int:
        return math.ceil(self.cols / self.block_size)

    @property
    def block_grid(self) -> tuple[int, int]:
        return (self.block_rows, self.block_cols)

    @property
    def num_blocks(self) -> int:
        return self.block_rows * self.block_cols

    def block_dims(self, bi: int, bj: int) -> tuple[int, int]:
        """Element dimensions of tile ``(bi, bj)`` (ragged at the edges)."""
        if not (0 <= bi < self.block_rows and 0 <= bj < self.block_cols):
            raise IndexError(
                f"block ({bi}, {bj}) outside grid {self.block_grid}"
            )
        height = min(self.block_size, self.rows - bi * self.block_size)
        width = min(self.block_size, self.cols - bj * self.block_size)
        return (height, width)

    def block_row_range(self, bi: int) -> tuple[int, int]:
        """Element row interval ``[start, stop)`` covered by block row *bi*."""
        start = bi * self.block_size
        return (start, min(start + self.block_size, self.rows))

    def block_col_range(self, bj: int) -> tuple[int, int]:
        start = bj * self.block_size
        return (start, min(start + self.block_size, self.cols))

    # -- size estimation -------------------------------------------------------

    @property
    def num_elements(self) -> int:
        return self.rows * self.cols

    @property
    def estimated_nnz(self) -> int:
        return int(round(self.num_elements * self.density))

    @property
    def estimated_bytes(self) -> int:
        """Estimated storage, sparse-aware: the cost model's ``size(v)``.

        Dense matrices cost 8 bytes per element.  Sparse ones cost roughly
        12 bytes per stored non-zero (CSR value + column index), matching
        :meth:`repro.blocks.Block.nbytes`.
        """
        if self.density >= 0.5:
            return self.num_elements * ELEMENT_BYTES
        return max(self.estimated_nnz, 1) * 12

    # -- derived metas ----------------------------------------------------------

    def transposed(self) -> "MatrixMeta":
        return replace(self, rows=self.cols, cols=self.rows)

    def with_density(self, density: float) -> "MatrixMeta":
        return replace(self, density=density)

    def matmul_meta(self, other: "MatrixMeta") -> "MatrixMeta":
        """Meta of ``self @ other`` with a standard density estimate.

        Uses the independent-placement estimate
        ``1 - (1 - dA*dB)^K`` for the chance an output cell is non-zero.
        """
        if self.cols != other.rows:
            raise MatrixShapeError(
                f"cannot multiply {self.shape} by {other.shape}"
            )
        if self.block_size != other.block_size:
            raise MatrixShapeError(
                "operands use different block sizes: "
                f"{self.block_size} vs {other.block_size}"
            )
        k = self.cols
        pair = self.density * other.density
        out_density = min(1.0, 1.0 - (1.0 - pair) ** k if pair < 1.0 else 1.0)
        return MatrixMeta(
            rows=self.rows,
            cols=other.cols,
            block_size=self.block_size,
            density=out_density,
        )

    def elementwise_meta(self, other: "MatrixMeta", sparse_safe: bool) -> "MatrixMeta":
        """Meta of an element-wise combination of two same-shape matrices."""
        if self.shape != other.shape:
            raise MatrixShapeError(
                f"element-wise operands must match: {self.shape} vs {other.shape}"
            )
        if sparse_safe:
            out_density = min(self.density, other.density)
        else:
            out_density = min(1.0, self.density + other.density)
        return replace(self, density=out_density)
