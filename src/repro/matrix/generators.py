"""Constructors for blocked matrices: conversions and random generators.

Synthetic matrices follow the paper's recipe (Section 6.1): "randomly and
uniformly distributed non-zero elements", with densities in ``[0, 1]``.
Generation is per block so even large logical shapes never allocate a full
dense array when sparse.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.blocks.block import Block
from repro.config import DEFAULT_BLOCK_SIZE
from repro.errors import DataError
from repro.matrix.distributed import BlockedMatrix
from repro.matrix.meta import MatrixMeta


def from_numpy(array: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE) -> BlockedMatrix:
    """Split a dense ndarray into a blocked matrix."""
    array = np.atleast_2d(np.asarray(array, dtype=np.float64))
    rows, cols = array.shape
    nnz = int(np.count_nonzero(array))
    meta = MatrixMeta(rows, cols, block_size, density=nnz / (rows * cols) if rows * cols else 0.0)
    result = BlockedMatrix(meta)
    for bi in range(meta.block_rows):
        r0, r1 = meta.block_row_range(bi)
        for bj in range(meta.block_cols):
            c0, c1 = meta.block_col_range(bj)
            tile = array[r0:r1, c0:c1]
            if np.any(tile):
                result.blocks[(bi, bj)] = Block(tile.copy())
    return result


def from_scipy(matrix: sp.spmatrix, block_size: int = DEFAULT_BLOCK_SIZE) -> BlockedMatrix:
    """Split a scipy sparse matrix into a blocked matrix of CSR tiles."""
    csr = sp.csr_matrix(matrix, dtype=np.float64)
    rows, cols = csr.shape
    density = csr.nnz / (rows * cols) if rows * cols else 0.0
    meta = MatrixMeta(rows, cols, block_size, density=density)
    result = BlockedMatrix(meta)
    coo = csr.tocoo()
    block_of_row = coo.row // block_size
    block_of_col = coo.col // block_size
    order = np.lexsort((block_of_col, block_of_row))
    if order.size == 0:
        return result
    r, c, v = coo.row[order], coo.col[order], coo.data[order]
    br, bc = block_of_row[order], block_of_col[order]
    bounds = np.flatnonzero(np.diff(br * meta.block_cols + bc)) + 1
    for chunk_r, chunk_c, chunk_v in zip(
        np.split(r, bounds), np.split(c, bounds), np.split(v, bounds)
    ):
        bi = int(chunk_r[0] // block_size)
        bj = int(chunk_c[0] // block_size)
        height, width = meta.block_dims(bi, bj)
        tile = sp.csr_matrix(
            (chunk_v, (chunk_r - bi * block_size, chunk_c - bj * block_size)),
            shape=(height, width),
        )
        result.blocks[(bi, bj)] = Block(tile)
    return result


def zeros(rows: int, cols: int, block_size: int = DEFAULT_BLOCK_SIZE) -> BlockedMatrix:
    """An all-zero matrix (stores no blocks at all)."""
    return BlockedMatrix(MatrixMeta(rows, cols, block_size, density=0.0))


def ones(rows: int, cols: int, block_size: int = DEFAULT_BLOCK_SIZE) -> BlockedMatrix:
    """An all-ones dense matrix."""
    meta = MatrixMeta(rows, cols, block_size, density=1.0)
    result = BlockedMatrix(meta)
    for bi in range(meta.block_rows):
        for bj in range(meta.block_cols):
            h, w = meta.block_dims(bi, bj)
            result.blocks[(bi, bj)] = Block.full(h, w, 1.0)
    return result


def identity(n: int, block_size: int = DEFAULT_BLOCK_SIZE) -> BlockedMatrix:
    """The n-by-n identity matrix (diagonal blocks only)."""
    meta = MatrixMeta(n, n, block_size, density=1.0 / n)
    result = BlockedMatrix(meta)
    for bi in range(meta.block_rows):
        h, w = meta.block_dims(bi, bi)
        result.blocks[(bi, bi)] = Block(sp.eye(h, w, format="csr"))
    return result


def rand_dense(
    rows: int,
    cols: int,
    block_size: int = DEFAULT_BLOCK_SIZE,
    seed: int = 0,
    low: float = 0.0,
    high: float = 1.0,
) -> BlockedMatrix:
    """Uniform random dense matrix, reproducible per (seed, block)."""
    if high <= low:
        raise DataError(f"invalid range [{low}, {high})")
    meta = MatrixMeta(rows, cols, block_size, density=1.0)
    result = BlockedMatrix(meta)
    root = np.random.default_rng(seed)
    seeds = root.spawn(meta.block_rows * meta.block_cols)
    for bi in range(meta.block_rows):
        for bj in range(meta.block_cols):
            rng = seeds[bi * meta.block_cols + bj]
            h, w = meta.block_dims(bi, bj)
            result.blocks[(bi, bj)] = Block(rng.uniform(low, high, size=(h, w)))
    return result


def rand_sparse(
    rows: int,
    cols: int,
    density: float,
    block_size: int = DEFAULT_BLOCK_SIZE,
    seed: int = 0,
    low: float = 0.1,
    high: float = 1.0,
) -> BlockedMatrix:
    """Uniform random sparse matrix with the given global density.

    Non-zero positions are i.i.d. uniform as in the paper's synthetic data.
    Values are uniform in ``[low, high)`` and never exactly zero, so the
    realised density matches the sampled pattern.
    """
    if not 0.0 <= density <= 1.0:
        raise DataError(f"density must be within [0, 1], got {density}")
    if high <= low:
        raise DataError(f"invalid range [{low}, {high})")
    if density >= 0.5:
        dense = rand_dense(rows, cols, block_size, seed, low, high)
        if density >= 1.0:
            return dense
        # knock out elements uniformly to hit the target density
        rng = np.random.default_rng(seed + 1)
        for key in dense.block_keys():
            block = dense.blocks[key].to_numpy()
            mask = rng.random(block.shape) < density
            dense.blocks[key] = Block(block * mask)
        dense.meta = dense.refreshed_meta()
        return dense

    meta = MatrixMeta(rows, cols, block_size, density=density)
    result = BlockedMatrix(meta)
    root = np.random.default_rng(seed)
    seeds = root.spawn(meta.block_rows * meta.block_cols)
    for bi in range(meta.block_rows):
        for bj in range(meta.block_cols):
            rng = seeds[bi * meta.block_cols + bj]
            h, w = meta.block_dims(bi, bj)
            nnz = rng.binomial(h * w, density)
            if nnz == 0:
                continue
            flat = rng.choice(h * w, size=nnz, replace=False)
            values = rng.uniform(low, high, size=nnz)
            tile = sp.csr_matrix(
                (values, (flat // w, flat % w)), shape=(h, w)
            )
            result.blocks[(bi, bj)] = Block(tile)
    return result
