"""Blocked matrix layer: metadata, the block grid, generators and IO.

A :class:`~repro.matrix.distributed.BlockedMatrix` is the logical matrix the
engine computes on — a grid of :class:`~repro.blocks.Block` tiles keyed by
``(block_row, block_col)``, with absent keys meaning all-zero tiles (this is
how very sparse matrices stay cheap).  On the simulated cluster each tile is
one record, exactly like the paper's RDD records keyed by block indices.
"""

from repro.matrix.meta import MatrixMeta
from repro.matrix.distributed import BlockedMatrix
from repro.matrix.partitioner import (
    ColumnPartitioner,
    GridPartitioner,
    Partitioner,
    RowPartitioner,
)
from repro.matrix.generators import (
    from_numpy,
    from_scipy,
    identity,
    ones,
    rand_dense,
    rand_sparse,
    zeros,
)

__all__ = [
    "MatrixMeta",
    "BlockedMatrix",
    "Partitioner",
    "RowPartitioner",
    "ColumnPartitioner",
    "GridPartitioner",
    "from_numpy",
    "from_scipy",
    "identity",
    "ones",
    "zeros",
    "rand_dense",
    "rand_sparse",
]
