"""Block-store IO.

The paper stores matrices on HDFS as parquet partitions.  Two formats are
provided here:

* **single-file** (:func:`save_matrix` / :func:`load_matrix`) — one
  compressed ``.npz`` archive holding a JSON header plus one entry group per
  stored block; convenient for small matrices and tests;
* **directory** (:func:`save_matrix_dir` / :func:`load_matrix_dir`) — a
  directory with a ``manifest.json`` and one ``.npz`` file per *block-row
  partition*, mirroring the HDFS split layout a distributed reader would
  consume partition-by-partition (and what the engine's ``input_split_bytes``
  partition counting models).

Round-tripping is exact in both formats, including each tile's dense/sparse
representation.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.blocks.block import Block
from repro.errors import DataError
from repro.matrix.distributed import BlockedMatrix
from repro.matrix.meta import MatrixMeta

_FORMAT_VERSION = 1

PathLike = Union[str, Path]


def save_matrix(matrix: BlockedMatrix, path: PathLike) -> None:
    """Write *matrix* to ``path`` (a ``.npz`` file, created or overwritten)."""
    header = {
        "version": _FORMAT_VERSION,
        "rows": matrix.meta.rows,
        "cols": matrix.meta.cols,
        "block_size": matrix.meta.block_size,
        "density": matrix.meta.density,
        "blocks": [
            {
                "key": list(key),
                "sparse": block.is_sparse,
            }
            for key, block in matrix.iter_blocks()
        ],
    }
    arrays: dict[str, np.ndarray] = {
        "__header__": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8)
    }
    for key, block in matrix.iter_blocks():
        prefix = f"b_{key[0]}_{key[1]}"
        if block.is_sparse:
            csr = block.data
            arrays[f"{prefix}_data"] = csr.data
            arrays[f"{prefix}_indices"] = csr.indices
            arrays[f"{prefix}_indptr"] = csr.indptr
        else:
            arrays[f"{prefix}_dense"] = block.data
    np.savez_compressed(Path(path), **arrays)


def save_matrix_dir(
    matrix: BlockedMatrix, path: PathLike, rows_per_partition: int = 4
) -> None:
    """Write *matrix* as a partitioned directory store.

    ``rows_per_partition`` block-rows go into each ``part-NNNNN.npz``; a
    ``manifest.json`` records the matrix metadata and the partition list.
    An existing store at *path* is replaced atomically enough for tests
    (removed, then rewritten).
    """
    if rows_per_partition <= 0:
        raise DataError("rows_per_partition must be positive")
    path = Path(path)
    if path.exists():
        if not (path / "manifest.json").exists():
            raise DataError(
                f"{path} exists and is not a block store; refusing to replace"
            )
        shutil.rmtree(path)
    path.mkdir(parents=True)

    grid_rows = matrix.meta.block_rows
    partitions = []
    for index, start in enumerate(range(0, grid_rows, rows_per_partition)):
        stop = min(start + rows_per_partition, grid_rows)
        name = f"part-{index:05d}.npz"
        piece = matrix.block_slice((start, stop), (0, matrix.meta.block_cols))
        save_matrix(piece, path / name)
        partitions.append({
            "file": name,
            "block_row_start": start,
            "block_row_stop": stop,
            "bytes": piece.nbytes,
        })
    manifest = {
        "version": _FORMAT_VERSION,
        "rows": matrix.meta.rows,
        "cols": matrix.meta.cols,
        "block_size": matrix.meta.block_size,
        "density": matrix.meta.density,
        "partitions": partitions,
    }
    (path / "manifest.json").write_text(json.dumps(manifest, indent=2))


def load_matrix_dir(path: PathLike) -> BlockedMatrix:
    """Read a matrix previously written by :func:`save_matrix_dir`."""
    path = Path(path)
    manifest_path = path / "manifest.json"
    if not manifest_path.exists():
        raise DataError(f"no block-store manifest at {path}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("version") != _FORMAT_VERSION:
        raise DataError(
            f"unsupported block store version {manifest.get('version')!r}"
        )
    meta = MatrixMeta(
        rows=int(manifest["rows"]),
        cols=int(manifest["cols"]),
        block_size=int(manifest["block_size"]),
        density=float(manifest["density"]),
    )
    result = BlockedMatrix(meta)
    for entry in manifest["partitions"]:
        piece = load_matrix(path / entry["file"])
        offset = int(entry["block_row_start"])
        for (bi, bj), block in piece.iter_blocks():
            result.set_block(bi + offset, bj, block)
    return result


def load_matrix(path: PathLike) -> BlockedMatrix:
    """Read a matrix previously written by :func:`save_matrix`."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"no such matrix file: {path}")
    with np.load(path) as archive:
        if "__header__" not in archive:
            raise DataError(f"{path} is not a repro block store (missing header)")
        header = json.loads(bytes(archive["__header__"]).decode("utf-8"))
        if header.get("version") != _FORMAT_VERSION:
            raise DataError(
                f"unsupported block store version {header.get('version')!r}"
            )
        meta = MatrixMeta(
            rows=int(header["rows"]),
            cols=int(header["cols"]),
            block_size=int(header["block_size"]),
            density=float(header["density"]),
        )
        result = BlockedMatrix(meta)
        for entry in header["blocks"]:
            bi, bj = (int(x) for x in entry["key"])
            prefix = f"b_{bi}_{bj}"
            height, width = meta.block_dims(bi, bj)
            if entry["sparse"]:
                tile = sp.csr_matrix(
                    (
                        archive[f"{prefix}_data"],
                        archive[f"{prefix}_indices"],
                        archive[f"{prefix}_indptr"],
                    ),
                    shape=(height, width),
                )
                result.blocks[(bi, bj)] = Block(tile)
            else:
                result.blocks[(bi, bj)] = Block(archive[f"{prefix}_dense"])
    return result
