"""The blocked matrix: a grid of dense/sparse tiles.

``BlockedMatrix`` mirrors the paper's representation of a matrix as an RDD of
``((i, j), block)`` records.  Keys missing from :attr:`BlockedMatrix.blocks`
denote all-zero tiles, so a 0.1%-dense rating matrix does not allocate its
empty regions — this is also what drives the paper's observation that a very
sparse ``X`` repartitions into few partitions (Section 6.2, overall analysis).
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

import numpy as np
import scipy.sparse as sp

from repro.blocks.block import Block
from repro.errors import BlockLayoutError, MatrixShapeError
from repro.matrix.meta import MatrixMeta

BlockKey = Tuple[int, int]


class BlockedMatrix:
    """A matrix stored as a grid of blocks.

    Parameters
    ----------
    meta:
        Shape/blocking metadata.
    blocks:
        Mapping from ``(block_row, block_col)`` to :class:`Block`.  Missing
        keys are implicit zero tiles.
    """

    __slots__ = ("meta", "blocks", "version")

    def __init__(self, meta: MatrixMeta, blocks: Mapping[BlockKey, Block] | None = None):
        self.meta = meta
        self.blocks: Dict[BlockKey, Block] = {}
        #: Mutation counter; ``set_block`` bumps it so slice caches keyed on
        #: (identity, version) can never serve slabs of replaced content.
        self.version = 0
        if blocks:
            for key, block in blocks.items():
                self._validate_block(key, block)
                self.blocks[key] = block

    def _validate_block(self, key: BlockKey, block: Block) -> None:
        bi, bj = key
        expected = self.meta.block_dims(bi, bj)
        if block.shape != expected:
            raise BlockLayoutError(
                f"block {key} has shape {block.shape}, expected {expected} "
                f"for a {self.meta.rows}x{self.meta.cols} matrix with block "
                f"size {self.meta.block_size}"
            )

    # -- basic introspection ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self.meta.shape

    @property
    def block_size(self) -> int:
        return self.meta.block_size

    @property
    def block_grid(self) -> tuple[int, int]:
        return self.meta.block_grid

    @property
    def nnz(self) -> int:
        """Exact stored non-zero count."""
        return sum(block.nnz for block in self.blocks.values())

    @property
    def density(self) -> float:
        return self.nnz / self.meta.num_elements

    @property
    def nbytes(self) -> int:
        """Actual stored bytes across all tiles."""
        return sum(block.nbytes for block in self.blocks.values())

    @property
    def num_stored_blocks(self) -> int:
        return len(self.blocks)

    def refreshed_meta(self) -> MatrixMeta:
        """Meta with density recomputed from the actual blocks."""
        return self.meta.with_density(self.density)

    # -- block access ------------------------------------------------------------

    def get_block(self, bi: int, bj: int) -> Block:
        """Tile ``(bi, bj)``, materializing an implicit zero tile if absent."""
        block = self.blocks.get((bi, bj))
        if block is not None:
            return block
        rows, cols = self.meta.block_dims(bi, bj)
        return Block.zeros(rows, cols, sparse=True)

    def set_block(self, bi: int, bj: int, block: Block) -> None:
        self._validate_block((bi, bj), block)
        self.blocks[(bi, bj)] = block
        self.version += 1

    def iter_blocks(self) -> Iterator[tuple[BlockKey, Block]]:
        """Iterate stored (non-zero) tiles in key order."""
        for key in sorted(self.blocks):
            yield key, self.blocks[key]

    def block_keys(self) -> list[BlockKey]:
        return sorted(self.blocks)

    # -- structural operations -----------------------------------------------------

    def transpose(self) -> "BlockedMatrix":
        """Logical transpose: swap grid axes and transpose every tile."""
        result = BlockedMatrix(self.meta.transposed())
        for (bi, bj), block in self.blocks.items():
            result.blocks[(bj, bi)] = block.transpose()
        return result

    def block_slice(
        self,
        row_blocks: tuple[int, int],
        col_blocks: tuple[int, int],
    ) -> "BlockedMatrix":
        """Sub-matrix covering block rows/cols ``[start, stop)``.

        Used when cuboid partitioning assigns a contiguous slab of blocks to a
        task; block indices in the result are re-based to zero.
        """
        r0, r1 = row_blocks
        c0, c1 = col_blocks
        grid_rows, grid_cols = self.meta.block_grid
        if not (0 <= r0 < r1 <= grid_rows and 0 <= c0 < c1 <= grid_cols):
            raise BlockLayoutError(
                f"slice rows {row_blocks} cols {col_blocks} outside grid "
                f"{self.meta.block_grid}"
            )
        row_start = r0 * self.block_size
        row_stop = min(r1 * self.block_size, self.meta.rows)
        col_start = c0 * self.block_size
        col_stop = min(c1 * self.block_size, self.meta.cols)
        meta = MatrixMeta(
            rows=row_stop - row_start,
            cols=col_stop - col_start,
            block_size=self.block_size,
            density=self.meta.density,
        )
        result = BlockedMatrix(meta)
        for (bi, bj), block in self.blocks.items():
            if r0 <= bi < r1 and c0 <= bj < c1:
                result.blocks[(bi - r0, bj - c0)] = block
        return result

    # -- conversion ------------------------------------------------------------------

    def to_numpy(self) -> np.ndarray:
        """Materialize the full matrix as a dense ndarray (tests/small data)."""
        out = np.zeros(self.meta.shape)
        for (bi, bj), block in self.blocks.items():
            r0, r1 = self.meta.block_row_range(bi)
            c0, c1 = self.meta.block_col_range(bj)
            out[r0:r1, c0:c1] = block.to_numpy()
        return out

    def to_scipy(self) -> sp.csr_matrix:
        """Materialize as one CSR matrix."""
        parts = []
        for (bi, bj), block in self.iter_blocks():
            r0, _ = self.meta.block_row_range(bi)
            c0, _ = self.meta.block_col_range(bj)
            csr = block.to_sparse().data.tocoo()
            parts.append((csr.row + r0, csr.col + c0, csr.data))
        if not parts:
            return sp.csr_matrix(self.meta.shape)
        rows = np.concatenate([p[0] for p in parts])
        cols = np.concatenate([p[1] for p in parts])
        data = np.concatenate([p[2] for p in parts])
        return sp.csr_matrix((data, (rows, cols)), shape=self.meta.shape)

    def as_single_block(self) -> Block:
        """Consolidate into one :class:`Block` (a task-local working tile).

        Chooses sparse or dense representation by whichever is smaller, so
        downstream kernels see the same layout a task would actually hold.
        """
        rows, cols = self.meta.shape
        dense_bytes = rows * cols * 8
        if not self.blocks:
            return Block.zeros(rows, cols, sparse=True)
        if self.nbytes < dense_bytes:
            return Block(self.to_scipy())
        return Block(self.to_numpy())

    # -- comparison --------------------------------------------------------------------

    def allclose(self, other: "BlockedMatrix", rtol: float = 1e-8, atol: float = 1e-8) -> bool:
        """Tile-wise comparison; a key missing on either side is a zero tile.

        Never densifies the whole matrix, so comparing two large sparse
        matrices costs memory proportional to one block, not ``rows*cols``.
        Falls back to a dense compare when block layouts differ.
        """
        if self.shape != other.shape:
            return False
        if self.block_size != other.block_size:
            return np.allclose(self.to_numpy(), other.to_numpy(), rtol=rtol, atol=atol)
        for key in self.blocks.keys() | other.blocks.keys():
            mine = self.blocks.get(key)
            theirs = other.blocks.get(key)
            if mine is None:
                left = np.zeros(self.meta.block_dims(*key))
            else:
                left = mine.to_numpy()
            if theirs is None:
                right = np.zeros(other.meta.block_dims(*key))
            else:
                right = theirs.to_numpy()
            if not np.allclose(left, right, rtol=rtol, atol=atol):
                return False
        return True

    def __repr__(self) -> str:
        rows, cols = self.shape
        return (
            f"BlockedMatrix({rows}x{cols}, block_size={self.block_size}, "
            f"stored_blocks={len(self.blocks)}/{self.meta.num_blocks}, "
            f"nnz={self.nnz})"
        )


def vstack_metas(top: MatrixMeta, bottom: MatrixMeta) -> MatrixMeta:
    """Meta of vertically concatenated matrices (used by dataset builders)."""
    if top.cols != bottom.cols:
        raise MatrixShapeError("vstack operands must share column count")
    if top.block_size != bottom.block_size:
        raise MatrixShapeError("vstack operands must share block size")
    total = top.rows + bottom.rows
    density = (top.estimated_nnz + bottom.estimated_nnz) / (total * top.cols)
    return MatrixMeta(total, top.cols, top.block_size, density)
