"""Single-node numpy reference interpreter.

Evaluates any DAG node against dense numpy bindings.  Every distributed
execution path in the library is tested against this interpreter, so fusion
never changes results — only cost.  The environment may bind *any* node id,
not just inputs, which lets partial fusion plans be evaluated with their
frontier (the outputs of other plans) pre-bound.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Union

import numpy as np

from repro.blocks.kernels import AGGREGATION_KERNELS, BINARY_KERNELS, UNARY_KERNELS
from repro.errors import PlanError
from repro.lang.dag import (
    AggNode,
    BinaryNode,
    InputNode,
    MatMulNode,
    Node,
    TransposeNode,
    UnaryNode,
)

Bindings = Mapping[Union[str, int], np.ndarray]


def _lookup(node: Node, env: Bindings) -> np.ndarray | None:
    """A binding for *node*: by node id first, then by input name."""
    if node.node_id in env:
        return np.asarray(env[node.node_id], dtype=np.float64)
    if isinstance(node, InputNode) and node.name in env:
        return np.asarray(env[node.name], dtype=np.float64)
    return None


def evaluate(root: Node, env: Bindings) -> np.ndarray:
    """Evaluate *root* bottom-up with memoization.

    Parameters
    ----------
    root:
        Any DAG node.
    env:
        Bindings from input name (or node id for arbitrary frontier nodes)
        to dense arrays.
    """
    memo: Dict[int, np.ndarray] = {}

    def rec(node: Node) -> np.ndarray:
        cached = memo.get(node.node_id)
        if cached is not None:
            return cached
        bound = _lookup(node, env)
        if bound is not None:
            memo[node.node_id] = bound
            return bound
        result = _apply(node, [rec(child) for child in node.inputs])
        memo[node.node_id] = result
        return result

    return rec(root)


def evaluate_many(roots: Sequence[Node], env: Bindings) -> list[np.ndarray]:
    """Evaluate several roots sharing one memo table (multi-output plans)."""
    memo: Dict[int, np.ndarray] = {}

    def rec(node: Node) -> np.ndarray:
        cached = memo.get(node.node_id)
        if cached is not None:
            return cached
        bound = _lookup(node, env)
        if bound is not None:
            memo[node.node_id] = bound
            return bound
        result = _apply(node, [rec(child) for child in node.inputs])
        memo[node.node_id] = result
        return result

    return [rec(root) for root in roots]


def _apply(node: Node, args: list[np.ndarray]) -> np.ndarray:
    """Apply one operator to already-evaluated dense operands."""
    if isinstance(node, InputNode):
        raise PlanError(f"input {node.name!r} has no binding")
    if isinstance(node, UnaryNode):
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            return UNARY_KERNELS[node.kernel].fn(args[0])
    if isinstance(node, BinaryNode):
        fn = BINARY_KERNELS[node.kernel].fn
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            if node.has_scalar:
                if node.scalar_on_left:
                    return fn(node.scalar, args[0])
                return fn(args[0], node.scalar)
            return fn(args[0], args[1])
    if isinstance(node, AggNode):
        return AGGREGATION_KERNELS[node.kernel].fn(args[0])
    if isinstance(node, MatMulNode):
        return args[0] @ args[1]
    if isinstance(node, TransposeNode):
        return args[0].T
    raise PlanError(f"cannot evaluate node type {type(node).__name__}")
