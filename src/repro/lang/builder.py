"""The user-facing expression API.

``Expr`` wraps a DAG node and overloads Python operators so queries read like
the paper's formulas::

    X = matrix_input("X", rows, cols, density=0.001)
    U = matrix_input("U", rows, k)
    V = matrix_input("V", cols, k)
    loss = sum_of(nnz_mask(X) * sq(X - U @ V.T))      # Figure 1(a)

Every helper returns a new ``Expr``; nothing is computed until an engine
executes the DAG.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.config import DEFAULT_BLOCK_SIZE
from repro.lang.dag import (
    AggNode,
    BinaryNode,
    InputNode,
    MatMulNode,
    Node,
    TransposeNode,
    UnaryNode,
)
from repro.matrix.meta import MatrixMeta

Scalar = Union[int, float]
Operand = Union["Expr", Scalar]


class Expr:
    """A lazily-built matrix expression (wrapper around a DAG node)."""

    __slots__ = ("node",)

    def __init__(self, node: Node):
        self.node = node

    # -- structure ----------------------------------------------------------

    @property
    def meta(self) -> MatrixMeta:
        return self.node.meta

    @property
    def shape(self) -> tuple[int, int]:
        return self.node.meta.shape

    @property
    def T(self) -> "Expr":
        """Transpose (the reorganization operator ``r(T)``)."""
        return Expr(TransposeNode(self.node))

    # -- binary element-wise --------------------------------------------------

    def _binary(self, kernel: str, other: Operand, reflected: bool = False) -> "Expr":
        if isinstance(other, Expr):
            left, right = (other.node, self.node) if reflected else (self.node, other.node)
            return Expr(BinaryNode(kernel, left, right))
        scalar = float(other)
        if reflected:
            return Expr(BinaryNode(kernel, None, self.node, scalar=scalar))
        return Expr(BinaryNode(kernel, self.node, None, scalar=scalar))

    def __add__(self, other: Operand) -> "Expr":
        return self._binary("add", other)

    def __radd__(self, other: Scalar) -> "Expr":
        return self._binary("add", other, reflected=True)

    def __sub__(self, other: Operand) -> "Expr":
        return self._binary("sub", other)

    def __rsub__(self, other: Scalar) -> "Expr":
        return self._binary("sub", other, reflected=True)

    def __mul__(self, other: Operand) -> "Expr":
        return self._binary("mul", other)

    def __rmul__(self, other: Scalar) -> "Expr":
        return self._binary("mul", other, reflected=True)

    def __truediv__(self, other: Operand) -> "Expr":
        return self._binary("div", other)

    def __rtruediv__(self, other: Scalar) -> "Expr":
        return self._binary("div", other, reflected=True)

    def __pow__(self, other: Scalar) -> "Expr":
        if other == 2:
            return Expr(UnaryNode("sq", self.node))
        return self._binary("pow", other)

    def __ne__(self, other: Operand) -> "Expr":  # type: ignore[override]
        return self._binary("neq", other)

    def __gt__(self, other: Operand) -> "Expr":
        return self._binary("gt", other)

    def __lt__(self, other: Operand) -> "Expr":
        return self._binary("lt", other)

    def __neg__(self) -> "Expr":
        return Expr(UnaryNode("neg", self.node))

    def minimum(self, other: Operand) -> "Expr":
        return self._binary("min", other)

    def maximum(self, other: Operand) -> "Expr":
        return self._binary("max", other)

    # -- matrix multiplication ---------------------------------------------------

    def __matmul__(self, other: "Expr") -> "Expr":
        if not isinstance(other, Expr):
            raise TypeError("matrix multiplication needs a matrix operand")
        return Expr(MatMulNode(self.node, other.node))

    # -- hashability (Expr overrides __ne__, so define identity hash) ------------

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"Expr({self.node!r})"


def matrix_input(
    name: str,
    rows: int,
    cols: int,
    block_size: int = DEFAULT_BLOCK_SIZE,
    density: float = 1.0,
    meta: Optional[MatrixMeta] = None,
) -> Expr:
    """Declare a named input matrix leaf.

    Either pass dimensions (plus optional density), or a full ``meta``.
    """
    if meta is None:
        meta = MatrixMeta(rows, cols, block_size, density)
    return Expr(InputNode(name, meta))


# -- unary helpers ------------------------------------------------------------


def _unary(kernel: str, x: Expr) -> Expr:
    return Expr(UnaryNode(kernel, x.node))


def log(x: Expr) -> Expr:
    """Element-wise natural logarithm ``u(log)``."""
    return _unary("log", x)


def exp(x: Expr) -> Expr:
    return _unary("exp", x)


def sigmoid(x: Expr) -> Expr:
    return _unary("sigmoid", x)


def sq(x: Expr) -> Expr:
    """Element-wise square ``u(^2)``."""
    return _unary("sq", x)


def sqrt(x: Expr) -> Expr:
    return _unary("sqrt", x)


def pow_of(x: Expr, exponent: Scalar) -> Expr:
    return x ** exponent


def nnz_mask(x: Expr) -> Expr:
    """The paper's ``(X != 0)`` indicator matrix."""
    return x != 0.0


# -- aggregations ---------------------------------------------------------------


def _agg(kernel: str, x: Expr) -> Expr:
    return Expr(AggNode(kernel, x.node))


def sum_of(x: Expr) -> Expr:
    """Full-matrix sum ``ua(sum)`` (1x1 result)."""
    return _agg("sum", x)


def rowsum(x: Expr) -> Expr:
    """Per-row sums ``ua(rowSum)`` (Ix1 result)."""
    return _agg("rowSum", x)


def colsum(x: Expr) -> Expr:
    """Per-column sums ``ua(colSum)`` (1xJ result)."""
    return _agg("colSum", x)


def min_of(x: Expr) -> Expr:
    return _agg("min", x)


def max_of(x: Expr) -> Expr:
    return _agg("max", x)
