"""Algebraic plan rewrites applied before fusion planning.

A small, conservative set (the paper inherits SystemML's rewrites; we keep the
ones that matter for its queries):

* double transpose elimination: ``(A^T)^T -> A``
* transpose-of-matmul distribution is *not* applied (it changes the MM-space
  orientation the planner reasons about); only identity-level cleanups run.
* scalar chain folding: ``(A + c1) + c2 -> A + (c1 + c2)`` for associative
  kernels with scalars on the same side.
"""

from __future__ import annotations

from typing import Dict

from repro.lang.dag import (
    AggNode,
    BinaryNode,
    DAG,
    InputNode,
    MatMulNode,
    Node,
    TransposeNode,
    UnaryNode,
)

_FOLDABLE = {"add": lambda a, b: a + b, "mul": lambda a, b: a * b}


def refresh_leaf_metas(dag: DAG, metas) -> DAG:
    """Rebuild *dag* with leaf metadata replaced by measured metadata.

    Queries declare input densities up front; once the actual matrices are
    bound, their measured density (and exact shape) can differ from the
    declaration.  This rewrite swaps each :class:`InputNode`'s meta for the
    measured one and re-derives every downstream estimate, which sharpens
    the optimizer's ``size(v)`` terms (Eqs. 3-4) before planning.

    ``metas`` maps input names to :class:`~repro.matrix.meta.MatrixMeta`;
    unknown names keep their declared meta.
    """
    rebuilt: Dict[int, Node] = {}

    def rebuild(node: Node) -> Node:
        cached = rebuilt.get(node.node_id)
        if cached is not None:
            return cached
        if isinstance(node, InputNode):
            meta = metas.get(node.name)
            result: Node = InputNode(node.name, meta) if meta is not None else node
        else:
            children = [rebuild(c) for c in node.inputs]
            result = _rewrite(node, children)
        rebuilt[node.node_id] = result
        return result

    return DAG([rebuild(root) for root in dag.roots])


def simplify_dag(dag: DAG) -> DAG:
    """Return an equivalent DAG with the standard cleanups applied."""
    rebuilt: Dict[int, Node] = {}

    def rebuild(node: Node) -> Node:
        cached = rebuilt.get(node.node_id)
        if cached is not None:
            return cached
        children = [rebuild(c) for c in node.inputs]
        result = _rewrite(node, children)
        rebuilt[node.node_id] = result
        return result

    return DAG([rebuild(root) for root in dag.roots])


def _rewrite(node: Node, children: list[Node]) -> Node:
    if isinstance(node, InputNode):
        return node
    if isinstance(node, TransposeNode):
        child = children[0]
        if isinstance(child, TransposeNode):
            return child.inputs[0]  # (A^T)^T -> A
        return TransposeNode(child)
    if isinstance(node, UnaryNode):
        return UnaryNode(node.kernel, children[0])
    if isinstance(node, BinaryNode):
        if node.has_scalar:
            child = children[0]
            folded = _fold_scalar_chain(node, child)
            if folded is not None:
                return folded
            left = None if node.scalar_on_left else child
            right = child if node.scalar_on_left else None
            return BinaryNode(node.kernel, left, right, scalar=node.scalar)
        return BinaryNode(node.kernel, children[0], children[1])
    if isinstance(node, AggNode):
        return AggNode(node.kernel, children[0])
    if isinstance(node, MatMulNode):
        return MatMulNode(children[0], children[1])
    raise TypeError(f"unknown node type {type(node).__name__}")


def _fold_scalar_chain(node: BinaryNode, child: Node) -> Node | None:
    """Fold ``(A op c1) op c2`` for associative-commutative scalar ops."""
    fold = _FOLDABLE.get(node.kernel)
    if fold is None:
        return None
    if not (
        isinstance(child, BinaryNode)
        and child.has_scalar
        and child.kernel == node.kernel
    ):
        return None
    inner = child.inputs[0]
    merged = fold(child.scalar, node.scalar)
    return BinaryNode(node.kernel, inner, None, scalar=merged)
