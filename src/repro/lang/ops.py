"""Operator taxonomy: the five basic matrix operator types of Section 2.1."""

from __future__ import annotations

import enum


class OpType(enum.Enum):
    """The paper's basic matrix operator types, plus the leaf input type.

    * ``UNARY`` — element-wise function of one matrix (``log``, ``sq``, ...).
    * ``BINARY`` — element-wise function of two matrices, or a matrix and a
      scalar (``*``, ``+``, ``-``, ``/``, ``!=``).
    * ``UNARY_AGG`` — aggregation of one matrix (``sum``, ``rowSum``,
      ``colSum``); output dimensions differ from the input's.
    * ``MATMUL`` — the binary aggregation operator ``ba(x)``: arithmetic plus
      aggregation over the common dimension ``K``.
    * ``TRANSPOSE`` — the reorganization operator ``r(T)``.
    * ``INPUT`` — a leaf: a named input matrix.
    """

    INPUT = "input"
    UNARY = "unary"
    BINARY = "binary"
    UNARY_AGG = "unary_agg"
    MATMUL = "matmul"
    TRANSPOSE = "transpose"


#: Operator types that keep the element grid aligned with their input —
#: everything except binary aggregation (matmul) lives "along the same
#: dimension" in the paper's 3-D model space (Figure 5(a)).
DIMENSION_PRESERVING = frozenset(
    {OpType.UNARY, OpType.BINARY}
)
