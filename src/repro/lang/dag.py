"""DAG node types and the query-plan container.

A query plan is a DAG whose leaves are input matrices and whose inner vertices
are matrix operators (Section 2.1).  Nodes are immutable once built; shape and
density metadata (:class:`~repro.matrix.meta.MatrixMeta`) is inferred at
construction so the optimizer can cost plans without touching data.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional, Sequence

from repro.blocks.kernels import (
    AGGREGATION_KERNELS,
    BINARY_KERNELS,
    UNARY_KERNELS,
)
from repro.errors import PlanError
from repro.lang.ops import OpType
from repro.matrix.meta import MatrixMeta

_node_counter = itertools.count()


class Node:
    """Base class of all DAG vertices.

    Attributes
    ----------
    node_id:
        Process-unique integer identifier (stable ordering key).
    op_type:
        The operator taxonomy entry.
    inputs:
        Child nodes (operands), in operand order.
    meta:
        Inferred output shape/density metadata.
    """

    __slots__ = ("node_id", "op_type", "inputs", "meta")

    def __init__(self, op_type: OpType, inputs: Sequence["Node"], meta: MatrixMeta):
        self.node_id = next(_node_counter)
        self.op_type = op_type
        self.inputs = tuple(inputs)
        self.meta = meta

    @property
    def is_operator(self) -> bool:
        return self.op_type is not OpType.INPUT

    def label(self) -> str:
        """Short human-readable label used in plan dumps."""
        raise NotImplementedError

    def estimated_flops(self) -> int:
        """``numOp(v)`` of Eq. 5: estimated floating point operations."""
        return 0

    def __repr__(self) -> str:
        rows, cols = self.meta.shape
        return f"{self.label()}#{self.node_id}[{rows}x{cols}]"

    def __hash__(self) -> int:
        return self.node_id

    def __eq__(self, other: object) -> bool:
        return self is other


class InputNode(Node):
    """A leaf: a named input matrix."""

    __slots__ = ("name",)

    def __init__(self, name: str, meta: MatrixMeta):
        super().__init__(OpType.INPUT, (), meta)
        self.name = name

    def label(self) -> str:
        return self.name


class UnaryNode(Node):
    """Element-wise unary operator ``u(kernel)``."""

    __slots__ = ("kernel",)

    def __init__(self, kernel: str, child: Node):
        spec = UNARY_KERNELS.get(kernel)
        if spec is None:
            raise KeyError(f"unknown unary kernel {kernel!r}")
        density = child.meta.density if spec.zero_preserving else 1.0
        meta = child.meta.with_density(density)
        super().__init__(OpType.UNARY, (child,), meta)
        self.kernel = kernel

    def label(self) -> str:
        return f"u({self.kernel})"

    def estimated_flops(self) -> int:
        child = self.inputs[0]
        if UNARY_KERNELS[self.kernel].zero_preserving and child.meta.density < 0.5:
            return child.meta.estimated_nnz
        return child.meta.num_elements


class BinaryNode(Node):
    """Element-wise binary operator ``b(kernel)``; one side may be a scalar."""

    __slots__ = ("kernel", "scalar", "scalar_on_left")

    def __init__(
        self,
        kernel: str,
        left: Optional[Node],
        right: Optional[Node],
        scalar: Optional[float] = None,
    ):
        spec = BINARY_KERNELS.get(kernel)
        if spec is None:
            raise KeyError(f"unknown binary kernel {kernel!r}")
        if scalar is None:
            if left is None or right is None:
                raise PlanError("matrix-matrix binary needs two matrix operands")
            meta = left.meta.elementwise_meta(right.meta, spec.sparse_safe_left)
            children: tuple[Node, ...] = (left, right)
            scalar_on_left = False
        else:
            operand = left if left is not None else right
            if operand is None:
                raise PlanError("scalar binary needs one matrix operand")
            scalar_on_left = left is None
            children = (operand,)
            meta = self._scalar_meta(kernel, operand.meta, float(scalar), scalar_on_left)
        super().__init__(OpType.BINARY, children, meta)
        self.kernel = kernel
        self.scalar = None if scalar is None else float(scalar)
        self.scalar_on_left = scalar_on_left

    @staticmethod
    def _scalar_meta(
        kernel: str, meta: MatrixMeta, scalar: float, scalar_on_left: bool
    ) -> MatrixMeta:
        zero_preserving = (
            kernel in ("mul", "div", "pow") and not scalar_on_left
        ) or (kernel == "mul" and scalar_on_left)
        if kernel == "neq" and scalar == 0.0 and not scalar_on_left:
            zero_preserving = True
        if zero_preserving:
            return meta
        return meta.with_density(1.0)

    @property
    def has_scalar(self) -> bool:
        return self.scalar is not None

    def label(self) -> str:
        if self.has_scalar:
            side = "s," if self.scalar_on_left else ",s"
            return f"b({self.kernel}:{side}{self.scalar:g})"
        return f"b({self.kernel})"

    def estimated_flops(self) -> int:
        spec = BINARY_KERNELS[self.kernel]
        left = self.inputs[0]
        if spec.sparse_safe_left and left.meta.density < 0.5 and not self.scalar_on_left:
            return left.meta.estimated_nnz
        return self.meta.num_elements


class AggNode(Node):
    """Unary aggregation operator ``ua(kernel)``."""

    __slots__ = ("kernel",)

    def __init__(self, kernel: str, child: Node):
        spec = AGGREGATION_KERNELS.get(kernel)
        if spec is None:
            raise KeyError(f"unknown aggregation kernel {kernel!r}")
        if spec.axis == "all":
            meta = MatrixMeta(1, 1, child.meta.block_size, density=1.0)
        elif spec.axis == "row":
            meta = MatrixMeta(child.meta.rows, 1, child.meta.block_size, density=1.0)
        else:
            meta = MatrixMeta(1, child.meta.cols, child.meta.block_size, density=1.0)
        super().__init__(OpType.UNARY_AGG, (child,), meta)
        self.kernel = kernel

    def label(self) -> str:
        return f"ua({self.kernel})"

    def estimated_flops(self) -> int:
        child = self.inputs[0]
        if child.meta.density < 0.5:
            return child.meta.estimated_nnz
        return child.meta.num_elements


class MatMulNode(Node):
    """Binary aggregation operator ``ba(x)``: matrix multiplication."""

    def __init__(self, left: Node, right: Node):
        meta = left.meta.matmul_meta(right.meta)
        super().__init__(OpType.MATMUL, (left, right), meta)

    def label(self) -> str:
        return "ba(x)"

    @property
    def common_dim(self) -> int:
        """``K``: the aggregated element dimension."""
        return self.inputs[0].meta.cols

    def mm_dims(self) -> tuple[int, int, int]:
        """``(I, J, K)`` in *blocks* — the 3-D model space extents."""
        left, right = self.inputs
        return (
            left.meta.block_rows,
            right.meta.block_cols,
            left.meta.block_cols,
        )

    def estimated_flops(self) -> int:
        left, right = self.inputs
        if left.meta.density < 0.5:
            return 2 * left.meta.estimated_nnz * right.meta.cols
        if right.meta.density < 0.5:
            return 2 * right.meta.estimated_nnz * left.meta.rows
        return 2 * left.meta.rows * left.meta.cols * right.meta.cols


class TransposeNode(Node):
    """Reorganization operator ``r(T)``."""

    def __init__(self, child: Node):
        super().__init__(OpType.TRANSPOSE, (child,), child.meta.transposed())

    def label(self) -> str:
        return "r(T)"

    def estimated_flops(self) -> int:
        # data movement, not arithmetic; charge one op per stored element
        child = self.inputs[0]
        if child.meta.density < 0.5:
            return child.meta.estimated_nnz
        return child.meta.num_elements


class DAG:
    """A query plan: one or more root nodes over shared inputs."""

    def __init__(self, roots: Sequence[Node] | Node):
        if isinstance(roots, Node):
            roots = (roots,)
        if not roots:
            raise PlanError("a DAG needs at least one root")
        self.roots: tuple[Node, ...] = tuple(roots)
        self._topo = self._toposort()
        self._consumers = self._count_consumers()

    # -- traversal -------------------------------------------------------------

    def _toposort(self) -> tuple[Node, ...]:
        order: list[Node] = []
        seen: set[Node] = set()

        def visit(node: Node, stack: set[Node]) -> None:
            if node in seen:
                return
            if node in stack:
                raise PlanError("query plan contains a cycle")
            stack.add(node)
            for child in node.inputs:
                visit(child, stack)
            stack.remove(node)
            seen.add(node)
            order.append(node)

        for root in self.roots:
            visit(root, set())
        return tuple(order)

    def _count_consumers(self) -> dict[Node, int]:
        counts: dict[Node, int] = {node: 0 for node in self._topo}
        for node in self._topo:
            for child in node.inputs:
                counts[child] += 1
        return counts

    def nodes(self) -> tuple[Node, ...]:
        """All nodes in topological order (children before parents)."""
        return self._topo

    def operators(self) -> Iterator[Node]:
        """Operator vertices only (no inputs), topological order."""
        return (n for n in self._topo if n.is_operator)

    def inputs(self) -> tuple[InputNode, ...]:
        return tuple(n for n in self._topo if isinstance(n, InputNode))

    def consumers(self, node: Node) -> int:
        """Number of outgoing edges of *node* within this DAG."""
        try:
            return self._consumers[node]
        except KeyError:
            raise PlanError(f"{node!r} is not part of this DAG") from None

    def parents(self, node: Node) -> tuple[Node, ...]:
        """Nodes consuming *node* directly."""
        return tuple(n for n in self._topo if node in n.inputs)

    def matmul_nodes(self) -> tuple[MatMulNode, ...]:
        return tuple(n for n in self._topo if isinstance(n, MatMulNode))

    # -- validation / display -------------------------------------------------------

    def validate_inputs(self, bindings: Iterable[str]) -> None:
        """Check that every named input has a binding."""
        provided = set(bindings)
        missing = [n.name for n in self.inputs() if n.name not in provided]
        if missing:
            raise PlanError(f"missing input bindings: {sorted(set(missing))}")

    def dump(self) -> str:
        """Multi-line description of the plan (children listed by id)."""
        lines = []
        for node in self._topo:
            deps = ",".join(str(c.node_id) for c in node.inputs)
            rows, cols = node.meta.shape
            lines.append(
                f"#{node.node_id:<4} {node.label():<14} "
                f"[{rows}x{cols} d={node.meta.density:.4f}] <- ({deps})"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._topo)
