"""A small DML-style expression parser.

The paper's FuseME accepts queries written in SystemML's Declarative Machine
Learning language (Section 5).  This module parses the expression subset the
evaluation uses into :class:`~repro.lang.builder.Expr` trees::

    parse_expression(
        "U * (t(V) %*% X) / (t(V) %*% V %*% U)",
        {"X": x_expr, "U": u_expr, "V": v_expr},
    )

Grammar (operators in decreasing precedence)::

    expr     := term (('+' | '-') term)*
    term     := factor (('*' | '/') factor)*
    factor   := matmul ('^' NUMBER)?
    matmul   := unary ('%*%' unary)*
    unary    := '-' unary | atom
    atom     := NUMBER | NAME | NAME '(' expr (',' expr)* ')' | '(' expr ')'

Supported functions: ``t`` (transpose), ``log``, ``exp``, ``sqrt``, ``abs``,
``sigmoid``, ``sum``, ``rowSums``, ``colSums``, ``min``/``max`` (unary
aggregation).
"""

from __future__ import annotations

import re
from typing import Mapping, Union

from repro.errors import PlanError
from repro.lang.builder import Expr
from repro.lang.dag import AggNode, UnaryNode

_TOKEN = re.compile(
    r"\s*(?:(?P<matmul>%\*%)|(?P<number>\d+\.?\d*(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)|(?P<op>[-+*/^(),]))"
)

_UNARY_FUNCTIONS = {
    "t": lambda x: x.T,
    "log": lambda x: Expr(UnaryNode("log", x.node)),
    "exp": lambda x: Expr(UnaryNode("exp", x.node)),
    "sqrt": lambda x: Expr(UnaryNode("sqrt", x.node)),
    "abs": lambda x: Expr(UnaryNode("abs", x.node)),
    "sigmoid": lambda x: Expr(UnaryNode("sigmoid", x.node)),
    "sum": lambda x: Expr(AggNode("sum", x.node)),
    "rowSums": lambda x: Expr(AggNode("rowSum", x.node)),
    "colSums": lambda x: Expr(AggNode("colSum", x.node)),
    "min": lambda x: Expr(AggNode("min", x.node)),
    "max": lambda x: Expr(AggNode("max", x.node)),
}

Value = Union[Expr, float]


class _Parser:
    def __init__(self, text: str, bindings: Mapping[str, Expr]):
        self.text = text
        self.bindings = bindings
        self.tokens = self._tokenize(text)
        self.position = 0

    @staticmethod
    def _tokenize(text: str) -> list[str]:
        tokens = []
        index = 0
        while index < len(text):
            match = _TOKEN.match(text, index)
            if match is None or match.end() == index:
                remainder = text[index:].strip()
                if not remainder:
                    break
                raise PlanError(f"cannot tokenize {remainder[:20]!r}")
            token = match.group("matmul") or match.group("number") or \
                match.group("name") or match.group("op")
            if token is not None:
                tokens.append(token)
            index = match.end()
        return tokens

    # -- token helpers -----------------------------------------------------

    def peek(self) -> str | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def advance(self) -> str:
        token = self.peek()
        if token is None:
            raise PlanError("unexpected end of expression")
        self.position += 1
        return token

    def expect(self, token: str) -> None:
        got = self.advance()
        if got != token:
            raise PlanError(f"expected {token!r}, got {got!r}")

    # -- grammar --------------------------------------------------------------

    def parse(self) -> Expr:
        result = self.expr()
        if self.peek() is not None:
            raise PlanError(f"trailing tokens from {self.peek()!r}")
        if not isinstance(result, Expr):
            raise PlanError("expression reduces to a bare scalar")
        return result

    def expr(self) -> Value:
        left = self.term()
        while self.peek() in ("+", "-"):
            op = self.advance()
            right = self.term()
            left = _apply(op, left, right)
        return left

    def term(self) -> Value:
        left = self.factor()
        while self.peek() in ("*", "/"):
            op = self.advance()
            right = self.factor()
            left = _apply(op, left, right)
        return left

    def factor(self) -> Value:
        base = self.matmul()
        if self.peek() == "^":
            self.advance()
            exponent = self.atom()
            if not isinstance(exponent, float):
                raise PlanError("exponent must be a number")
            if not isinstance(base, Expr):
                return float(base) ** exponent
            return base ** exponent
        return base

    def matmul(self) -> Value:
        left = self.unary()
        while self.peek() == "%*%":
            self.advance()
            right = self.unary()
            if not (isinstance(left, Expr) and isinstance(right, Expr)):
                raise PlanError("%*% needs matrix operands")
            left = left @ right
        return left

    def unary(self) -> Value:
        if self.peek() == "-":
            self.advance()
            value = self.unary()
            if isinstance(value, float):
                return -value
            return -value
        return self.atom()

    def atom(self) -> Value:
        token = self.advance()
        if token == "(":
            value = self.expr()
            self.expect(")")
            return value
        if re.fullmatch(r"\d+\.?\d*(?:[eE][+-]?\d+)?", token):
            return float(token)
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token):
            raise PlanError(f"unexpected token {token!r}")
        if self.peek() == "(":
            return self._call(token)
        binding = self.bindings.get(token)
        if binding is None:
            raise PlanError(f"unbound name {token!r}")
        return binding

    def _call(self, name: str) -> Value:
        fn = _UNARY_FUNCTIONS.get(name)
        if fn is None:
            raise PlanError(f"unknown function {name!r}")
        self.expect("(")
        argument = self.expr()
        self.expect(")")
        if not isinstance(argument, Expr):
            raise PlanError(f"{name}() needs a matrix argument")
        return fn(argument)


def _apply(op: str, left: Value, right: Value) -> Value:
    if isinstance(left, float) and isinstance(right, float):
        return {
            "+": left + right, "-": left - right,
            "*": left * right, "/": left / right,
        }[op]
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    return left / right


def parse_expression(text: str, bindings: Mapping[str, Expr]) -> Expr:
    """Parse a DML-style expression against named input expressions."""
    return _Parser(text, bindings).parse()
