"""Matrix expression language: lazy DAG construction and a local interpreter.

Users (and the workload modules) build queries with an overloaded expression
API — ``X * U / V``, ``X @ V.T``, ``log(E + eps)``, ``sum(E)`` — producing a
DAG of the paper's five basic operator types (Section 2.1): unary, binary,
unary aggregation, binary aggregation (matrix multiplication) and
reorganization (transpose).  The DAG is what fusion plan generators (GEN and
CFG) consume, and the numpy reference interpreter provides single-node ground
truth every distributed execution is checked against in the tests.
"""

from repro.lang.ops import OpType
from repro.lang.dag import (
    DAG,
    AggNode,
    BinaryNode,
    InputNode,
    MatMulNode,
    Node,
    TransposeNode,
    UnaryNode,
)
from repro.lang.builder import (
    Expr,
    colsum,
    exp,
    log,
    matrix_input,
    max_of,
    min_of,
    nnz_mask,
    pow_of,
    rowsum,
    sigmoid,
    sq,
    sqrt,
    sum_of,
)
from repro.lang.interpreter import evaluate, evaluate_many
from repro.lang.parser import parse_expression
from repro.lang.rewrites import simplify_dag

__all__ = [
    "OpType",
    "Node",
    "InputNode",
    "UnaryNode",
    "BinaryNode",
    "AggNode",
    "MatMulNode",
    "TransposeNode",
    "DAG",
    "Expr",
    "matrix_input",
    "log",
    "exp",
    "sigmoid",
    "sq",
    "sqrt",
    "pow_of",
    "nnz_mask",
    "sum_of",
    "rowsum",
    "colsum",
    "min_of",
    "max_of",
    "evaluate",
    "evaluate_many",
    "simplify_dag",
    "parse_expression",
]
