"""A TensorFlow-XLA-like baseline: single-node, fully fused execution.

TensorFlow with XLA (Section 6.5) compiles the whole DAG into fused kernels
on one machine: there is no cluster communication at all, but also no
cluster — compute bandwidth is a single node's, and the working set must fit
one machine's memory.  This engine evaluates the DAG with the numpy
reference interpreter, charges flops from the actual operand shapes, and
models elapsed time as pure single-node computation.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, Mapping, Optional

import numpy as np

from repro.cluster.metrics import MetricsCollector, StageRecord
from repro.cluster.slice_cache import SliceCache
from repro.config import EngineConfig
from repro.core.calibration import CalibrationStore
from repro.core.physical import PhysicalPlan, UnitEstimate, UnitOp
from repro.core.plan_cache import PlanCache
from repro.errors import TaskOutOfMemoryError
from repro.execution import (
    ExecutionResult,
    Query,
    as_dag,
    emit_profile_telemetry,
)
from repro.lang.dag import Node
from repro.lang.interpreter import evaluate_many
from repro.matrix.distributed import BlockedMatrix
from repro.matrix.generators import from_numpy
from repro.obs import EventBus, QueryProfile, SpanTracer, UnitProfile


class LocalXLAEngine:
    """Whole-DAG fused execution on one node (no distribution)."""

    name = "TensorFlow"

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config or EngineConfig()
        #: Same telemetry surface as the distributed engines: attach sinks
        #: to receive query profiles and counters.
        self.telemetry = EventBus()
        self.last_profile: Optional[QueryProfile] = None
        # the serving layer's duck-type surface (status pages, result-cache
        # keys, replica cloning).  XLA "recompiles" per query, so the plan
        # cache stays empty and the slice cache disabled; the calibration
        # store exists but this engine never feeds it.
        self.plan_cache = PlanCache(self.config.plan_cache_size)
        self.slice_cache = SliceCache(enabled=False)
        self.calibration = CalibrationStore(
            window=self.config.calibration_window,
            min_samples=self.config.calibration_min_samples,
        )

    def planning_signature(self) -> tuple:
        """Everything that can steer this engine's (trivial) planning —
        the result-cache key component, mirroring
        :meth:`repro.execution.Engine.planning_signature`."""
        cluster = self.config.cluster
        return (
            type(self).__name__,
            self.name,
            cluster.tasks_per_node,
            cluster.task_memory_budget,
            cluster.compute_bandwidth,
            cluster.task_launch_overhead,
            self.config.block_size,
        )

    def clone(self, config: Optional[EngineConfig] = None) -> "LocalXLAEngine":
        """A fresh single-node engine (replica pools multiply engines
        this way)."""
        return type(self)(config if config is not None else self.config)

    def close(self) -> None:
        """No runtime resources to release (single-node, no worker pool)."""

    @property
    def node_memory(self) -> int:
        """One machine's memory: every task slot's budget on one node."""
        cluster = self.config.cluster
        return cluster.task_memory_budget * cluster.tasks_per_node

    def lower_query(self, query: Query, inputs=None) -> PhysicalPlan:
        """XLA compiles the whole DAG into one fused kernel, so the physical
        plan is a single synthetic unit covering every root — no fusion plan
        and no per-unit cuboid search behind it."""
        dag = as_dag(query)
        flops = float(sum(n.estimated_flops() for n in dag.operators()))
        op = UnitOp(
            index=0,
            unit=None,
            kind="xla-fused",
            deps=(),
            outputs=tuple(dag.roots),
            releases=(),
            estimate=UnitEstimate(net_bytes=0.0, flops=flops),
            name="xla:fused",
        )
        return PhysicalPlan(dag, [op], engine_name=self.name)

    def explain(self, query: Query, inputs=None) -> str:
        """Render the (single-unit) physical plan without executing."""
        return self.lower_query(query, inputs).render()

    def profile(
        self,
        query: Query,
        inputs: Mapping[str, BlockedMatrix],
        cluster: object = None,
    ) -> QueryProfile:
        """Execute *query* and return its accountability report (the same
        contract as :meth:`repro.execution.Engine.profile`)."""
        if not self.config.telemetry:
            raise RuntimeError(
                "engine.profile() needs telemetry; this engine was built "
                "with EngineConfig.telemetry=False"
            )
        result = self.execute(query, inputs, cluster)
        assert result.profile is not None
        return result.profile

    def execute(
        self,
        query: Query,
        inputs: Mapping[str, BlockedMatrix],
        cluster: object = None,
    ) -> ExecutionResult:
        dag = as_dag(query)
        dag.validate_inputs(inputs.keys())

        # telemetry is observability only — the modeled numbers and outputs
        # below are identical whether the tracer exists or not
        tracer = SpanTracer() if self.config.telemetry else None
        with (
            tracer.span("query", "query", engine=self.name)
            if tracer else nullcontext()
        ):
            with (
                tracer.span("plan", "planning")
                if tracer else nullcontext()
            ) as plan_span:
                physical = self.lower_query(dag)
            if plan_span is not None:
                plan_span.attrs.update(cache_hit=False, units=1, waves=1)

            with (
                tracer.span("execute", "execution")
                if tracer else nullcontext()
            ) as exec_span:
                working_set = sum(m.nbytes for m in inputs.values())
                flops = 0
                peak = working_set
                for node in dag.operators():
                    flops += node.estimated_flops()
                    # fused execution still holds each operator's output briefly
                    peak = max(peak, working_set + node.meta.estimated_bytes)
                if peak > self.node_memory:
                    raise TaskOutOfMemoryError(
                        "xla-node", int(peak), self.node_memory
                    )

                env = {name: matrix.to_numpy() for name, matrix in inputs.items()}
                arrays = evaluate_many(list(dag.roots), env)

        cluster_cfg = self.config.cluster
        seconds = flops / cluster_cfg.compute_bandwidth + cluster_cfg.task_launch_overhead
        metrics = MetricsCollector()
        metrics.record(
            StageRecord(
                name="xla:fused",
                num_tasks=1,
                consolidation_bytes=0,
                aggregation_bytes=0,
                flops=int(flops),
                seconds=seconds,
                peak_task_memory=int(peak),
                unit=0,
            )
        )
        outputs: Dict[Node, BlockedMatrix] = {}
        for root, array in zip(dag.roots, arrays):
            outputs[root] = from_numpy(
                np.atleast_2d(array), block_size=root.meta.block_size
            )
        result = ExecutionResult(
            outputs=outputs,
            metrics=metrics,
            fusion_plan=None,
            dag=dag,
            physical_plan=physical,
        )
        if tracer is not None:
            result.profile = self._build_profile(
                physical, metrics, tracer, exec_span, seconds, result
            )
            self.last_profile = result.profile
            emit_profile_telemetry(self.telemetry, result.profile)
        return result

    def _build_profile(
        self,
        physical: PhysicalPlan,
        metrics: MetricsCollector,
        tracer: SpanTracer,
        exec_span,
        seconds: float,
        result: ExecutionResult,
    ) -> QueryProfile:
        span = tracer.root
        span.modeled_start = exec_span.modeled_start = 0.0
        span.modeled_end = exec_span.modeled_end = seconds
        op = physical.ops[0]
        record = metrics.stages[0]
        unit_span = exec_span.child(
            "unit[0]", "unit", kind=op.kind, label=op.label()
        )
        unit_span.wall_start = exec_span.wall_start
        unit_span.wall_end = exec_span.wall_end
        unit_span.modeled_start, unit_span.modeled_end = 0.0, seconds
        stage_span = unit_span.child(
            record.name,
            "stage",
            num_tasks=record.num_tasks,
            comm_bytes=record.comm_bytes,
            flops=record.flops,
        )
        stage_span.modeled_start, stage_span.modeled_end = 0.0, seconds
        est = op.estimate
        unit = UnitProfile(
            index=0,
            kind=op.kind,
            label=op.label(),
            predicted_net_bytes=est.net_bytes,
            predicted_flops=est.flops,
            measured_seconds=seconds,
            measured_comm_bytes=float(record.comm_bytes),
            measured_flops=float(record.flops),
            num_stages=1,
            num_tasks=record.num_tasks,
        )
        return QueryProfile(
            engine=self.name,
            units=(unit,),
            totals=metrics.totals(),
            counters=dict(metrics.counters),
            span=span,
            wall_seconds=span.wall_seconds,
            result=result,
        )
