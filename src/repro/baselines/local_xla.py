"""A TensorFlow-XLA-like baseline: single-node, fully fused execution.

TensorFlow with XLA (Section 6.5) compiles the whole DAG into fused kernels
on one machine: there is no cluster communication at all, but also no
cluster — compute bandwidth is a single node's, and the working set must fit
one machine's memory.  This engine evaluates the DAG with the numpy
reference interpreter, charges flops from the actual operand shapes, and
models elapsed time as pure single-node computation.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.cluster.metrics import MetricsCollector, StageRecord
from repro.config import EngineConfig
from repro.core.physical import PhysicalPlan, UnitEstimate, UnitOp
from repro.errors import TaskOutOfMemoryError
from repro.execution import ExecutionResult, Query, as_dag
from repro.lang.dag import Node
from repro.lang.interpreter import evaluate_many
from repro.matrix.distributed import BlockedMatrix
from repro.matrix.generators import from_numpy


class LocalXLAEngine:
    """Whole-DAG fused execution on one node (no distribution)."""

    name = "TensorFlow"

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config or EngineConfig()

    @property
    def node_memory(self) -> int:
        """One machine's memory: every task slot's budget on one node."""
        cluster = self.config.cluster
        return cluster.task_memory_budget * cluster.tasks_per_node

    def lower_query(self, query: Query, inputs=None) -> PhysicalPlan:
        """XLA compiles the whole DAG into one fused kernel, so the physical
        plan is a single synthetic unit covering every root — no fusion plan
        and no per-unit cuboid search behind it."""
        dag = as_dag(query)
        flops = float(sum(n.estimated_flops() for n in dag.operators()))
        op = UnitOp(
            index=0,
            unit=None,
            kind="xla-fused",
            deps=(),
            outputs=tuple(dag.roots),
            releases=(),
            estimate=UnitEstimate(net_bytes=0.0, flops=flops),
            name="xla:fused",
        )
        return PhysicalPlan(dag, [op], engine_name=self.name)

    def explain(self, query: Query, inputs=None) -> str:
        """Render the (single-unit) physical plan without executing."""
        return self.lower_query(query, inputs).render()

    def execute(
        self,
        query: Query,
        inputs: Mapping[str, BlockedMatrix],
        cluster: object = None,
    ) -> ExecutionResult:
        dag = as_dag(query)
        dag.validate_inputs(inputs.keys())

        working_set = sum(m.nbytes for m in inputs.values())
        flops = 0
        peak = working_set
        for node in dag.operators():
            flops += node.estimated_flops()
            # fused execution still holds each operator's output briefly
            peak = max(peak, working_set + node.meta.estimated_bytes)
        if peak > self.node_memory:
            raise TaskOutOfMemoryError("xla-node", int(peak), self.node_memory)

        env = {name: matrix.to_numpy() for name, matrix in inputs.items()}
        arrays = evaluate_many(list(dag.roots), env)

        cluster_cfg = self.config.cluster
        seconds = flops / cluster_cfg.compute_bandwidth + cluster_cfg.task_launch_overhead
        metrics = MetricsCollector()
        metrics.record(
            StageRecord(
                name="xla:fused",
                num_tasks=1,
                consolidation_bytes=0,
                aggregation_bytes=0,
                flops=int(flops),
                seconds=seconds,
                peak_task_memory=int(peak),
            )
        )
        outputs: Dict[Node, BlockedMatrix] = {}
        for root, array in zip(dag.roots, arrays):
            outputs[root] = from_numpy(
                np.atleast_2d(array), block_size=root.meta.block_size
            )
        return ExecutionResult(
            outputs=outputs,
            metrics=metrics,
            fusion_plan=None,
            dag=dag,
            physical_plan=self.lower_query(dag),
        )
