"""Baseline engines re-implemented on the shared simulated substrate.

Each baseline reproduces the *fusion policy* and *distributed operator
choice* of the corresponding system in the paper's evaluation:

* :class:`SystemDSLikeEngine` — GEN template fusion (Cell / Outer / Row /
  Multi-aggregation) with the BFO/RFO selection rule of Section 6.2.
* :class:`MatFastLikeEngine` — folds only consecutive element-wise operators;
  matrix multiplications run standalone with broadcast consolidation.
* :class:`DistMELikeEngine` — no fusion at all; matrix multiplication runs as
  CuboidMM with optimized ``(P, Q, R)``.
* :class:`LocalXLAEngine` — a TensorFlow-XLA stand-in: the whole DAG executes
  fully fused on a single node (no communication, single-node compute).
"""

from repro.baselines.gen import GenPlanner
from repro.baselines.systemds import SystemDSLikeEngine
from repro.baselines.matfast import MatFastLikeEngine
from repro.baselines.distme import DistMELikeEngine
from repro.baselines.local_xla import LocalXLAEngine

__all__ = [
    "GenPlanner",
    "SystemDSLikeEngine",
    "MatFastLikeEngine",
    "DistMELikeEngine",
    "LocalXLAEngine",
]
