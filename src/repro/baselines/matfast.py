"""MatFast-like engine: folded element-wise fusion only.

MatFast (Section 7) "uses a simple folded operator that fuses consecutive
element-wise operators"; it neither exploits sparsity across a
multiplication nor partitions the common dimension.  Multiplications run
standalone with broadcast consolidation — the strategy that makes it fail
with O.O.M. once a factor matrix outgrows the task budget (Figure 14(g)).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cluster.executor import SimulatedCluster
from repro.config import EngineConfig
from repro.core.cfg import _cell_fuse_leftovers, _order_units
from repro.core.optimizer import OptimizerResult
from repro.core.physical import UnitAnnotation, UnitOp
from repro.core.plan import FusionPlan, PartialFusionPlan, PlanUnit
from repro.execution import Engine
from repro.lang.dag import DAG, MatMulNode, TransposeNode
from repro.matrix.distributed import BlockedMatrix
from repro.operators.cell import FusedCellOperator
from repro.operators.matmul_ops import BroadcastMatMul


class MatFastLikeEngine(Engine):
    """Consecutive element-wise folding; broadcast matmuls; no exploitation."""

    name = "MatFast"

    def __init__(self, config: Optional[EngineConfig] = None):
        # MatFast has no masked execution path at all
        config = (config or EngineConfig()).with_options(
            sparsity_exploitation=False
        )
        super().__init__(config)

    def plan_query(self, dag: DAG) -> FusionPlan:
        units: list[PlanUnit] = []
        fusable = [
            n for n in dag.nodes()
            if n.is_operator and not isinstance(n, (MatMulNode, TransposeNode))
        ]
        covered: set = set()
        for group in _cell_fuse_leftovers(dag, fusable):
            units.append(PlanUnit(plan=PartialFusionPlan(group, dag)))
            covered |= group
        for node in dag.nodes():
            if node.is_operator and node not in covered:
                units.append(PlanUnit(plan=PartialFusionPlan({node}, dag)))
        return FusionPlan(dag, _order_units(dag, units))

    def annotate_unit(
        self, unit: PlanUnit, hint: Optional[OptimizerResult] = None
    ) -> UnitAnnotation:
        kind = "broadcast-mm" if unit.plan.contains_matmul else "cell"
        return UnitAnnotation(kind=kind, estimate=self.calibrated_estimate(kind, unit))

    def run_unit(
        self,
        op: UnitOp,
        cluster: SimulatedCluster,
        env: Mapping[object, BlockedMatrix],
    ) -> BlockedMatrix:
        plan = op.unit.plan
        if plan.contains_matmul:
            node = plan.main_matmul()
            return BroadcastMatMul(node, plan.dag, self.config).execute(cluster, env)
        return FusedCellOperator(plan, self.config).execute(cluster, env)
