"""GEN: the template-based fusion plan generator of SystemDS.

The paper characterizes GEN (Section 2.1, Section 4) by two behaviours this
re-implementation reproduces:

* it fuses along four templates — Cell (element-wise chains), Outer
  (multiplication masked by a *sparse* element-wise multiplication, i.e.
  sparsity exploitation), Row (multiplication by a narrow side matrix) and
  Multi-aggregation (several aggregations over shared inputs);
* it includes large-scale matrix multiplication in a plan *only when
  sparsity exploitation is possible* (the Outer template) — for GNMF it
  therefore fuses just the two element-wise operators ``*`` and ``/``
  (Figure 10), leaving every multiplication unfused.
"""

from __future__ import annotations

from typing import Optional

from repro.config import EngineConfig
from repro.core.cfg import (
    _cell_fuse_leftovers,
    _order_units,
    merge_multi_aggregations,
)
from repro.core.plan import FusionPlan, PartialFusionPlan, PlanUnit
from repro.lang.dag import (
    AggNode,
    BinaryNode,
    DAG,
    MatMulNode,
    Node,
    TransposeNode,
    UnaryNode,
)


class GenPlanner:
    """Template-based fusion plan generation (SystemDS' GEN)."""

    def __init__(self, config: EngineConfig):
        self.config = config

    def plan(self, dag: DAG) -> FusionPlan:
        covered: set[Node] = set()
        partials: list[PartialFusionPlan] = []

        for plan in self._outer_templates(dag):
            if plan.nodes & covered:
                continue
            partials.append(plan)
            covered |= plan.nodes

        for plan in self._row_templates(dag, covered):
            if plan.nodes & covered:
                continue
            partials.append(plan)
            covered |= plan.nodes

        leftovers = [n for n in dag.nodes() if n.is_operator and n not in covered]
        for group in _cell_fuse_leftovers(dag, leftovers):
            partials.append(PartialFusionPlan(group, dag))

        units = [PlanUnit(plan=p) for p in partials]
        units = merge_multi_aggregations(dag, units)
        return FusionPlan(dag, _order_units(dag, units))

    # -- Outer template -----------------------------------------------------------

    def _outer_templates(self, dag: DAG) -> list[PartialFusionPlan]:
        """Multiplications fused only because a sparse mask covers them."""
        threshold = self.config.sparse_threshold
        plans: list[PartialFusionPlan] = []
        claimed: set[Node] = set()
        for node in dag.nodes():
            if not (
                isinstance(node, BinaryNode)
                and node.kernel == "mul"
                and not node.has_scalar
            ):
                continue
            for idx in (0, 1):
                sparse_side = node.inputs[idx]
                dense_side = node.inputs[1 - idx]
                if sparse_side.meta.density > threshold:
                    continue
                chain = self._matmul_chain(dag, dense_side)
                if chain is None:
                    continue
                mm, path = chain
                members = {node, mm, *path}
                members |= self._operand_transposes(dag, mm)
                members |= self._grow_top(dag, node, members)
                members = {m for m in members if m not in claimed}
                if mm not in members or node not in members:
                    continue
                plans.append(PartialFusionPlan(members, dag))
                claimed |= members
                break
        return plans

    def _matmul_chain(
        self, dag: DAG, node: Node
    ) -> Optional[tuple[MatMulNode, list[Node]]]:
        """Walk down through single-consumer element-wise ops to a matmul.

        DAG roots cannot be fused through — even with a single consumer
        their value must materialize on its own — so they stop the walk.
        """
        path: list[Node] = []
        current = node
        while True:
            if isinstance(current, MatMulNode):
                if dag.consumers(current) != 1 or current in dag.roots:
                    return None
                return current, path
            if isinstance(current, (UnaryNode, BinaryNode)):
                if dag.consumers(current) != 1 or current in dag.roots:
                    return None
                path.append(current)
                matrix_children = [
                    c for c in current.inputs if c.is_operator
                ]
                if len(matrix_children) != 1:
                    return None
                current = matrix_children[0]
                continue
            return None

    def _operand_transposes(self, dag: DAG, mm: MatMulNode) -> set[Node]:
        """Single-consumer transposes feeding the multiplication."""
        found: set[Node] = set()
        for child in mm.inputs:
            if (
                isinstance(child, TransposeNode)
                and dag.consumers(child) == 1
                and child not in dag.roots
            ):
                found.add(child)
        return found

    def _grow_top(self, dag: DAG, node: Node, members: set[Node]) -> set[Node]:
        """Absorb the single-consumer element-wise / aggregation chain above."""
        grown: set[Node] = set()
        current = node
        while dag.consumers(current) == 1 and current not in dag.roots:
            parents = dag.parents(current)
            if not parents:
                break
            parent = parents[0]
            if isinstance(parent, AggNode) or parent in dag.roots:
                # aggregations and consumed roots cap the chain as its top:
                # both must materialize their output anyway
                grown.add(parent)
                break
            if not isinstance(parent, (UnaryNode, BinaryNode)):
                break
            other_operands = [
                c for c in parent.inputs
                if c is not current and c.is_operator
                and c not in members and c not in grown
            ]
            if other_operands:
                break  # the other side would drag in unfusable work
            grown.add(parent)
            current = parent
        return grown

    # -- Row template -----------------------------------------------------------------

    def _row_templates(self, dag: DAG, covered: set[Node]) -> list[PartialFusionPlan]:
        """Multiplications with a narrow (one block wide) side matrix.

        SystemDS' Row template reuses the rows of the wide input across the
        multiplication and the following operators, e.g. PCA's
        ``(X x S)^T x X``.  We fuse conservatively: the multiplication plus a
        directly narrow-side chain.
        """
        plans: list[PartialFusionPlan] = []
        for node in dag.nodes():
            if not isinstance(node, MatMulNode) or node in covered:
                continue
            right = node.inputs[1]
            if right.meta.block_cols != 1:
                continue
            if right.meta.cols >= node.inputs[0].meta.cols:
                continue
            grown, top = self._climb_row_chain(dag, node)
            members: set[Node] = {node} | grown
            members |= self._grow_top(dag, top, members)
            members -= covered
            if node in members and not (members & covered):
                plans.append(PartialFusionPlan(members, dag))
        return plans

    def _climb_row_chain(
        self, dag: DAG, node: Node
    ) -> tuple[set[Node], Node]:
        """Follow the narrow product up through transposes into one more
        multiplication — the full PCA pattern ``(X x S)^T x X``.  Returns
        the absorbed operators and the top of the chain."""
        grown: set[Node] = set()
        current = node
        while dag.consumers(current) == 1 and current not in dag.roots:
            parent = dag.parents(current)[0]
            if isinstance(parent, TransposeNode):
                grown.add(parent)
                current = parent
                continue
            if isinstance(parent, MatMulNode):
                grown.add(parent)
                current = parent
            break
        return grown, current
