"""DistME-like engine: CuboidMM for multiplications, no operator fusion.

DistME (Section 2.3, Section 7) introduced cuboid-based matrix
multiplication — the partitioning the CFO generalizes — but does not fuse
operators: every DAG vertex materializes its output.  The paper includes it
as the fastest non-fusing system; its gap to FuseME isolates the value of
fusion on top of cuboid partitioning.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cluster.executor import SimulatedCluster
from repro.config import EngineConfig
from repro.core.cfg import _order_units
from repro.core.optimizer import OptimizerResult, optimize_parameters
from repro.core.physical import (
    UnitAnnotation,
    UnitOp,
    estimate_from_cost,
)
from repro.core.plan import FusionPlan, PartialFusionPlan, PlanUnit
from repro.execution import Engine
from repro.lang.dag import DAG
from repro.matrix.distributed import BlockedMatrix
from repro.operators.cell import FusedCellOperator
from repro.operators.matmul_ops import CuboidMatMul


class DistMELikeEngine(Engine):
    """No fusion; optimized cuboid partitioning for every multiplication."""

    name = "DistME"

    def __init__(self, config: Optional[EngineConfig] = None):
        # no fused operators -> no masked execution path either
        config = (config or EngineConfig()).with_options(
            sparsity_exploitation=False
        )
        super().__init__(config)

    def plan_query(self, dag: DAG) -> FusionPlan:
        units = [
            PlanUnit(plan=PartialFusionPlan({node}, dag))
            for node in dag.nodes()
            if node.is_operator
        ]
        return FusionPlan(dag, _order_units(dag, units))

    def annotate_unit(
        self, unit: PlanUnit, hint: Optional[OptimizerResult] = None
    ) -> UnitAnnotation:
        plan = unit.plan
        if plan.contains_matmul:
            # the unit's plan *is* the single-node plan CuboidMatMul builds,
            # so searching it here yields the same (P, Q, R) the operator's
            # constructor used to find on the execution path
            result = hint or optimize_parameters(
                plan,
                self.config,
                calibration=self.calibration_for("cuboid-mm", plan),
            )
            return UnitAnnotation(
                kind="cuboid-mm",
                pqr=result.pqr,
                optimizer_result=result,
                estimate=estimate_from_cost(
                    result.cost,
                    paper_seconds=(
                        result.paper_cost.cost_seconds
                        if result.paper_cost is not None else None
                    ),
                ),
            )
        return UnitAnnotation(
            kind="cell", estimate=self.calibrated_estimate("cell", unit)
        )

    def run_unit(
        self,
        op: UnitOp,
        cluster: SimulatedCluster,
        env: Mapping[object, BlockedMatrix],
    ) -> BlockedMatrix:
        plan = op.unit.plan
        if plan.contains_matmul:
            operator = CuboidMatMul(
                plan.main_matmul(), plan.dag, self.config, pqr=op.pqr
            )
            operator.optimizer_result = op.optimizer_result
            return operator.execute(cluster, env)
        return FusedCellOperator(plan, self.config).execute(cluster, env)
