"""DistME-like engine: CuboidMM for multiplications, no operator fusion.

DistME (Section 2.3, Section 7) introduced cuboid-based matrix
multiplication — the partitioning the CFO generalizes — but does not fuse
operators: every DAG vertex materializes its output.  The paper includes it
as the fastest non-fusing system; its gap to FuseME isolates the value of
fusion on top of cuboid partitioning.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cluster.executor import SimulatedCluster
from repro.config import EngineConfig
from repro.core.cfg import _order_units
from repro.core.plan import FusionPlan, PartialFusionPlan, PlanUnit
from repro.execution import Engine
from repro.lang.dag import DAG
from repro.matrix.distributed import BlockedMatrix
from repro.operators.cell import FusedCellOperator
from repro.operators.matmul_ops import CuboidMatMul


class DistMELikeEngine(Engine):
    """No fusion; optimized cuboid partitioning for every multiplication."""

    name = "DistME"

    def __init__(self, config: Optional[EngineConfig] = None):
        # no fused operators -> no masked execution path either
        config = (config or EngineConfig()).with_options(
            sparsity_exploitation=False
        )
        super().__init__(config)

    def plan_query(self, dag: DAG) -> FusionPlan:
        units = [
            PlanUnit(plan=PartialFusionPlan({node}, dag))
            for node in dag.nodes()
            if node.is_operator
        ]
        return FusionPlan(dag, _order_units(dag, units))

    def run_unit(
        self,
        unit: PlanUnit,
        cluster: SimulatedCluster,
        env: Mapping[object, BlockedMatrix],
    ) -> BlockedMatrix:
        plan = unit.plan
        if plan.contains_matmul:
            node = plan.main_matmul()
            hint = self._unit_hint()
            if hint is not None:
                # plan-cache hit: skip the per-multiplication (P, Q, R) search
                operator = CuboidMatMul(node, plan.dag, self.config, pqr=hint.pqr)
                operator.optimizer_result = hint
            else:
                operator = CuboidMatMul(node, plan.dag, self.config)
                self._store_unit_hint(operator.optimizer_result)
            return operator.execute(cluster, env)
        return FusedCellOperator(plan, self.config).execute(cluster, env)
