"""SystemDS-like engine: GEN plans executed with BFO or RFO.

The distributed fused operator is chosen by the rule the paper states in
Section 6.2: SystemDS "uses the BFO if the number of partitions of X is
smaller than I or J; otherwise, it uses the RFO".  Standalone matrix
multiplications broadcast the smaller operand when it fits comfortably in a
task's budget (mapmm), else fall back to replication (rmm).

The BFO/RFO decision is runtime state: it looks at the *actual* bound
matrices' sizes, which the plan-level fingerprint cannot see.  Lowering
therefore annotates each matmul unit with the metadata-estimated choice
(what EXPLAIN shows), and :meth:`run_unit` re-decides against the live
environment — keeping served results bit-identical to the pre-IR engine.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from repro.cluster.executor import SimulatedCluster
from repro.config import EngineConfig
from repro.core.optimizer import OptimizerResult
from repro.core.physical import UnitAnnotation, UnitOp
from repro.core.plan import FusionPlan, MultiAggPlan, PlanUnit
from repro.execution import Engine
from repro.baselines.gen import GenPlanner
from repro.lang.dag import DAG, InputNode, Node
from repro.matrix.distributed import BlockedMatrix
from repro.operators.bfo import BroadcastFusedOperator
from repro.operators.cell import FusedCellOperator
from repro.operators.multi_agg import MultiAggregationOperator
from repro.operators.rfo import ReplicationFusedOperator

#: mapmm is chosen when the broadcast operand uses at most this fraction of
#: the per-task budget (Spark broadcast variables must leave execution room).
_BROADCAST_FRACTION = 0.45


class SystemDSLikeEngine(Engine):
    """GEN fusion templates + BFO/RFO distributed fused operators."""

    name = "SystemDS"

    def __init__(self, config: Optional[EngineConfig] = None):
        super().__init__(config)
        self._planner = GenPlanner(self.config)
        # keyed by unit index so concurrent unit dispatch stays
        # deterministic; read through the last_choices property
        self._choices: Dict[int, str] = {}

    @property
    def last_choices(self) -> list[str]:
        """Operator decisions of the last run, in unit order."""
        return [self._choices[i] for i in sorted(self._choices)]

    def prepare_dag(self, dag: DAG, inputs=None) -> DAG:
        self._choices = {}
        return dag

    def plan_query(self, dag: DAG) -> FusionPlan:
        return self._planner.plan(dag)

    def annotate_unit(
        self, unit: PlanUnit, hint: Optional[OptimizerResult] = None
    ) -> UnitAnnotation:
        plan = unit.plan
        if isinstance(plan, MultiAggPlan):
            kind = "multi-agg"
        elif not plan.contains_matmul:
            kind = "cell"
        else:
            # metadata-estimated choice (run_unit re-decides on live sizes)
            if len(plan) == 1:
                kind = f"{self._standalone_strategy(plan)}?"
            else:
                kind = f"{self._fused_strategy(plan)}?"
        return UnitAnnotation(kind=kind, estimate=self.calibrated_estimate(kind, unit))

    def run_unit(
        self,
        op: UnitOp,
        cluster: SimulatedCluster,
        env: Mapping[object, BlockedMatrix],
    ):
        plan = op.unit.plan
        if isinstance(plan, MultiAggPlan):
            self._choices[op.index] = f"multi-agg:{plan.label()}"
            return MultiAggregationOperator(plan, self.config).execute(cluster, env)
        if not plan.contains_matmul:
            self._choices[op.index] = f"cell:{plan.label()}"
            return FusedCellOperator(plan, self.config).execute(cluster, env)

        if len(plan) == 1:
            choice = self._standalone_strategy(plan, env)
        else:
            choice = self._fused_strategy(plan, env)
        self._choices[op.index] = f"{choice}:{plan.label()}"
        if choice == "bfo":
            operator: object = BroadcastFusedOperator(plan, self.config)
        else:
            operator = ReplicationFusedOperator(plan, self.config)
        return operator.execute(cluster, env)

    # -- strategy selection --------------------------------------------------

    def _fused_strategy(
        self, plan, env: Optional[Mapping[object, BlockedMatrix]] = None
    ) -> str:
        """The paper's rule: BFO iff partitions(main) < I or < J."""
        main_bytes = self._largest_frontier_bytes(plan, env)
        partitions = max(
            1, math.ceil(main_bytes / self.config.cluster.input_split_bytes)
        )
        mm = plan.main_matmul()
        extent_i, extent_j, _ = mm.mm_dims()
        if partitions < extent_i or partitions < extent_j:
            return "bfo"
        return "rfo"

    def _standalone_strategy(
        self, plan, env: Optional[Mapping[object, BlockedMatrix]] = None
    ) -> str:
        """mapmm (broadcast) when the smaller operand fits, else rmm."""
        sizes = []
        for node in plan.frontier():
            value = self._lookup(node, env)
            sizes.append(value.nbytes if value is not None
                         else node.meta.estimated_bytes)
        smaller = min(sizes) if sizes else 0
        budget = self.config.cluster.task_memory_budget
        if smaller <= budget * _BROADCAST_FRACTION:
            return "bfo"
        return "rfo"

    def _largest_frontier_bytes(
        self, plan, env: Optional[Mapping[object, BlockedMatrix]] = None
    ) -> int:
        largest = 0
        for node in plan.frontier():
            value = self._lookup(node, env)
            size = value.nbytes if value is not None else node.meta.estimated_bytes
            largest = max(largest, size)
        return largest

    @staticmethod
    def _lookup(
        node: Node, env: Optional[Mapping[object, BlockedMatrix]]
    ) -> Optional[BlockedMatrix]:
        if env is None:
            return None
        value = env.get(node.node_id)
        if value is None and isinstance(node, InputNode):
            value = env.get(node.name)
        return value
