"""SystemDS-like engine: GEN plans executed with BFO or RFO.

The distributed fused operator is chosen by the rule the paper states in
Section 6.2: SystemDS "uses the BFO if the number of partitions of X is
smaller than I or J; otherwise, it uses the RFO".  Standalone matrix
multiplications broadcast the smaller operand when it fits comfortably in a
task's budget (mapmm), else fall back to replication (rmm).
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

from repro.cluster.executor import SimulatedCluster
from repro.config import EngineConfig
from repro.core.plan import FusionPlan, MultiAggPlan, PlanUnit
from repro.execution import Engine
from repro.baselines.gen import GenPlanner
from repro.lang.dag import DAG, InputNode, Node
from repro.matrix.distributed import BlockedMatrix
from repro.operators.bfo import BroadcastFusedOperator
from repro.operators.cell import FusedCellOperator
from repro.operators.multi_agg import MultiAggregationOperator
from repro.operators.rfo import ReplicationFusedOperator

#: mapmm is chosen when the broadcast operand uses at most this fraction of
#: the per-task budget (Spark broadcast variables must leave execution room).
_BROADCAST_FRACTION = 0.45


class SystemDSLikeEngine(Engine):
    """GEN fusion templates + BFO/RFO distributed fused operators."""

    name = "SystemDS"

    def __init__(self, config: Optional[EngineConfig] = None):
        super().__init__(config)
        self._planner = GenPlanner(self.config)
        #: Operator decisions taken during the last run, for inspection.
        self.last_choices: list[str] = []

    def plan_query(self, dag: DAG) -> FusionPlan:
        self.last_choices = []
        return self._planner.plan(dag)

    def run_unit(
        self,
        unit: PlanUnit,
        cluster: SimulatedCluster,
        env: Mapping[object, BlockedMatrix],
    ):
        plan = unit.plan
        if isinstance(plan, MultiAggPlan):
            self.last_choices.append(f"multi-agg:{plan.label()}")
            return MultiAggregationOperator(plan, self.config).execute(cluster, env)
        if not plan.contains_matmul:
            self.last_choices.append(f"cell:{plan.label()}")
            return FusedCellOperator(plan, self.config).execute(cluster, env)

        if len(plan) == 1:
            choice = self._standalone_strategy(plan, env)
        else:
            choice = self._fused_strategy(plan, env)
        self.last_choices.append(f"{choice}:{plan.label()}")
        if choice == "bfo":
            operator: object = BroadcastFusedOperator(plan, self.config)
        else:
            operator = ReplicationFusedOperator(plan, self.config)
        return operator.execute(cluster, env)

    # -- strategy selection --------------------------------------------------

    def _fused_strategy(
        self, plan, env: Mapping[object, BlockedMatrix]
    ) -> str:
        """The paper's rule: BFO iff partitions(main) < I or < J."""
        main_bytes = self._largest_frontier_bytes(plan, env)
        partitions = max(
            1, math.ceil(main_bytes / self.config.cluster.input_split_bytes)
        )
        mm = plan.main_matmul()
        extent_i, extent_j, _ = mm.mm_dims()
        if partitions < extent_i or partitions < extent_j:
            return "bfo"
        return "rfo"

    def _standalone_strategy(
        self, plan, env: Mapping[object, BlockedMatrix]
    ) -> str:
        """mapmm (broadcast) when the smaller operand fits, else rmm."""
        mm = plan.main_matmul()
        sizes = []
        for node in plan.frontier():
            value = self._lookup(node, env)
            sizes.append(value.nbytes if value is not None
                         else node.meta.estimated_bytes)
        smaller = min(sizes) if sizes else 0
        budget = self.config.cluster.task_memory_budget
        if smaller <= budget * _BROADCAST_FRACTION:
            return "bfo"
        return "rfo"

    def _largest_frontier_bytes(
        self, plan, env: Mapping[object, BlockedMatrix]
    ) -> int:
        largest = 0
        for node in plan.frontier():
            value = self._lookup(node, env)
            size = value.nbytes if value is not None else node.meta.estimated_bytes
            largest = max(largest, size)
        return largest

    @staticmethod
    def _lookup(
        node: Node, env: Mapping[object, BlockedMatrix]
    ) -> Optional[BlockedMatrix]:
        value = env.get(node.node_id)
        if value is None and isinstance(node, InputNode):
            value = env.get(node.name)
        return value
