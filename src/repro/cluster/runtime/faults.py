"""Deterministic fault injection for the event-driven cluster runtime.

A :class:`FaultPlan` is a *frozen, seeded* description of the failures a run
should experience: task crashes, straggling tasks (a slowdown multiplier),
and whole-node loss.  Every draw is a pure function of the plan's seed and
the identity of the thing being drawn for (stage name, task id, attempt
number), so the same plan always injects the same faults regardless of
scheduling order — re-running a workload replays its failures exactly.

Retries follow the bounded-attempts + exponential-backoff discipline of
real cluster schedulers (Spark's ``spark.task.maxFailures``): an attempt
that crashes is re-queued no earlier than ``crash_end + backoff`` where the
backoff doubles with each failed attempt, and a task that exhausts
``max_attempts`` raises :class:`~repro.errors.TaskRetriesExceededError`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional


def _uniform(seed: int, *parts: object) -> float:
    """A deterministic draw in [0, 1) keyed by *seed* and *parts*.

    Uses blake2b rather than ``hash()`` because Python randomizes string
    hashes per process; fault plans must replay across runs.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(seed).encode())
    for part in parts:
        h.update(b"\x1f")
        h.update(str(part).encode())
    return int.from_bytes(h.digest(), "big") / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """Seeded fault-injection schedule for one simulated run.

    Parameters
    ----------
    crash_prob:
        Probability that any given task *attempt* crashes after running to
        completion (the work is wasted and the task is retried).
    straggler_factor:
        Slowdown multiplier applied to attempts drawn as stragglers
        (paper Section 6.2: skewed partitions straggle whole stages).
    straggler_prob:
        Probability that an attempt straggles by ``straggler_factor``.
    node_loss_prob:
        Per-stage probability that one node is lost: attempts already
        placed on its slots fail, the node is blacklisted for the rest of
        the stage, and the lost work is retried on surviving nodes.
    max_attempts:
        Bound on attempts per task (first run + retries).
    retry_backoff_seconds:
        Base of the exponential backoff: attempt ``k``'s retry may not
        start earlier than ``backoff * 2**(k-1)`` after the crash.
    seed:
        Root of every deterministic draw.
    """

    crash_prob: float = 0.0
    straggler_factor: float = 1.0
    straggler_prob: float = 0.1
    node_loss_prob: float = 0.0
    max_attempts: int = 4
    retry_backoff_seconds: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("crash_prob", "straggler_prob", "node_loss_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.retry_backoff_seconds < 0.0:
            raise ValueError("retry_backoff_seconds cannot be negative")

    # -- draws (all pure functions of seed + identity) ---------------------

    def crashes(self, task_id: str, attempt: int) -> bool:
        """Does this attempt crash? (Deterministic per task/attempt.)"""
        return _uniform(self.seed, "crash", task_id, attempt) < self.crash_prob

    def slowdown(self, task_id: str, attempt: int) -> float:
        """The attempt's straggler multiplier (1.0 for healthy attempts)."""
        if self.straggler_factor == 1.0:
            return 1.0
        draw = _uniform(self.seed, "straggle", task_id, attempt)
        return self.straggler_factor if draw < self.straggler_prob else 1.0

    def lost_node(self, stage_name: str, num_nodes: int) -> Optional[int]:
        """The node lost during this stage, or None."""
        if num_nodes <= 0:
            return None
        if _uniform(self.seed, "node-loss", stage_name) >= self.node_loss_prob:
            return None
        return int(_uniform(self.seed, "node-pick", stage_name) * num_nodes)

    def backoff_seconds(self, attempt: int) -> float:
        """Delay before re-queueing after failed attempt number *attempt*."""
        return self.retry_backoff_seconds * 2.0 ** (attempt - 1)


#: A plan that injects nothing — scheduling without faults.
NO_FAULTS = FaultPlan()
