"""Structured execution traces with Chrome-trace export.

A :class:`TraceRecorder` accumulates :class:`TraceEvent` records emitted by
the cluster — stage open/close, task attempt start/end, retries, transfer
totals — with *modeled* timestamps (simulated seconds since run start).
The recorder exports two formats:

* ``to_chrome_trace()`` / ``write_chrome_trace(path)`` — the Trace Event
  JSON format consumed by ``chrome://tracing`` and https://ui.perfetto.dev,
  with one process row per node and one thread row per slot, so wave
  structure, stragglers and retries are visible on a real timeline;
* ``summary()`` — a plain-text digest for logs and benchmark output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

#: Synthetic "process" row hosting stage-level (driver) events.
DRIVER_PID = 0

#: Chrome traces use microseconds; the simulator models seconds.
_US = 1e6


@dataclass(frozen=True)
class TraceEvent:
    """One structured runtime event with modeled timestamps (seconds)."""

    name: str
    category: str  # "stage" | "task" | "retry" | "transfer"
    phase: str  # Chrome phases: "X" complete, "i" instant
    ts: float
    duration: float = 0.0
    pid: int = DRIVER_PID
    tid: int = 0
    args: Dict[str, Any] = field(default_factory=dict)

    def to_chrome(self) -> Dict[str, Any]:
        event: Dict[str, Any] = {
            "name": self.name,
            "cat": self.category,
            "ph": self.phase,
            "ts": self.ts * _US,
            "pid": self.pid,
            "tid": self.tid,
            "args": dict(self.args),
        }
        if self.phase == "X":
            event["dur"] = self.duration * _US
        if self.phase == "i":
            event["s"] = "t"  # instant event scoped to its thread
        return event


class TraceRecorder:
    """Collects runtime events and renders them as Chrome trace / text."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    # -- recording hooks ---------------------------------------------------

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def stage(self, name: str, start: float, end: float, **args: Any) -> None:
        """A stage's full [open, close] span on the driver row."""
        self.record(
            TraceEvent(
                name=name,
                category="stage",
                phase="X",
                ts=start,
                duration=max(0.0, end - start),
                pid=DRIVER_PID,
                tid=0,
                args=args,
            )
        )

    def task_attempt(
        self,
        task_id: str,
        attempt: int,
        node: int,
        slot: int,
        start: float,
        end: float,
        outcome: str,
        **args: Any,
    ) -> None:
        """One task attempt's span on its slot's thread row."""
        self.record(
            TraceEvent(
                name=f"{task_id}@{attempt}",
                category="task",
                phase="X",
                ts=start,
                duration=max(0.0, end - start),
                pid=node + 1,  # pid 0 is the driver row
                tid=slot,
                args={"attempt": attempt, "outcome": outcome, **args},
            )
        )
        if outcome != "ok":
            self.record(
                TraceEvent(
                    name=f"retry:{task_id}",
                    category="retry",
                    phase="i",
                    ts=end,
                    pid=node + 1,
                    tid=slot,
                    args={"failed_attempt": attempt, "outcome": outcome},
                )
            )

    def instant(
        self,
        name: str,
        category: str,
        ts: float,
        tid: int = 0,
        **args: Any,
    ) -> None:
        """A zero-duration marker on the driver row (cache hits, phases)."""
        self.record(
            TraceEvent(
                name=name,
                category=category,
                phase="i",
                ts=ts,
                pid=DRIVER_PID,
                tid=tid,
                args=args,
            )
        )

    def span_tree(self, span: Any, epoch: float, tid: int = 1) -> None:
        """Export a :class:`repro.obs.span.Span` tree as driver-row events.

        Spans that ran cluster stages carry *modeled* timestamps and land
        directly on the modeled timeline; pure planner phases (parse, plan,
        lower) only have wall-clock offsets, which are re-anchored so the
        tree's root starts at modeled second ``epoch`` — putting planning
        on the same timeline as the stages it produced.  ``tid`` picks the
        driver thread row (row 0 holds stage/transfer events).
        """
        base = span.wall_start

        def _emit(node: Any) -> None:
            if node.modeled_start is not None and node.modeled_end is not None:
                start, end = node.modeled_start, node.modeled_end
            else:
                wall_end = node.wall_end
                if wall_end is None:
                    wall_end = node.wall_start
                start = epoch + (node.wall_start - base)
                end = epoch + (wall_end - base)
            args = {k: v for k, v in node.attrs.items()}
            args["category"] = node.category
            self.record(
                TraceEvent(
                    name=node.name,
                    category="span",
                    phase="X",
                    ts=start,
                    duration=max(0.0, end - start),
                    pid=DRIVER_PID,
                    tid=tid,
                    args=args,
                )
            )
            for child in node.children:
                _emit(child)

        _emit(span)

    def transfer(
        self, stage_name: str, ts: float, consolidation: int, aggregation: int
    ) -> None:
        """Stage-level transfer totals as an instant event on the driver."""
        self.record(
            TraceEvent(
                name=f"transfer:{stage_name}",
                category="transfer",
                phase="i",
                ts=ts,
                pid=DRIVER_PID,
                tid=0,
                args={
                    "consolidation_bytes": consolidation,
                    "aggregation_bytes": aggregation,
                },
            )
        )

    # -- export ------------------------------------------------------------

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Trace Event Format document (load in chrome://tracing)."""
        events = [e.to_chrome() for e in self.events]
        pids = sorted({e.pid for e in self.events})
        for pid in pids:
            name = "driver" if pid == DRIVER_PID else f"node-{pid - 1}"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)

    def summary(self) -> str:
        """Plain-text digest: per-category counts plus retry detail lines."""
        by_category: Dict[str, int] = {}
        for event in self.events:
            by_category[event.category] = by_category.get(event.category, 0) + 1
        lines = [
            "trace: "
            + ", ".join(
                f"{count} {category} events"
                for category, count in sorted(by_category.items())
            )
        ]
        for event in self.events:
            if event.category == "retry":
                lines.append(
                    f"  retry {event.name.removeprefix('retry:')} at "
                    f"t={event.ts:.3f}s ({event.args.get('outcome')})"
                )
        return "\n".join(lines)

    def slice_from(self, index: int) -> "TraceRecorder":
        """A new recorder holding a copy of ``events[index:]``.

        Used for per-query trace isolation on shared clusters: the slice is
        independent of the live recorder (later queries never leak into
        it).  Timestamps are left absolute — they stay on the cluster's
        modeled clock, which keeps multiple queries' exports comparable.
        """
        sliced = TraceRecorder()
        sliced.events = list(self.events[index:])
        return sliced

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"TraceRecorder({len(self.events)} events)"


def validate_chrome_trace(document: Dict[str, Any]) -> None:
    """Raise ValueError if *document* is not a loadable Chrome trace.

    Used by tests and by callers that archive traces: checks the envelope,
    required per-event keys, and that complete events carry durations.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("chrome trace must be an object with 'traceEvents'")
    for event in document["traceEvents"]:
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"trace event missing {key!r}: {event}")
        if event["ph"] == "X" and "dur" not in event:
            raise ValueError(f"complete event missing 'dur': {event}")
        if event["ph"] != "M" and "ts" not in event:
            raise ValueError(f"trace event missing 'ts': {event}")
    json.dumps(document)  # must round-trip
