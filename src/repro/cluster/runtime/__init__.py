"""Event-driven cluster runtime: per-slot scheduling, faults and traces.

This package replaces the aggregate stage-timing model with a deterministic
event-driven simulation of the cluster's ``N x Tc`` task slots:

* :class:`ClusterRuntime` — greedy earliest-slot list scheduler; stage time
  is the max over slot timelines, so skew and stragglers cost real seconds;
* :class:`FaultPlan` — seeded, replayable crash / straggler / node-loss
  injection with bounded retries and exponential backoff;
* :class:`TraceRecorder` — structured events (task attempts, retries, stage
  spans, transfers) exportable as Chrome-trace JSON and text summaries.

Select it per run with ``EngineConfig(time_model="scheduled")``; the default
``"aggregate"`` keeps the seed behaviour (and numbers) unchanged.
"""

from repro.cluster.runtime.faults import NO_FAULTS, FaultPlan
from repro.cluster.runtime.scheduler import (
    ClusterRuntime,
    ScheduledStage,
    TaskAttempt,
)
from repro.cluster.runtime.trace import (
    TraceEvent,
    TraceRecorder,
    validate_chrome_trace,
)

__all__ = [
    "ClusterRuntime",
    "FaultPlan",
    "NO_FAULTS",
    "ScheduledStage",
    "TaskAttempt",
    "TraceEvent",
    "TraceRecorder",
    "validate_chrome_trace",
]
