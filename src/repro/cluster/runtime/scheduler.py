"""Event-driven per-slot stage scheduling.

The aggregate model (:func:`repro.cluster.simulation.stage_seconds`) divides
a stage's *total* traffic and flops across the whole cluster — perfect load
balance by construction.  :class:`ClusterRuntime` instead simulates the
``N x Tc`` slots individually: each :class:`~repro.cluster.task.TaskContext`
becomes a unit of work whose busy time is Eq. 2 applied to *that task's own*
bytes and flops on one slot's bandwidth share, a greedy earliest-slot list
scheduler places attempts in waves, and the stage's elapsed time is the
longest slot timeline.  Skewed cuboid partitionings and stragglers therefore
cost real modeled seconds, exactly the imbalance the paper's Section 6.2
observes (BFO starving on ~13 partitions) and Eq. 2 cannot express.

Fault injection (crashes, stragglers, node loss) and bounded retries with
exponential backoff come from a :class:`~repro.cluster.runtime.faults.FaultPlan`;
every attempt is reported to an optional
:class:`~repro.cluster.runtime.trace.TraceRecorder`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cluster.runtime.faults import NO_FAULTS, FaultPlan
from repro.cluster.runtime.trace import TraceRecorder
from repro.cluster.simulation import task_seconds
from repro.cluster.task import TaskContext
from repro.config import ClusterConfig
from repro.errors import ClusterLostError, TaskRetriesExceededError


@dataclass(frozen=True)
class TaskAttempt:
    """One scheduled attempt of one task on one slot."""

    task_id: str
    attempt: int  # 1-based
    node: int
    slot: int
    start: float
    end: float
    outcome: str  # "ok" | "crashed" | "node-lost"
    slowdown: float = 1.0

    @property
    def seconds(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class ScheduledStage:
    """The runtime's verdict on one stage: timelines, attempts, skew."""

    name: str
    start: float
    end: float
    attempts: Tuple[TaskAttempt, ...]
    num_tasks: int
    skew_ratio: float
    lost_node: Optional[int] = None

    @property
    def seconds(self) -> float:
        return self.end - self.start

    @property
    def num_attempts(self) -> int:
        return len(self.attempts)

    @property
    def num_retries(self) -> int:
        return len(self.attempts) - self.num_tasks


class ClusterRuntime:
    """Per-slot scheduler shared by every stage of a simulated run.

    The runtime is stateless across stages (slots drain between stages, as
    Spark's barrier between shuffle boundaries enforces); what persists is
    the fault plan, the trace recorder, and the cluster shape.
    """

    def __init__(
        self,
        cluster: ClusterConfig,
        fault_plan: Optional[FaultPlan] = None,
        trace: Optional[TraceRecorder] = None,
        overlap: bool = True,
    ):
        self.cluster = cluster
        self.fault_plan = fault_plan or NO_FAULTS
        self.trace = trace
        self.overlap = overlap

    # -- scheduling --------------------------------------------------------

    def run_stage(
        self,
        name: str,
        tasks: Sequence[TaskContext],
        start: float = 0.0,
    ) -> ScheduledStage:
        """Schedule *tasks* onto slots and return the stage's timeline.

        Deterministic: tasks are queued in declaration order, attempts go to
        the earliest-available slot (ties broken by slot id), and all fault
        draws are pure functions of the fault plan's seed.
        """
        if not tasks:
            return ScheduledStage(
                name=name,
                start=start,
                end=start,
                attempts=(),
                num_tasks=0,
                skew_ratio=1.0,
            )
        plan = self.fault_plan
        overhead = self.cluster.task_launch_overhead
        lost_node = plan.lost_node(name, self.cluster.num_nodes)

        busy = {
            t.task_id: task_seconds(
                self.cluster, t.consolidation_bytes + t.aggregation_bytes,
                t.flops, overlap=self.overlap,
            )
            for t in tasks
        }

        # slots: (free_at, slot_id) min-heap; slot s lives on node s // Tc
        slots = [(start, s) for s in range(self.cluster.total_tasks)]
        heapq.heapify(slots)
        # each lost-node slot kills exactly one attempt, then is blacklisted
        doomed_slots = (
            {
                s
                for s in range(self.cluster.total_tasks)
                if s // self.cluster.tasks_per_node == lost_node
            }
            if lost_node is not None
            else set()
        )

        order = itertools.count()
        # pending attempts: (ready_at, tie_break, task, attempt_number)
        pending = [(start, next(order), task, 1) for task in tasks]
        heapq.heapify(pending)

        attempts: List[TaskAttempt] = []
        while pending:
            ready_at, _, task, attempt = heapq.heappop(pending)
            if not slots:
                raise ClusterLostError(name)
            free_at, slot = heapq.heappop(slots)
            node = slot // self.cluster.tasks_per_node
            slowdown = plan.slowdown(task.task_id, attempt)
            begin = max(free_at, ready_at)
            end = begin + busy[task.task_id] * slowdown + overhead

            if slot in doomed_slots:
                outcome = "node-lost"
                doomed_slots.discard(slot)  # slot stays off the heap for good
            elif plan.crashes(task.task_id, attempt):
                outcome = "crashed"
                heapq.heappush(slots, (end, slot))
            else:
                outcome = "ok"
                heapq.heappush(slots, (end, slot))

            record = TaskAttempt(
                task_id=task.task_id,
                attempt=attempt,
                node=node,
                slot=slot,
                start=begin,
                end=end,
                outcome=outcome,
                slowdown=slowdown,
            )
            attempts.append(record)
            if self.trace is not None:
                self.trace.task_attempt(
                    task.task_id,
                    attempt,
                    node,
                    slot,
                    begin,
                    end,
                    outcome,
                    net_bytes=task.consolidation_bytes + task.aggregation_bytes,
                    flops=task.flops,
                )
            if outcome != "ok":
                if attempt >= plan.max_attempts:
                    raise TaskRetriesExceededError(task.task_id, attempt)
                retry_ready = end + plan.backoff_seconds(attempt)
                heapq.heappush(pending, (retry_ready, next(order), task, attempt + 1))

        end_time = max(a.end for a in attempts)
        mean_busy = sum(busy.values()) / len(busy)
        skew = (max(busy.values()) / mean_busy) if mean_busy > 0 else 1.0
        return ScheduledStage(
            name=name,
            start=start,
            end=end_time,
            attempts=tuple(attempts),
            num_tasks=len(tasks),
            skew_ratio=skew,
            lost_node=lost_node,
        )

    def __repr__(self) -> str:
        return (
            f"ClusterRuntime(slots={self.cluster.total_tasks}, "
            f"faults={self.fault_plan!r})"
        )
