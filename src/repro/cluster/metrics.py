"""Execution metrics: the numbers every figure in the paper reports.

A :class:`MetricsCollector` accumulates per-stage records and exposes the two
headline series of the evaluation: *communication cost* (bytes moved in the
consolidation + aggregation steps, Figures 12(e-g), 14(d,h)) and *elapsed
time* (modeled seconds, Figures 12(a-d,h), 14(a-c,e-g), 15).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass(frozen=True)
class StageRecord:
    """Totals for one executed stage (one wave-set of parallel tasks).

    ``attempts`` counts task attempts including retries (equal to
    ``num_tasks`` under the aggregate time model, which never retries);
    ``skew_ratio`` is max-over-mean per-task busy time (1.0 = perfectly
    balanced); ``aborted`` marks a stage whose body raised — its partial
    traffic still counts, its modeled time is zero.
    """

    name: str
    num_tasks: int
    consolidation_bytes: int
    aggregation_bytes: int
    flops: int
    seconds: float
    peak_task_memory: int
    attempts: int = -1
    skew_ratio: float = 1.0
    aborted: bool = False
    #: Physical-plan unit index this stage ran for (None outside a unit
    #: scope — e.g. hand-opened stages in tests).
    unit: "int | None" = None
    #: Real wall-clock seconds the stage took to evaluate, measured where
    #: the stage ran (also inside process-pool workers, whose records ship
    #: back whole).  Observability/calibration only — never part of
    #: :meth:`MetricsCollector.totals`, which stays comparable across runs
    #: and backends.
    wall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.attempts < 0:
            object.__setattr__(self, "attempts", self.num_tasks)

    @property
    def comm_bytes(self) -> int:
        return self.consolidation_bytes + self.aggregation_bytes

    @property
    def retries(self) -> int:
        return self.attempts - self.num_tasks


@dataclass
class MetricsCollector:
    """Accumulates stage records and running totals for one engine run.

    Besides the modeled stage records, a collector carries fast-path
    *counters* (plan-cache hits/misses, slice-cache hits/misses, thread-pool
    usage).  Counters are observability only: they never feed the modeled
    numbers, so two runs may differ in counters while being identical in
    every total below.  Recording is thread-safe — parallel local evaluation
    (``EngineConfig.local_parallelism``) may complete tasks concurrently.
    """

    stages: list[StageRecord] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, stage: StageRecord) -> None:
        with self._lock:
            self.stages.append(stage)

    def reorder_tail(self, start: int, key) -> None:
        """Stably re-sort ``stages[start:]`` by *key*.

        Used by the wave scheduler: stages of concurrently dispatched units
        complete interleaved, and re-sorting each wave's records by unit
        index restores the exact sequential record order (per-stage numbers
        are pure functions of the stage's own tasks, so reordering is
        semantics-free — it keeps totals bit-identical across parallelism
        levels and record lists comparable).
        """
        with self._lock:
            tail = self.stages[start:]
            tail.sort(key=key)
            self.stages[start:] = tail

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment an observability counter (thread-safe)."""
        with self._lock:
            self.counters[counter] = self.counters.get(counter, 0) + amount

    def bump_max(self, counter: str, value: int) -> None:
        """Raise a high-water-mark counter to *value* (thread-safe)."""
        with self._lock:
            if value > self.counters.get(counter, 0):
                self.counters[counter] = value

    def counter(self, name: str) -> int:
        with self._lock:
            return self.counters.get(name, 0)

    # -- totals -----------------------------------------------------------
    #
    # Every read goes through a lock-consistent snapshot: pool threads
    # (``local_parallelism > 1``) may be appending stages / bumping counters
    # while the driver reads, and iterating a mutating dict raises.

    def _stages_view(self) -> list[StageRecord]:
        with self._lock:
            return list(self.stages)

    def _counters_view(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.counters)

    @property
    def consolidation_bytes(self) -> int:
        return sum(s.consolidation_bytes for s in self._stages_view())

    @property
    def aggregation_bytes(self) -> int:
        return sum(s.aggregation_bytes for s in self._stages_view())

    @property
    def comm_bytes(self) -> int:
        """Paper's communication cost: consolidation + aggregation traffic.

        Summed from one snapshot — composing the two byte properties would
        read two different snapshots under concurrent recording.
        """
        return sum(
            s.consolidation_bytes + s.aggregation_bytes
            for s in self._stages_view()
        )

    @property
    def flops(self) -> int:
        return sum(s.flops for s in self._stages_view())

    @property
    def elapsed_seconds(self) -> float:
        """Modeled end-to-end elapsed time (stages are sequential)."""
        return sum(s.seconds for s in self._stages_view())

    @property
    def peak_task_memory(self) -> int:
        return max((s.peak_task_memory for s in self._stages_view()), default=0)

    @property
    def num_stages(self) -> int:
        with self._lock:
            return len(self.stages)

    @property
    def num_tasks(self) -> int:
        return sum(s.num_tasks for s in self._stages_view())

    @property
    def num_attempts(self) -> int:
        """Task attempts including retries (== num_tasks without faults)."""
        return sum(s.attempts for s in self._stages_view())

    @property
    def num_retries(self) -> int:
        return sum(s.retries for s in self._stages_view())

    @property
    def num_aborted_stages(self) -> int:
        """Stages whose body raised (O.O.M. / timeout) before closing."""
        return sum(1 for s in self._stages_view() if s.aborted)

    @property
    def max_skew_ratio(self) -> float:
        """Worst per-stage load imbalance seen during the run."""
        return max((s.skew_ratio for s in self._stages_view()), default=1.0)

    def per_unit_totals(self) -> Dict[int, Dict[str, object]]:
        """Modeled totals grouped by physical-plan unit index.

        Stages recorded outside a unit scope (``unit is None``) are
        skipped; keys are unit indices in ascending order.
        """
        grouped: Dict[int, list[StageRecord]] = {}
        for stage in self._stages_view():
            if stage.unit is not None:
                grouped.setdefault(stage.unit, []).append(stage)
        return {
            unit: {
                "num_stages": len(stages),
                "num_tasks": sum(s.num_tasks for s in stages),
                "comm_bytes": sum(s.comm_bytes for s in stages),
                "flops": sum(s.flops for s in stages),
                "elapsed_seconds": sum(s.seconds for s in stages),
                "wall_seconds": sum(s.wall_seconds for s in stages),
            }
            for unit, stages in sorted(grouped.items())
        }

    # -- bookkeeping -------------------------------------------------------

    def totals(self) -> Dict[str, object]:
        """Every modeled total as one dict (counters excluded on purpose:
        they may legitimately differ between runs whose modeled behaviour
        is identical).  Computed from a single snapshot so the values are
        mutually consistent even while stages are being recorded."""
        stages = self._stages_view()
        return {
            "num_stages": len(stages),
            "num_tasks": sum(s.num_tasks for s in stages),
            "num_attempts": sum(s.attempts for s in stages),
            "consolidation_bytes": sum(s.consolidation_bytes for s in stages),
            "aggregation_bytes": sum(s.aggregation_bytes for s in stages),
            "flops": sum(s.flops for s in stages),
            "elapsed_seconds": sum(s.seconds for s in stages),
            "peak_task_memory": max(
                (s.peak_task_memory for s in stages), default=0
            ),
            "num_aborted_stages": sum(1 for s in stages if s.aborted),
        }

    def reset(self) -> None:
        with self._lock:
            self.stages.clear()
            self.counters.clear()

    def copy(self) -> "MetricsCollector":
        """An independent copy of the current state (stages + counters)."""
        with self._lock:
            return MetricsCollector(
                stages=list(self.stages), counters=dict(self.counters)
            )

    def snapshot(self) -> Dict[str, object]:
        """Everything observable as one plain dict: the modeled totals of
        :meth:`totals` plus a ``"counters"`` sub-dict.  This is the public
        embedding surface — ``service.status()`` and log lines include it
        verbatim instead of reaching into fields."""
        snap = self.totals()
        snap["counters"] = self._counters_view()
        return snap

    def diff_since(self, baseline: "MetricsCollector") -> "MetricsCollector":
        """Metrics accumulated after the :meth:`copy` *baseline* was taken."""
        with self._lock:
            stages = self.stages[len(baseline.stages):]
            counters = dict(self.counters)
        deltas = {
            name: value - baseline.counters.get(name, 0)
            for name, value in counters.items()
            if value != baseline.counters.get(name, 0)
        }
        return MetricsCollector(stages=stages, counters=deltas)

    def __iter__(self) -> Iterator[StageRecord]:
        return iter(self._stages_view())

    def summary(self) -> str:
        from repro.utils.formatting import format_bytes, format_seconds

        text = (
            f"{self.num_stages} stages, {self.num_tasks} tasks, "
            f"comm={format_bytes(self.comm_bytes)} "
            f"(consolidation={format_bytes(self.consolidation_bytes)}, "
            f"aggregation={format_bytes(self.aggregation_bytes)}), "
            f"flops={self.flops:,}, "
            f"elapsed={format_seconds(self.elapsed_seconds)}"
        )
        if self.num_retries:
            text += f", retries={self.num_retries}"
        if self.num_aborted_stages:
            text += f", aborted_stages={self.num_aborted_stages}"
        return text
