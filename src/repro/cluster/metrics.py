"""Execution metrics: the numbers every figure in the paper reports.

A :class:`MetricsCollector` accumulates per-stage records and exposes the two
headline series of the evaluation: *communication cost* (bytes moved in the
consolidation + aggregation steps, Figures 12(e-g), 14(d,h)) and *elapsed
time* (modeled seconds, Figures 12(a-d,h), 14(a-c,e-g), 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class StageRecord:
    """Totals for one executed stage (one wave-set of parallel tasks)."""

    name: str
    num_tasks: int
    consolidation_bytes: int
    aggregation_bytes: int
    flops: int
    seconds: float
    peak_task_memory: int

    @property
    def comm_bytes(self) -> int:
        return self.consolidation_bytes + self.aggregation_bytes


@dataclass
class MetricsCollector:
    """Accumulates stage records and running totals for one engine run."""

    stages: list[StageRecord] = field(default_factory=list)

    def record(self, stage: StageRecord) -> None:
        self.stages.append(stage)

    # -- totals -----------------------------------------------------------

    @property
    def consolidation_bytes(self) -> int:
        return sum(s.consolidation_bytes for s in self.stages)

    @property
    def aggregation_bytes(self) -> int:
        return sum(s.aggregation_bytes for s in self.stages)

    @property
    def comm_bytes(self) -> int:
        """Paper's communication cost: consolidation + aggregation traffic."""
        return self.consolidation_bytes + self.aggregation_bytes

    @property
    def flops(self) -> int:
        return sum(s.flops for s in self.stages)

    @property
    def elapsed_seconds(self) -> float:
        """Modeled end-to-end elapsed time (stages are sequential)."""
        return sum(s.seconds for s in self.stages)

    @property
    def peak_task_memory(self) -> int:
        return max((s.peak_task_memory for s in self.stages), default=0)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def num_tasks(self) -> int:
        return sum(s.num_tasks for s in self.stages)

    # -- bookkeeping -------------------------------------------------------

    def reset(self) -> None:
        self.stages.clear()

    def snapshot(self) -> "MetricsCollector":
        """An independent copy of the current state."""
        return MetricsCollector(stages=list(self.stages))

    def diff_since(self, snapshot: "MetricsCollector") -> "MetricsCollector":
        """Metrics accumulated after *snapshot* was taken."""
        return MetricsCollector(stages=self.stages[snapshot.num_stages:])

    def __iter__(self) -> Iterator[StageRecord]:
        return iter(self.stages)

    def summary(self) -> str:
        from repro.utils.formatting import format_bytes, format_seconds

        return (
            f"{self.num_stages} stages, {self.num_tasks} tasks, "
            f"comm={format_bytes(self.comm_bytes)} "
            f"(consolidation={format_bytes(self.consolidation_bytes)}, "
            f"aggregation={format_bytes(self.aggregation_bytes)}), "
            f"flops={self.flops:,}, "
            f"elapsed={format_seconds(self.elapsed_seconds)}"
        )
