"""The simulated distributed substrate (the repo's Apache Spark stand-in).

Real Spark on a real 8-node cluster is replaced by :class:`SimulatedCluster`:
every block-level kernel still runs for real (numpy/scipy), but "distribution"
is modeled — operators declare which blocks each task receives during the
*matrix consolidation* step and which partial blocks move during the *matrix
aggregation* step (the two steps whose traffic the paper reports as
communication cost), each task keeps a memory ledger checked against the
per-task budget ``theta_t`` (raising the same O.O.M. failures the paper
observes for BFO/MatFast), and elapsed time follows the paper's own cost
shape, Eq. 2: ``max(net / (N * Bn), comp / (N * Bc))`` per stage, corrected
for partial cluster utilization when a stage has fewer tasks than slots.
"""

from repro.cluster.metrics import MetricsCollector, StageRecord
from repro.cluster.parallel import parallel_map
from repro.cluster.slice_cache import SliceCache
from repro.cluster.task import TaskContext, TransferKind
from repro.cluster.executor import SimulatedCluster, Stage
from repro.cluster.simulation import stage_seconds, task_seconds
from repro.cluster.runtime import (
    ClusterRuntime,
    FaultPlan,
    ScheduledStage,
    TaskAttempt,
    TraceRecorder,
)

__all__ = [
    "MetricsCollector",
    "StageRecord",
    "SliceCache",
    "parallel_map",
    "TaskContext",
    "TransferKind",
    "SimulatedCluster",
    "Stage",
    "stage_seconds",
    "task_seconds",
    "ClusterRuntime",
    "FaultPlan",
    "ScheduledStage",
    "TaskAttempt",
    "TraceRecorder",
]
