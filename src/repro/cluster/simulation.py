"""The elapsed-time model (Eq. 2 of the paper).

The paper estimates the cost of a distributed stage as the larger of its
network time and its computation time, because Spark overlaps communication
and computation at block granularity::

    Cost(c, F) = max(NetEst / (N * Bn), ComEst / (N * Bc))        (Eq. 2)

We apply the same shape to *measured* traffic and flops, with one refinement
the paper discusses qualitatively in its "overall analysis" of Section 6.2: a
stage that runs fewer tasks than the cluster has slots cannot use the whole
cluster, so its effective bandwidths scale with utilization (this is why the
paper's BFO is slow on very sparse inputs: X repartitions into only ~13
partitions, starving the other ~83 slots).
"""

from __future__ import annotations

import math

from repro.config import ClusterConfig


def stage_seconds(
    cluster: ClusterConfig,
    num_tasks: int,
    net_bytes: int,
    flops: int,
    overlap: bool = True,
) -> float:
    """Modeled wall-clock seconds for one stage.

    Parameters
    ----------
    cluster:
        Cluster shape and bandwidths.
    num_tasks:
        Tasks launched by the stage.
    net_bytes:
        Bytes moved during the stage (consolidation + aggregation).
    flops:
        Floating point operations executed by the stage.
    overlap:
        Model communication/computation overlap (Eq. 2's ``max``); when
        False the two terms add, an ablation of the overlap assumption.
    """
    if num_tasks <= 0:
        return 0.0
    slots = cluster.total_tasks
    utilization = min(num_tasks, slots) / slots
    effective_net = cluster.num_nodes * cluster.network_bandwidth * utilization
    effective_comp = cluster.num_nodes * cluster.compute_bandwidth * utilization
    net_time = net_bytes / effective_net
    comp_time = flops / effective_comp
    busy = max(net_time, comp_time) if overlap else net_time + comp_time
    waves = math.ceil(num_tasks / slots)
    return busy + waves * cluster.task_launch_overhead


def task_seconds(
    cluster: ClusterConfig,
    net_bytes: int,
    flops: int,
    overlap: bool = True,
) -> float:
    """Eq. 2 applied to ONE task running on one slot.

    Each of a node's ``Tc`` slots owns a ``1/Tc`` share of the node's
    network and compute bandwidth, so a fully-loaded stage of uniform tasks
    takes exactly the aggregate :func:`stage_seconds` time, while skewed
    task sets pay for their longest slot timeline instead of their average
    (the event-driven runtime's whole point).  Launch overhead is *not*
    included here; the scheduler charges it per attempt.
    """
    slot_net = cluster.network_bandwidth / cluster.tasks_per_node
    slot_comp = cluster.compute_bandwidth / cluster.tasks_per_node
    net_time = net_bytes / slot_net
    comp_time = flops / slot_comp
    return max(net_time, comp_time) if overlap else net_time + comp_time
