"""Consolidation slice cache.

Cuboid partitioning hands many tasks the *same* slab of a frontier matrix:
the ``R`` tasks of one ``(p, q)`` column all consolidate the identical
O-space slice, and broadcast-style tags (a whole-axis range) repeat across
entire task rows.  Materializing a slab (``block_slice().as_single_block()``)
is a full copy of its data, and it used to run once per task on a serial
Python loop — the dominant wall-clock cost of an execute.

:class:`SliceCache` shares one materialized :class:`~repro.blocks.Block` per
``(matrix identity, matrix version, row_range, col_range)``.  Blocks are
immutable (kernels are pure, returning new blocks), so sharing is safe
across tasks and worker threads.  Only the redundant *real* copies
disappear — every task still declares its transfer via ``task.receive``, so
modeled traffic, memory ledgers and elapsed seconds are byte-for-byte
unchanged.

The cache is owned by the :class:`~repro.execution.Engine` and survives
across executes: iterative workloads (GNMF re-binds the same ``X`` every
iteration) hit it from iteration 2 on even though each execute runs on a
fresh cluster.  Two mechanisms keep reuse safe over that longer lifetime:

* matrix identity is ``id()``-based, so entries pin their source matrix
  alive to keep the key stable; :meth:`~BlockedMatrix.set_block` bumps the
  matrix's ``version``, which is part of the key, so mutated content can
  never be served stale;
* entries are evicted LRU once the cache holds more than ``max_bytes`` of
  materialized slabs, which also unpins dead matrices (and dead versions)
  over time.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Tuple

from repro.blocks.block import Block
from repro.matrix.distributed import BlockedMatrix

BlockRange = Tuple[int, int]
_Key = Tuple[int, int, BlockRange, BlockRange]

#: Default cap on materialized slab bytes held across executes.
DEFAULT_MAX_BYTES = 256 << 20


class SliceCache:
    """Thread-safe ``(matrix, row_range, col_range) -> Block`` memo.

    With ``enabled=False`` every lookup materializes a fresh copy (the
    pre-fast-path behaviour, kept for A/B wall-clock measurements via
    ``EngineConfig(slice_reuse=False)``).
    """

    def __init__(self, enabled: bool = True, max_bytes: int = DEFAULT_MAX_BYTES):
        self.enabled = enabled
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        # value keeps a strong reference to the source matrix so its id()
        # cannot be recycled while the entry lives
        self._entries: "OrderedDict[_Key, tuple[BlockedMatrix, Block]]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    def get(
        self,
        matrix: BlockedMatrix,
        row_range: BlockRange,
        col_range: BlockRange,
    ) -> Block:
        """The materialized slab for this range, shared across tasks."""
        if not self.enabled:
            return matrix.block_slice(row_range, col_range).as_single_block()
        key = (id(matrix), matrix.version, row_range, col_range)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[1]
            # materialize under the lock: a miss is unique per key, so the
            # hit/miss counts stay deterministic under parallel evaluation
            block = matrix.block_slice(row_range, col_range).as_single_block()
            self._entries[key] = (matrix, block)
            self._bytes += block.nbytes
            self.misses += 1
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                _, (_, evicted) = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
            return block

    def reset(self, enabled: bool | None = None) -> None:
        """Drop all entries and zero the counters."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            if enabled is not None:
                self.enabled = enabled

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    @property
    def cached_bytes(self) -> int:
        return self._bytes

    def stats(self) -> dict:
        """Hit/miss counts and occupancy as a plain dict (for status pages)."""
        with self._lock:
            hits, misses = self.hits, self.misses
            entries, cached = len(self._entries), self._bytes
        total = hits + misses
        return {
            "enabled": self.enabled,
            "entries": entries,
            "bytes": cached,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"SliceCache(enabled={self.enabled}, entries={self.num_entries}, "
            f"hits={self.hits}, misses={self.misses})"
        )
