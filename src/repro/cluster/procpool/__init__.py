"""Process/shared-memory execution substrate (the "break the GIL" backend).

``repro.cluster.procpool`` is a *generic* process-parallel substrate: a
shared-memory block store for zero-copy matrix handoff
(:class:`SharedBlockStore`), and a persistent crash-tolerant pool of spawn
workers (:class:`ProcessPool`) that runs picklable ``(fn, payload)`` task
descriptors.  It knows nothing about planning or engines — the physical
layer (``repro.core.procexec``) supplies the task functions.  By layering
rule this package must never import ``repro.core``, ``repro.serving`` or
``repro.obs`` (enforced by ``scripts/check_layers.py``).
"""

from repro.cluster.procpool.pool import (
    PoolBrokenError,
    PoolStats,
    ProcessPool,
    TaskOutcome,
    WorkerCrashError,
)
from repro.cluster.procpool.store import (
    MatrixRef,
    SegmentRef,
    SharedBlockStore,
    open_matrix,
    write_matrix,
)

__all__ = [
    "MatrixRef",
    "PoolBrokenError",
    "PoolStats",
    "ProcessPool",
    "SegmentRef",
    "SharedBlockStore",
    "TaskOutcome",
    "WorkerCrashError",
    "open_matrix",
    "write_matrix",
]
