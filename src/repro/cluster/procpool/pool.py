"""A persistent, crash-tolerant pool of spawn-safe worker processes.

The pool is the execution substrate of the process backend
(``EngineConfig(execution_backend="process")``): workers are real OS
processes, so numpy/scipy kernels that would contend on the GIL inside one
interpreter genuinely run in parallel.

Design points:

* **spawn context** — workers are started with the ``spawn`` method (never
  ``fork``), so they hold no accidental copies of driver state and behave
  identically under any embedding (threads, servers, notebooks);
* **lazy + persistent** — nothing starts until the first batch; once
  started, workers survive across batches (and across queries, when the
  pool is engine-owned), amortizing interpreter/numpy import cost;
* **one task queue per worker** — the driver hands each worker exactly one
  task at a time, so when a worker dies the casualty is known precisely
  (no shared-queue claim ambiguity) and can be resubmitted elsewhere;
* **bounded respawn** — a crashed worker is replaced and its task retried;
  when the respawn budget or a task's retry budget is exhausted the pool
  declares itself broken and raises :class:`PoolBrokenError` carrying every
  finished result, so the caller can fall back (the scheduler reruns the
  rest on the thread backend) **without losing completed work or ever
  returning a wrong answer**.

Results are returned in submission order; task *errors* (exceptions raised
by the task function) are not crashes — they are recorded per task and
surfaced to the caller in order, exactly like a serial loop would.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.procpool.worker import ERR, decode_error, worker_loop

#: Replacement workers the pool will start over its lifetime before giving up.
DEFAULT_RESPAWN_LIMIT = 3
#: Times one task may be attempted (first run + retries after crashes).
DEFAULT_TASK_ATTEMPTS = 2


class WorkerCrashError(RuntimeError):
    """A worker process died while running a task."""


class PoolBrokenError(RuntimeError):
    """The pool gave up (respawn budget exhausted or start-up failed).

    ``completed`` maps task index -> :class:`TaskOutcome` for everything
    that finished before the pool broke, so callers can salvage the batch.
    """

    def __init__(
        self,
        message: str,
        completed: Optional[Dict[int, "TaskOutcome"]] = None,
        worker_pid: Optional[int] = None,
    ):
        super().__init__(message)
        self.completed: Dict[int, TaskOutcome] = completed or {}
        #: OS pid of the worker whose death broke the pool (when known).
        self.worker_pid = worker_pid


@dataclass
class TaskOutcome:
    """One finished task: its value or error, plus timing for observability."""

    index: int
    value: object = None
    error: Optional[BaseException] = None
    worker_id: int = -1
    worker_pid: int = -1
    busy_seconds: float = 0.0
    submitted_at: float = 0.0
    completed_at: float = 0.0


@dataclass
class PoolStats:
    """Cumulative utilization counters (observability only)."""

    workers: int = 0
    batches: int = 0
    tasks: int = 0
    errors: int = 0
    respawns: int = 0
    busy_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "batches": self.batches,
            "tasks": self.tasks,
            "errors": self.errors,
            "respawns": self.respawns,
            "busy_seconds": round(self.busy_seconds, 6),
        }


@dataclass
class _Worker:
    process: multiprocessing.process.BaseProcess
    task_queue: object
    #: Index of the batch task this worker is running (None when idle).
    running: Optional[int] = None
    submitted_at: float = field(default=0.0)


class ProcessPool:
    """A fixed-width pool of persistent spawn workers.

    Parameters
    ----------
    workers:
        Pool width; sized from ``EngineConfig.local_parallelism`` by the
        engine.  Must be positive.
    respawn_limit:
        Total replacement workers allowed before the pool breaks.
    task_attempts:
        Attempts per task (including the first) before the pool breaks.
    """

    def __init__(
        self,
        workers: int,
        respawn_limit: int = DEFAULT_RESPAWN_LIMIT,
        task_attempts: int = DEFAULT_TASK_ATTEMPTS,
    ):
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.width = workers
        self.respawn_limit = respawn_limit
        self.task_attempts = task_attempts
        self.stats = PoolStats(workers=workers)
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: List[_Worker] = []
        self._result_queue = None
        self._started = False
        self._broken = False
        self._closed = False
        self._batch_seq = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._started

    @property
    def broken(self) -> bool:
        return self._broken

    @property
    def closed(self) -> bool:
        return self._closed

    def ensure_started(self) -> None:
        """Start the workers (idempotent; raises PoolBrokenError on failure)."""
        if self._broken or self._closed:
            raise PoolBrokenError("process pool is no longer usable")
        if self._started:
            return
        try:
            self._result_queue = self._ctx.Queue()
            for worker_id in range(self.width):
                self._workers.append(self._spawn(worker_id))
        except Exception as exc:
            self._broken = True
            self._teardown()
            raise PoolBrokenError(f"process pool failed to start: {exc!r}") from exc
        self._started = True

    def _spawn(self, worker_id: int) -> _Worker:
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_loop,
            args=(worker_id, task_queue, self._result_queue),
            name=f"repro-procpool-{worker_id}",
            daemon=True,
        )
        process.start()
        return _Worker(process=process, task_queue=task_queue)

    def close(self) -> None:
        """Stop every worker and release the queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._teardown()

    def _teardown(self) -> None:
        for worker in self._workers:
            if worker.process.is_alive():
                try:
                    worker.task_queue.put(None)
                except Exception:  # pragma: no cover - queue already broken
                    pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.task_queue.close()
            except Exception:  # pragma: no cover
                pass
        if self._result_queue is not None:
            try:
                self._result_queue.close()
            except Exception:  # pragma: no cover
                pass
            self._result_queue = None
        self._workers.clear()
        self._started = False

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- batch execution ---------------------------------------------------

    def run_tasks(
        self, tasks: Sequence[Tuple[Callable[[object], object], object]]
    ) -> List[TaskOutcome]:
        """Run ``(fn, payload)`` tasks and return outcomes in submission order.

        Task exceptions come back as ``outcome.error`` (never raised here —
        the caller owns ordering semantics).  Worker crashes trigger
        respawn + retry; past the budgets the pool breaks with
        :class:`PoolBrokenError` carrying the finished outcomes.
        """
        self.ensure_started()
        total = len(tasks)
        if total == 0:
            return []
        self.stats.batches += 1
        self._batch_seq += 1
        batch = self._batch_seq

        outcomes: Dict[int, TaskOutcome] = {}
        attempts: Dict[int, int] = {}
        backlog: List[int] = list(range(total))

        def assign(worker: _Worker) -> None:
            if worker.running is not None or not backlog:
                return
            index = backlog[0]
            fn, payload = tasks[index]
            # pre-pickle in the caller: multiprocessing queues serialize in
            # a background feeder thread where an unpicklable task would
            # fail *silently* and hang the driver — here it breaks the pool
            # synchronously and the caller falls back to threads
            try:
                blob = pickle.dumps(((batch, index), fn, payload))
            except Exception as exc:
                self._broken = True
                self._teardown()
                raise PoolBrokenError(
                    f"task {index} is not picklable: {exc!r}",
                    completed=dict(outcomes),
                ) from exc
            backlog.pop(0)
            attempts[index] = attempts.get(index, 0) + 1
            worker.running = index
            worker.submitted_at = time.perf_counter()
            worker.task_queue.put(blob)

        for worker in self._workers:
            assign(worker)

        while len(outcomes) < total:
            try:
                worker_id, worker_pid, task_id, blob, busy = \
                    self._result_queue.get(timeout=0.2)
            except queue_mod.Empty:
                self._reap_crashes(outcomes, backlog, attempts)
                for worker in self._workers:
                    assign(worker)
                continue
            result_batch, index = task_id
            if result_batch != batch or index in outcomes:
                # stale delivery: a retried task's first result surfacing
                # late (the retry already counted) — drop it
                continue
            worker = self._workers[worker_id]
            outcome = TaskOutcome(
                index=index,
                worker_id=worker_id,
                worker_pid=worker_pid,
                busy_seconds=busy,
                submitted_at=worker.submitted_at,
                completed_at=time.perf_counter(),
            )
            status, payload = pickle.loads(blob)
            if status == ERR:
                outcome.error = decode_error(payload)
                self.stats.errors += 1
            else:
                outcome.value = payload
            outcomes[index] = outcome
            self.stats.tasks += 1
            self.stats.busy_seconds += busy
            worker.running = None
            assign(worker)

        return [outcomes[i] for i in range(total)]

    def _reap_crashes(
        self,
        outcomes: Dict[int, TaskOutcome],
        backlog: List[int],
        attempts: Dict[int, int],
    ) -> None:
        """Replace dead workers; requeue their tasks or break the pool."""
        for worker_id, worker in enumerate(self._workers):
            if worker.process.is_alive():
                continue
            casualty = worker.running
            if (
                self.stats.respawns >= self.respawn_limit
                or (
                    casualty is not None
                    and attempts.get(casualty, 0) >= self.task_attempts
                )
            ):
                dead_pid = worker.process.pid
                self._broken = True
                self._teardown()
                raise PoolBrokenError(
                    f"worker {worker_id} (pid {dead_pid}) died"
                    + (f" running task {casualty}" if casualty is not None else "")
                    + f" (respawns={self.stats.respawns}, "
                    f"limit={self.respawn_limit}); pool is broken",
                    completed=dict(outcomes),
                    worker_pid=dead_pid,
                )
            self.stats.respawns += 1
            try:
                worker.task_queue.close()
            except Exception:  # pragma: no cover
                pass
            self._workers[worker_id] = self._spawn(worker_id)
            if casualty is not None:
                backlog.insert(0, casualty)

    def __repr__(self) -> str:
        state = (
            "closed" if self._closed
            else "broken" if self._broken
            else "started" if self._started
            else "cold"
        )
        return f"ProcessPool(width={self.width}, {state}, {self.stats.as_dict()})"
