"""The process-pool worker loop (runs in a spawned child process).

Deliberately tiny and generic: a worker pulls ``(task_id, fn, payload)``
tuples off its private task queue, runs ``fn(payload)``, and pushes the
result back on the shared result queue.  The function arrives pickled by
reference (its defining module is imported in the child), so the pool stays
a pure substrate — *what* runs in a task is decided entirely by the caller,
which keeps this package free of any dependency on the planning layers.

Results are pre-pickled by the worker itself: :mod:`multiprocessing` queues
serialize in a background feeder thread, where an unpicklable object would
fail silently and strand the driver.  Pickling in the worker turns that
failure mode into an ordinary reported error.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback

#: Message statuses on the result queue.
OK = "ok"
ERR = "err"


def encode_error(exc: BaseException) -> tuple:
    """A picklable description of *exc* (the exception itself if it pickles,
    else its traceback text)."""
    text = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
    try:
        blob = pickle.dumps(exc)
        # dumps alone is not proof: exceptions whose constructors take
        # non-message arguments can serialize fine and explode on loads
        # (Exception.__reduce__ replays cls(*args)); verify the round trip
        # here so the driver never has to guess
        pickle.loads(blob)
        return ("pickled", blob, text)
    except Exception:
        return ("text", None, text)


def decode_error(encoded: tuple) -> BaseException:
    """The original exception when possible, else a RuntimeError carrying
    the remote traceback."""
    kind, blob, text = encoded
    if kind == "pickled":
        try:
            return pickle.loads(blob)
        except Exception:  # pragma: no cover - defensive
            pass
    return RuntimeError(f"process-pool task failed remotely:\n{text}")


def worker_loop(worker_id: int, task_queue, result_queue) -> None:
    """Entry point of one pool worker; exits on the ``None`` sentinel.

    Tasks arrive as pre-pickled blobs (the driver serializes them itself so
    pickling failures surface synchronously instead of stranding the queue's
    feeder thread); the ``None`` shutdown sentinel is sent unpickled.
    """
    while True:
        item = task_queue.get()
        if item is None:
            return
        task_id, fn, payload = pickle.loads(item)
        start = time.perf_counter()
        try:
            value = fn(payload)
            blob = pickle.dumps((OK, value))
        except BaseException as exc:  # noqa: BLE001 - reported, not swallowed
            blob = pickle.dumps((ERR, encode_error(exc)))
        busy = time.perf_counter() - start
        try:
            # the pid rides alongside so driver-side traces can attribute
            # work to the real OS process, not just the logical worker slot
            result_queue.put((worker_id, os.getpid(), task_id, blob, busy))
        except Exception:  # pragma: no cover - queue torn down under us
            os._exit(70)
