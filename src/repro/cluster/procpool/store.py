"""The shared-memory block store: zero-copy matrix handoff between processes.

The process execution backend must move :class:`~repro.matrix.distributed.
BlockedMatrix` payloads between the driver and worker processes without
pickling them through a pipe.  The store does that with *segments*:

* a **shm segment** (:mod:`multiprocessing.shared_memory`) — the fast path
  for driver-registered inputs; created once per ``(matrix, version)`` and
  attached by any number of workers as zero-copy numpy views;
* a **file segment** (an mmap'd file under the store's spill directory) —
  the fallback when POSIX shared memory is unavailable or full, and the
  path worker processes use to write results back (file-backed segments
  have no cross-process resource-tracker lifetime hazards: the driver owns
  the directory and deletes it deterministically).

Every block payload is registered **once** and addressed by
``(matrix_id, version, block_index)``: a :class:`MatrixRef` is a small
picklable descriptor carrying the segment reference plus per-array
``(offset, dtype, shape)`` slots, so task descriptors stay tiny no matter
how large the matrices are.  All arrays of one matrix pack into a single
segment (64-byte aligned), so a matrix costs one shm object / file, not one
per tile.

Worker-side views are read-only: a kernel that tried to scribble on shared
input memory would corrupt sibling tasks, so the store never hands out a
writable view of registered payloads.
"""

from __future__ import annotations

import mmap
import os
import shutil
import tempfile
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.blocks.block import Block
from repro.matrix.distributed import BlockedMatrix
from repro.matrix.meta import MatrixMeta

try:  # pragma: no cover - exercised indirectly; absent on exotic builds
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

#: Segment offsets are aligned so every view starts on a cache line.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


# ---------------------------------------------------------------------------
# segments


@dataclass(frozen=True)
class SegmentRef:
    """Picklable address of one shared payload region.

    ``kind`` is ``"shm"`` (POSIX shared memory, ``name`` is the shm name) or
    ``"file"`` (``name`` is an absolute path under the store directory).
    """

    kind: str
    name: str
    nbytes: int


def _close_shm(handle) -> None:
    """Close a SharedMemory handle even while numpy views are still alive.

    When a view exported from the buffer outlives us, ``close()`` raises
    BufferError — and would raise *again* from the handle's destructor at
    gc time ("Exception ignored in __del__" noise).  Disarm the handle
    instead: release the fd now and drop the buffer references, so the
    mapping lives exactly as long as the last view and the destructor
    becomes a no-op.  Nothing leaks past process exit either way.
    """
    try:
        handle.close()
        return
    except BufferError:
        pass
    fd = getattr(handle, "_fd", -1)
    if fd >= 0:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover - already closed elsewhere
            pass
        handle._fd = -1
    handle._buf = None
    handle._mmap = None


class _ShmSegment:
    """A driver-created POSIX shared-memory segment."""

    def __init__(self, nbytes: int):
        if _shm is None:
            raise OSError("multiprocessing.shared_memory unavailable")
        self._shm = _shm.SharedMemory(create=True, size=max(1, nbytes))
        self.ref = SegmentRef("shm", self._shm.name, nbytes)

    @property
    def buffer(self) -> memoryview:
        return self._shm.buf

    def close(self) -> None:
        _close_shm(self._shm)

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class _FileSegment:
    """An mmap'd file segment (spill fallback + worker result path)."""

    def __init__(self, nbytes: int, directory: str, name: Optional[str] = None):
        path = os.path.join(
            directory, name or f"seg-{os.getpid()}-{uuid.uuid4().hex}.bin"
        )
        with open(path, "wb") as handle:
            handle.truncate(max(1, nbytes))
        self._file = open(path, "r+b")
        self._mmap = mmap.mmap(self._file.fileno(), max(1, nbytes))
        self.ref = SegmentRef("file", path, nbytes)

    @property
    def buffer(self) -> memoryview:
        return memoryview(self._mmap)

    def close(self) -> None:
        for closer in (self._mmap.close, self._file.close):
            try:
                closer()
            except (BufferError, ValueError):
                pass

    def unlink(self) -> None:
        try:
            os.unlink(self.ref.name)
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class _Attachment:
    """A read-side mapping of an existing segment (worker or driver)."""

    def __init__(self, ref: SegmentRef):
        self.ref = ref
        self._closers: List[Callable[[], None]] = []
        if ref.kind == "shm":
            if _shm is None:
                raise OSError("multiprocessing.shared_memory unavailable")
            # NOTE: attaching registers the name with the resource tracker
            # again (CPython registers on attach too), but spawn children
            # inherit the driver's tracker fd, so that is a duplicate add in
            # the *same* tracker set — harmless, and the driver's unlink
            # still removes the single entry.  Do NOT "defensively"
            # unregister here: with a shared tracker that would delete the
            # driver's registration out from under it.
            handle = _shm.SharedMemory(name=ref.name)
            self.buffer: memoryview = handle.buf
            self._closers.append(lambda: _close_shm(handle))
        else:
            file = open(ref.name, "rb")
            mapped = mmap.mmap(file.fileno(), 0, access=mmap.ACCESS_READ)
            self.buffer = memoryview(mapped)
            self._closers.extend((mapped.close, file.close))

    def close(self) -> None:
        self.buffer = None  # type: ignore[assignment]
        for closer in self._closers:
            try:
                closer()
            except (BufferError, ValueError):
                # a numpy view outlives us; the mapping is freed when the
                # last view dies (the segment itself is already unlinked by
                # whoever owns it, so nothing leaks past process exit)
                pass


# ---------------------------------------------------------------------------
# matrix packing


@dataclass(frozen=True)
class ArraySlot:
    """One packed ndarray: where it lives inside the matrix's segment."""

    offset: int
    dtype: str
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class BlockRef:
    """One tile: a dense slot, or the CSR triple (data, indices, indptr)."""

    key: Tuple[int, int]
    kind: str  # "dense" | "sparse"
    shape: Tuple[int, int]
    slots: Tuple[ArraySlot, ...]


@dataclass(frozen=True)
class MatrixRef:
    """Picklable handle for a registered matrix.

    Workers rebuild a :class:`BlockedMatrix` of zero-copy views from this;
    payloads are keyed ``(matrix_id, version, block_index)`` — the identity
    triple cache layers use to decide reuse.
    """

    matrix_id: int
    version: int
    rows: int
    cols: int
    block_size: int
    density: float
    segment: Optional[SegmentRef]
    blocks: Tuple[BlockRef, ...] = ()


def _block_arrays(block: Block) -> Tuple[str, List[np.ndarray]]:
    if block.is_sparse:
        csr = block.data
        return "sparse", [csr.data, csr.indices, csr.indptr]
    return "dense", [block.data]


def _plan_matrix(matrix: BlockedMatrix):
    """Lay the matrix's arrays out in one segment: (total, block plans)."""
    offset = 0
    plans = []
    for key, block in matrix.iter_blocks():
        kind, arrays = _block_arrays(block)
        slots = []
        for arr in arrays:
            offset = _aligned(offset)
            slots.append(
                (offset, np.ascontiguousarray(arr), str(arr.dtype), arr.shape)
            )
            offset += arr.nbytes
        plans.append((key, kind, block.shape, slots))
    return offset, plans


def pack_matrix(
    matrix: BlockedMatrix,
    matrix_id: int,
    make_segment: Callable[[int], object],
) -> Tuple[Optional[object], MatrixRef]:
    """Copy *matrix*'s payloads into one fresh segment and describe them.

    Returns ``(segment, ref)``; the segment is ``None`` for a matrix with no
    stored blocks (all-zero tiles need no payload at all).
    """
    total, plans = _plan_matrix(matrix)
    segment = None
    if plans:
        segment = make_segment(total)
        buffer = segment.buffer
        for _, _, _, slots in plans:
            for offset, arr, dtype, shape in slots:
                view = np.frombuffer(
                    buffer, dtype=dtype, count=arr.size, offset=offset
                )
                view[:] = arr.reshape(-1)
    refs = tuple(
        BlockRef(
            key=key,
            kind=kind,
            shape=shape,
            slots=tuple(
                ArraySlot(offset, dtype, arr_shape)
                for offset, _, dtype, arr_shape in slots
            ),
        )
        for key, kind, shape, slots in plans
    )
    ref = MatrixRef(
        matrix_id=matrix_id,
        version=matrix.version,
        rows=matrix.meta.rows,
        cols=matrix.meta.cols,
        block_size=matrix.meta.block_size,
        density=matrix.meta.density,
        segment=segment.ref if segment is not None else None,
        blocks=refs,
    )
    return segment, ref


def _view(buffer, slot: ArraySlot) -> np.ndarray:
    count = 1
    for dim in slot.shape:
        count *= dim
    arr = np.frombuffer(
        buffer, dtype=slot.dtype, count=count, offset=slot.offset
    ).reshape(slot.shape)
    if arr.flags.writeable:
        arr.flags.writeable = False
    return arr


def _raw_block(data) -> Block:
    """Wrap an already-normalized payload without re-copying it."""
    block = Block.__new__(Block)
    block.data = data
    return block


def unpack_matrix(ref: MatrixRef, buffer) -> BlockedMatrix:
    """Rebuild a matrix of read-only zero-copy views over *buffer*."""
    meta = MatrixMeta(
        rows=ref.rows,
        cols=ref.cols,
        block_size=ref.block_size,
        density=ref.density,
    )
    matrix = BlockedMatrix(meta)
    for block_ref in ref.blocks:
        if block_ref.kind == "dense":
            payload = _view(buffer, block_ref.slots[0])
        else:
            data, indices, indptr = (
                _view(buffer, slot) for slot in block_ref.slots
            )
            payload = sp.csr_matrix(
                (data, indices, indptr), shape=block_ref.shape, copy=False
            )
        matrix.blocks[block_ref.key] = _raw_block(payload)
    matrix.version = ref.version
    return matrix


# ---------------------------------------------------------------------------
# worker-side helpers (no store instance: just refs + the spill directory)


def open_matrix(ref: MatrixRef) -> Tuple[BlockedMatrix, Callable[[], None]]:
    """Attach *ref* and return ``(matrix, close)`` — views die with close."""
    if ref.segment is None:
        return unpack_matrix(ref, b""), lambda: None
    attachment = _Attachment(ref.segment)
    return unpack_matrix(ref, attachment.buffer), attachment.close


_worker_seq = 0


def write_matrix(matrix: BlockedMatrix, directory: str) -> MatrixRef:
    """Pack *matrix* into a new file segment under *directory* (worker side).

    File-backed on purpose: results written by a worker must survive the
    worker and be unlinked by the driver, which file segments do without any
    shared-memory resource-tracker coordination.
    """
    global _worker_seq
    _worker_seq += 1
    matrix_id = (os.getpid() << 24) | _worker_seq
    segment, ref = pack_matrix(
        matrix, matrix_id, lambda nbytes: _FileSegment(nbytes, directory)
    )
    if segment is not None:
        segment.close()  # payload is on disk/page cache; driver re-attaches
    return ref


# ---------------------------------------------------------------------------
# the driver-side store


@dataclass
class _Entry:
    segment: Optional[object]
    ref: MatrixRef
    attachment: Optional[_Attachment] = None
    matrix: Optional[BlockedMatrix] = field(default=None, repr=False)


class SharedBlockStore:
    """Driver-side registry of every segment a query execution created.

    ``register`` copies a matrix's payload into shared memory exactly once
    per ``(identity, version)``; ``adopt`` maps a worker-written result in
    as a driver-readable view and re-exports the *same* ref to later waves,
    so a unit output consumed downstream never moves again.  ``close``
    unlinks everything — the store's lifetime is one plan execution.
    """

    def __init__(self, prefer_shm: bool = True):
        self.prefer_shm = prefer_shm and _shm is not None
        self._dir: Optional[str] = None
        self._entries: List[_Entry] = []
        #: (id(matrix), version) -> entry, for registration dedup.
        self._registered: Dict[Tuple[int, int], _Entry] = {}
        #: id(matrix) -> entry, for matrices the store materialized itself.
        self._owned: Dict[int, _Entry] = {}
        self._next_id = 0
        self._spills = 0

    # -- directory ---------------------------------------------------------

    @property
    def directory(self) -> str:
        """Spill/result directory (created lazily, removed by close)."""
        if self._dir is None:
            self._dir = tempfile.mkdtemp(prefix="repro-procpool-")
        return self._dir

    @property
    def spills(self) -> int:
        """Segments that fell back from shared memory to mmap files."""
        return self._spills

    # -- registration ------------------------------------------------------

    def _make_segment(self, nbytes: int):
        if self.prefer_shm:
            try:
                return _ShmSegment(nbytes)
            except OSError:
                self._spills += 1
        return _FileSegment(nbytes, self.directory)

    def register(self, matrix: BlockedMatrix) -> MatrixRef:
        """The matrix's ref, packing its payload on first sight only."""
        owned = self._owned.get(id(matrix))
        if owned is not None and owned.ref.version == matrix.version:
            return owned.ref
        key = (id(matrix), matrix.version)
        entry = self._registered.get(key)
        if entry is None:
            self._next_id += 1
            segment, ref = pack_matrix(matrix, self._next_id, self._make_segment)
            entry = _Entry(segment=segment, ref=ref)
            self._entries.append(entry)
            self._registered[key] = entry
        return entry.ref

    # -- adoption of worker results ---------------------------------------

    def adopt(self, ref: MatrixRef) -> BlockedMatrix:
        """Materialize a worker-written ref as a driver-side view matrix."""
        attachment = None
        buffer: object = b""
        if ref.segment is not None:
            attachment = _Attachment(ref.segment)
            buffer = attachment.buffer
        matrix = unpack_matrix(ref, buffer)
        entry = _Entry(segment=None, ref=ref, attachment=attachment, matrix=matrix)
        self._entries.append(entry)
        self._owned[id(matrix)] = entry
        return matrix

    def owns(self, matrix: BlockedMatrix) -> bool:
        return id(matrix) in self._owned

    def detach_copy(self, matrix: BlockedMatrix) -> BlockedMatrix:
        """A private deep copy of a store-backed matrix (store-independent).

        Applied to root outputs before the store closes, so results handed
        back to callers never reference unlinked segments.
        """
        if not self.owns(matrix):
            return matrix
        copied = BlockedMatrix(matrix.meta)
        for key, block in matrix.blocks.items():
            copied.blocks[key] = _raw_block(block.data.copy())
        copied.version = matrix.version
        return copied

    # -- lifecycle ---------------------------------------------------------

    def release(self, matrix: BlockedMatrix) -> None:
        """Unlink the segment behind a dead env value (wave-barrier frees)."""
        entry = self._owned.pop(id(matrix), None)
        if entry is None:
            entry = self._registered.pop((id(matrix), matrix.version), None)
        if entry is None:
            return
        self._unlink_entry(entry)

    def _unlink_entry(self, entry: _Entry) -> None:
        if entry.attachment is not None:
            entry.attachment.close()
            entry.attachment = None
        if entry.segment is not None:
            entry.segment.close()
            entry.segment.unlink()
            entry.segment = None
        elif entry.ref.segment is not None and entry.ref.segment.kind == "file":
            try:
                os.unlink(entry.ref.segment.name)
            except FileNotFoundError:
                pass

    def close(self) -> None:
        """Unlink every remaining segment and remove the spill directory."""
        for entry in self._entries:
            self._unlink_entry(entry)
        self._entries.clear()
        self._registered.clear()
        self._owned.clear()
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None

    def __enter__(self) -> "SharedBlockStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
