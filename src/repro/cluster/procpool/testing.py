"""Task functions for exercising the pool's failure paths from tests.

These live in the package (not in test modules) so spawn workers can always
import them by reference, regardless of how the test session's modules are
laid out on ``sys.path``.
"""

from __future__ import annotations

import os
import time


def echo_task(payload):
    """Return the payload unchanged."""
    return payload


def double_task(payload):
    """Arithmetic smoke task."""
    return payload * 2


def sleep_task(payload):
    """Sleep ``payload`` seconds, then return it."""
    time.sleep(float(payload))
    return payload


def fail_task(payload):
    """Raise a ValueError (an ordinary task *error*, not a crash)."""
    raise ValueError(f"fail_task: {payload!r}")


def crash_task(payload):
    """Kill the worker process outright (simulates a segfault/OOM kill)."""
    code = payload.get("code", 1) if isinstance(payload, dict) else 1
    os._exit(int(code))


def crash_once_task(payload):
    """Crash on first execution, succeed on retry.

    ``payload`` is a path used as the crash marker: the first worker to run
    the task creates it and dies; the retry sees it and returns normally.
    """
    marker = str(payload)
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("crashed")
        os._exit(1)
    return "recovered"
