"""Per-task accounting context.

A :class:`TaskContext` is handed to operator code for every simulated task.
The operator *declares* what the task receives (consolidation transfers,
aggregation/shuffle transfers), what it holds (outputs), and what it computes
(flops); the context keeps a memory ledger and raises
:class:`~repro.errors.TaskOutOfMemoryError` the moment the ledger exceeds the
per-task budget — exactly the failure mode the paper reports for BFO and
MatFast (Figures 12 and 14: "O.O.M.").
"""

from __future__ import annotations

import enum
import threading
from typing import Union

from repro.blocks.block import Block
from repro.errors import TaskOutOfMemoryError


class TransferKind(enum.Enum):
    """Which paper step a transfer belongs to (both count as communication)."""

    CONSOLIDATION = "consolidation"
    AGGREGATION = "aggregation"


Sized = Union[Block, int]


def _size_of(item: Sized) -> int:
    if isinstance(item, Block):
        return item.nbytes
    return int(item)


class TaskContext:
    """Memory, traffic and flop ledger for one simulated task."""

    __slots__ = (
        "task_id",
        "memory_budget",
        "consolidation_bytes",
        "aggregation_bytes",
        "flops",
        "_memory_used",
        "peak_memory",
        "_lock",
    )

    def __init__(self, task_id: str, memory_budget: int):
        self.task_id = task_id
        self.memory_budget = memory_budget
        self.consolidation_bytes = 0
        self.aggregation_bytes = 0
        self.flops = 0
        self._memory_used = 0
        self.peak_memory = 0
        # parallel local evaluation may complete tasks on worker threads;
        # the ledger must stay consistent under concurrent declarations
        self._lock = threading.Lock()

    # -- traffic -------------------------------------------------------------

    def receive(self, item: Sized, kind: TransferKind = TransferKind.CONSOLIDATION) -> None:
        """Declare an incoming transfer: charges the network and the ledger."""
        size = _size_of(item)
        with self._lock:
            if kind is TransferKind.CONSOLIDATION:
                self.consolidation_bytes += size
            else:
                self.aggregation_bytes += size
            self._charge(size)

    def receive_local(self, item: Sized) -> None:
        """Hold data without network cost (task-local intermediate reuse)."""
        with self._lock:
            self._charge(_size_of(item))

    def hold_output(self, item: Sized) -> None:
        """Account an output block in the task's memory ledger."""
        with self._lock:
            self._charge(_size_of(item))

    def release(self, item: Sized) -> None:
        """Return memory to the ledger (streamed/discarded intermediates).

        Releasing more than the ledger holds is a double-release accounting
        bug in the calling operator; clamping to zero would silently mask
        it, so it raises instead.
        """
        size = _size_of(item)
        with self._lock:
            if size > self._memory_used:
                raise ValueError(
                    f"task {self.task_id} released {size} bytes but holds only "
                    f"{self._memory_used}; double release?"
                )
            self._memory_used -= size

    # -- compute -----------------------------------------------------------------

    def add_flops(self, count: int) -> None:
        if count < 0:
            raise ValueError("flops cannot be negative")
        with self._lock:
            self.flops += count

    # -- memory ----------------------------------------------------------------------

    @property
    def memory_used(self) -> int:
        return self._memory_used

    def _charge(self, size: int) -> None:
        """Ledger update; callers hold ``self._lock``."""
        self._memory_used += size
        if self._memory_used > self.peak_memory:
            self.peak_memory = self._memory_used
        if self._memory_used > self.memory_budget:
            raise TaskOutOfMemoryError(
                self.task_id, self._memory_used, self.memory_budget
            )

    def __repr__(self) -> str:
        return (
            f"TaskContext({self.task_id}, mem={self._memory_used}/"
            f"{self.memory_budget}, flops={self.flops})"
        )
