"""Opt-in thread-pool evaluation of simulated tasks.

``EngineConfig(local_parallelism=N)`` lets operators evaluate their per-task
work items on ``N`` real threads.  The numpy/scipy kernels doing the actual
math release the GIL, so cuboid tasks genuinely overlap.  Determinism is
preserved by construction: tasks are *allocated* serially (stable task ids
and stage ordering), each work item only touches its own
:class:`~repro.cluster.task.TaskContext`, results come back in submission
order, and any cross-task merging (partial-product sums, tile placement)
happens after the map in the same fixed order the serial loop used — so
matrix outputs are bit-identical and every modeled number is unchanged at
any parallelism level.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.cluster.metrics import MetricsCollector

Item = TypeVar("Item")
Result = TypeVar("Result")

#: Marks threads that are already pool workers.  A ``parallel_map`` reached
#: from inside one (e.g. an operator's per-task pool inside a concurrently
#: dispatched physical-plan unit) degrades to the serial loop instead of
#: nesting a second pool — nested pools oversubscribe cores without adding
#: concurrency, and serial fallback is result-identical by construction.
_worker = threading.local()


def parallel_map(
    fn: Callable[[Item], Result],
    items: Sequence[Item],
    parallelism: int,
    metrics: Optional[MetricsCollector] = None,
    counter_prefix: str = "pool",
) -> List[Result]:
    """Map *fn* over *items*, in order, on up to *parallelism* threads.

    Serial (a plain loop) when ``parallelism == 1``, when there is at most
    one item, or when called from inside another ``parallel_map`` worker
    (no nested pools); a non-positive *parallelism* is a caller bug and
    raises ValueError.  Exceptions propagate exactly as in the serial loop:
    the first failing item's exception is raised in submission order.  When
    *metrics* is given, pool usage counters (``{counter_prefix}_tasks``
    etc.) are bumped — observability only; counters never feed modeled
    numbers.

    This is the *thread* dispatch seam of the execution stack: physical-plan
    waves and operator task loops funnel through here under
    ``EngineConfig(execution_backend="thread")``, and the process backend
    falls back to this exact path whenever it is ineligible or its pool
    breaks (see :func:`repro.core.procexec.make_wave_runner`).
    """
    if parallelism <= 0:
        raise ValueError(
            f"parallelism must be positive, got {parallelism} "
            f"(EngineConfig.local_parallelism validates this; a non-positive "
            f"value here means a caller computed a bad worker count)"
        )
    items = list(items)
    if (
        parallelism == 1
        or len(items) <= 1
        or getattr(_worker, "active", False)
    ):
        return [fn(item) for item in items]
    workers = min(parallelism, len(items))
    if metrics is not None:
        metrics.bump(f"{counter_prefix}_tasks", len(items))
        metrics.bump(f"{counter_prefix}_batches")
        metrics.bump_max(f"{counter_prefix}_width_max", workers)

    def run(item: Item) -> Result:
        _worker.active = True
        try:
            return fn(item)
        finally:
            _worker.active = False

    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(run, items))
