"""Opt-in thread-pool evaluation of simulated tasks.

``EngineConfig(local_parallelism=N)`` lets operators evaluate their per-task
work items on ``N`` real threads.  The numpy/scipy kernels doing the actual
math release the GIL, so cuboid tasks genuinely overlap.  Determinism is
preserved by construction: tasks are *allocated* serially (stable task ids
and stage ordering), each work item only touches its own
:class:`~repro.cluster.task.TaskContext`, results come back in submission
order, and any cross-task merging (partial-product sums, tile placement)
happens after the map in the same fixed order the serial loop used — so
matrix outputs are bit-identical and every modeled number is unchanged at
any parallelism level.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.cluster.metrics import MetricsCollector

Item = TypeVar("Item")
Result = TypeVar("Result")


def parallel_map(
    fn: Callable[[Item], Result],
    items: Sequence[Item],
    parallelism: int,
    metrics: Optional[MetricsCollector] = None,
) -> List[Result]:
    """Map *fn* over *items*, in order, on up to *parallelism* threads.

    Serial (a plain loop) when ``parallelism <= 1`` or there is at most one
    item.  Exceptions propagate exactly as in the serial loop: the first
    failing item's exception is raised in submission order.  When *metrics*
    is given, pool usage counters are bumped (observability only — counters
    never feed modeled numbers).
    """
    items = list(items)
    if parallelism <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    workers = min(parallelism, len(items))
    if metrics is not None:
        metrics.bump("pool_tasks", len(items))
        metrics.bump("pool_batches")
        metrics.bump_max("pool_width_max", workers)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))
