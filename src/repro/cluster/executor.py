"""The simulated cluster: stages, tasks and run-wide accounting.

Operators interact with the cluster through :class:`Stage`::

    with cluster.stage("cfo:consolidate+compute") as stage:
        for cuboid in partitioning:
            task = stage.task()
            task.receive(block)           # consolidation transfer
            ... run kernels ...
            task.add_flops(...)
            task.hold_output(out_block)

Closing the stage computes its modeled elapsed time from the paper's Eq. 2
(see :mod:`repro.cluster.simulation`), records a
:class:`~repro.cluster.metrics.StageRecord`, and enforces the simulated-time
timeout (the paper's 12-hour ``T.O.``).
"""

from __future__ import annotations

from typing import Optional

from repro.config import EngineConfig
from repro.cluster.metrics import MetricsCollector, StageRecord
from repro.cluster.simulation import stage_seconds
from repro.cluster.task import TaskContext
from repro.errors import SimulatedTimeoutError


class Stage:
    """One set of parallel tasks; a context manager that records itself."""

    def __init__(self, cluster: "SimulatedCluster", name: str):
        self._cluster = cluster
        self.name = name
        self.tasks: list[TaskContext] = []
        self._closed = False

    def task(self) -> TaskContext:
        """Allocate the next task of this stage."""
        if self._closed:
            raise RuntimeError(f"stage {self.name!r} is already closed")
        task_id = f"{self.name}#{len(self.tasks)}"
        ctx = TaskContext(task_id, self._cluster.config.cluster.task_memory_budget)
        self.tasks.append(ctx)
        return ctx

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "Stage":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self._closed = True  # abandon accounting on error

    def close(self) -> StageRecord:
        """Finalize: compute modeled time, record metrics, check timeout."""
        if self._closed:
            raise RuntimeError(f"stage {self.name!r} is already closed")
        self._closed = True
        consolidation = sum(t.consolidation_bytes for t in self.tasks)
        aggregation = sum(t.aggregation_bytes for t in self.tasks)
        flops = sum(t.flops for t in self.tasks)
        peak = max((t.peak_memory for t in self.tasks), default=0)
        seconds = stage_seconds(
            self._cluster.config.cluster,
            num_tasks=len(self.tasks),
            net_bytes=consolidation + aggregation,
            flops=flops,
            overlap=self._cluster.config.overlap_comm_compute,
        )
        record = StageRecord(
            name=self.name,
            num_tasks=len(self.tasks),
            consolidation_bytes=consolidation,
            aggregation_bytes=aggregation,
            flops=flops,
            seconds=seconds,
            peak_task_memory=peak,
        )
        self._cluster.metrics.record(record)
        self._cluster._check_timeout()
        return record


class SimulatedCluster:
    """The distributed substrate shared by FuseME and every baseline engine."""

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config or EngineConfig()
        self.metrics = MetricsCollector()

    @property
    def total_tasks(self) -> int:
        """``T``: parallel task slots (``N * Tc``)."""
        return self.config.cluster.total_tasks

    @property
    def num_nodes(self) -> int:
        return self.config.cluster.num_nodes

    def stage(self, name: str) -> Stage:
        """Open a new stage (use as a context manager)."""
        return Stage(self, name)

    def reset_metrics(self) -> None:
        self.metrics.reset()

    def _check_timeout(self) -> None:
        elapsed = self.metrics.elapsed_seconds
        if elapsed > self.config.timeout_seconds:
            raise SimulatedTimeoutError(elapsed, self.config.timeout_seconds)

    def __repr__(self) -> str:
        c = self.config.cluster
        return (
            f"SimulatedCluster(nodes={c.num_nodes}, tasks_per_node="
            f"{c.tasks_per_node}, theta_t={c.task_memory_budget})"
        )
