"""The simulated cluster: stages, tasks and run-wide accounting.

Operators interact with the cluster through :class:`Stage`::

    with cluster.stage("cfo:consolidate+compute") as stage:
        for cuboid in partitioning:
            task = stage.task()
            task.receive(block)           # consolidation transfer
            ... run kernels ...
            task.add_flops(...)
            task.hold_output(out_block)

Closing the stage computes its modeled elapsed time, records a
:class:`~repro.cluster.metrics.StageRecord`, and enforces the simulated-time
timeout (the paper's 12-hour ``T.O.``).  Two time models exist
(``EngineConfig.time_model``):

* ``"aggregate"`` (default, the seed behaviour) — the paper's Eq. 2 applied
  to the stage's *total* traffic and flops
  (:func:`repro.cluster.simulation.stage_seconds`), perfect load balance;
* ``"scheduled"`` — the event-driven per-slot runtime
  (:mod:`repro.cluster.runtime`): tasks are placed on ``N x Tc`` slot
  timelines, faults from the config's :class:`FaultPlan` are injected and
  retried, and the stage pays for its longest slot.

A stage whose body raises (O.O.M., timeout, operator bug) is still recorded
— as an *aborted* :class:`StageRecord` with zero modeled seconds — so a
failed run's partial traffic remains visible in its metrics.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.config import EngineConfig
from repro.cluster.metrics import MetricsCollector, StageRecord
from repro.cluster.runtime import ClusterRuntime, TraceRecorder
from repro.cluster.simulation import stage_seconds, task_seconds
from repro.cluster.slice_cache import SliceCache
from repro.cluster.task import TaskContext
from repro.errors import SimulatedTimeoutError


class Stage:
    """One set of parallel tasks; a context manager that records itself."""

    def __init__(self, cluster: "SimulatedCluster", name: str):
        self._cluster = cluster
        self.name = name
        self.tasks: list[TaskContext] = []
        self._closed = False
        #: Physical-plan unit this stage belongs to (captured from the
        #: cluster's per-thread unit scope at creation), None outside one.
        self.unit = cluster.current_unit
        # wall-clock anchor for StageRecord.wall_seconds; taken here so the
        # measurement covers the stage body wherever it runs — driver
        # thread, pool thread, or a process-pool worker
        self._wall_start = time.perf_counter()

    def task(self) -> TaskContext:
        """Allocate the next task of this stage."""
        if self._closed:
            raise RuntimeError(f"stage {self.name!r} is already closed")
        task_id = f"{self.name}#{len(self.tasks)}"
        ctx = TaskContext(task_id, self._cluster.config.cluster.task_memory_budget)
        self.tasks.append(ctx)
        return ctx

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "Stage":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        elif not self._closed:
            self.abort()

    # -- accounting ----------------------------------------------------------

    def _totals(self) -> tuple[int, int, int, int]:
        consolidation = sum(t.consolidation_bytes for t in self.tasks)
        aggregation = sum(t.aggregation_bytes for t in self.tasks)
        flops = sum(t.flops for t in self.tasks)
        peak = max((t.peak_memory for t in self.tasks), default=0)
        return consolidation, aggregation, flops, peak

    def _skew_ratio(self) -> float:
        """Max-over-mean per-task busy time (1.0 when empty or balanced)."""
        if not self.tasks:
            return 1.0
        config = self._cluster.config
        busy = [
            task_seconds(
                config.cluster,
                t.consolidation_bytes + t.aggregation_bytes,
                t.flops,
                overlap=config.overlap_comm_compute,
            )
            for t in self.tasks
        ]
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 1.0

    def _record(
        self,
        seconds: float,
        attempts: Optional[int] = None,
        skew: Optional[float] = None,
        aborted: bool = False,
    ) -> StageRecord:
        """Record this stage exactly once; every exit path funnels here."""
        if self._closed:
            raise RuntimeError(f"stage {self.name!r} is already closed")
        self._closed = True
        consolidation, aggregation, flops, peak = self._totals()
        record = StageRecord(
            name=self.name,
            num_tasks=len(self.tasks),
            consolidation_bytes=consolidation,
            aggregation_bytes=aggregation,
            flops=flops,
            seconds=seconds,
            peak_task_memory=peak,
            attempts=len(self.tasks) if attempts is None else attempts,
            skew_ratio=self._skew_ratio() if skew is None else skew,
            aborted=aborted,
            unit=self.unit,
            wall_seconds=time.perf_counter() - self._wall_start,
        )
        self._cluster.metrics.record(record)
        return record

    def abort(self) -> StageRecord:
        """Record the stage as aborted: partial traffic kept, zero seconds.

        Called by ``__exit__`` when the stage body raises (the O.O.M. and
        timeout paths), so failed runs still report what they moved.
        """
        return self._record(seconds=0.0, aborted=True)

    def close(self) -> StageRecord:
        """Finalize: compute modeled time, record metrics, check timeout."""
        if self._closed:
            raise RuntimeError(f"stage {self.name!r} is already closed")
        config = self._cluster.config
        consolidation, aggregation, flops, peak = self._totals()
        start = self._cluster.metrics.elapsed_seconds

        if config.time_model == "scheduled":
            try:
                scheduled = self._cluster.runtime.run_stage(
                    self.name, self.tasks, start=start
                )
            except Exception:
                # retries exhausted / cluster lost: keep the traffic visible
                self.abort()
                raise
            seconds = scheduled.seconds
            attempts = scheduled.num_attempts
            skew = scheduled.skew_ratio
        else:
            seconds = stage_seconds(
                config.cluster,
                num_tasks=len(self.tasks),
                net_bytes=consolidation + aggregation,
                flops=flops,
                overlap=config.overlap_comm_compute,
            )
            attempts = len(self.tasks)
            skew = self._skew_ratio()

        record = self._record(seconds=seconds, attempts=attempts, skew=skew)
        if self._cluster.trace is not None:
            self._cluster.trace.stage(
                self.name,
                start,
                start + seconds,
                num_tasks=len(self.tasks),
                attempts=attempts,
                skew_ratio=skew,
            )
            self._cluster.trace.transfer(
                self.name, start + seconds, consolidation, aggregation
            )
        self._cluster._check_timeout()
        return record


class SimulatedCluster:
    """The distributed substrate shared by FuseME and every baseline engine.

    With ``time_model="scheduled"`` the cluster owns a
    :class:`~repro.cluster.runtime.ClusterRuntime` (per-slot scheduling plus
    the config's fault plan) and auto-attaches a
    :class:`~repro.cluster.runtime.TraceRecorder`; pass ``trace=`` to attach
    one explicitly (stage-level events are recorded in aggregate mode too).
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        trace: Optional[TraceRecorder] = None,
    ):
        self.config = config or EngineConfig()
        self.metrics = MetricsCollector()
        #: Shared consolidation slabs, reset by the engine per execute.
        self.slice_cache = SliceCache(enabled=self.config.slice_reuse)
        if trace is None and self.config.time_model == "scheduled":
            trace = TraceRecorder()
        self.trace = trace
        # modeled elapsed seconds at the start of the current query; the
        # simulated timeout budget applies per query, not per cluster
        # lifetime, so a long-lived (serving) cluster never times out a
        # query for the time its predecessors spent
        self._query_epoch = 0.0
        # index into the trace's event list at the start of the current
        # query; Engine._execute slices from here so each result's trace
        # holds only its own query's events
        self._trace_epoch = 0
        # the event-driven runtime is only needed under
        # time_model="scheduled"; built lazily so aggregate-mode clusters
        # (the default, and every seed benchmark) never pay for it
        self._runtime: Optional[ClusterRuntime] = None
        # per-thread physical-plan unit index: stages opened on a thread
        # inherit it, attributing their StageRecords to the unit even when
        # independent units run concurrently
        self._unit_scope = threading.local()

    @property
    def runtime(self) -> ClusterRuntime:
        """The event-driven per-slot runtime (built on first use)."""
        if self._runtime is None:
            self._runtime = ClusterRuntime(
                self.config.cluster,
                fault_plan=self.config.fault_plan,
                trace=self.trace,
                overlap=self.config.overlap_comm_compute,
            )
        return self._runtime

    @property
    def current_unit(self) -> Optional[int]:
        """The physical-plan unit index the calling thread is executing."""
        return getattr(self._unit_scope, "unit", None)

    @contextmanager
    def unit_scope(self, index: int) -> Iterator[None]:
        """Attribute stages opened on this thread to physical-plan unit
        *index* (see :func:`repro.core.physical.run_physical_plan`)."""
        previous = self.current_unit
        self._unit_scope.unit = index
        try:
            yield
        finally:
            self._unit_scope.unit = previous

    @property
    def shared_inputs(self) -> frozenset:
        """Environment keys whose consolidation an earlier consumer already
        paid for (graph-pass annotation); operators charge blocks sliced
        from these sources as local reads.  Empty outside a scope."""
        return getattr(self._unit_scope, "shared_inputs", frozenset())

    @contextmanager
    def shared_input_scope(self, keys) -> Iterator[None]:
        """Mark *keys* as already-consolidated for operators executing on
        this thread (see :func:`repro.core.physical.execute_unit`).
        Operators capture the set once at ``execute()`` entry — on the
        driver thread, before task closures fan out to pool threads."""
        previous = self.shared_inputs
        self._unit_scope.shared_inputs = frozenset(keys)
        try:
            yield
        finally:
            self._unit_scope.shared_inputs = previous

    @property
    def total_tasks(self) -> int:
        """``T``: parallel task slots (``N * Tc``)."""
        return self.config.cluster.total_tasks

    @property
    def num_nodes(self) -> int:
        return self.config.cluster.num_nodes

    def stage(self, name: str) -> Stage:
        """Open a new stage (use as a context manager)."""
        return Stage(self, name)

    def begin_query(self) -> None:
        """Mark the start of a new query on this cluster.

        Called by :meth:`Engine.execute <repro.execution.Engine.execute>`.
        Accumulated metrics are left untouched (a shared cluster keeps
        whole-job totals); only the timeout epoch advances, so each query
        gets the full ``timeout_seconds`` budget regardless of how much
        modeled time earlier queries on the same cluster consumed.
        """
        self._query_epoch = self.metrics.elapsed_seconds
        if self.trace is not None:
            self._trace_epoch = len(self.trace)

    def query_trace(self) -> Optional[TraceRecorder]:
        """A recorder holding only the current query's events.

        On a long-lived (serving) cluster the live recorder accumulates
        every tenant's stages; results must not alias it, so this copies
        the slice recorded since :meth:`begin_query`.  Timestamps stay on
        the cluster's absolute modeled clock.
        """
        if self.trace is None:
            return None
        return self.trace.slice_from(self._trace_epoch)

    def reset_metrics(self) -> None:
        self.metrics.reset()
        self._query_epoch = 0.0
        self._trace_epoch = 0
        if self.trace is not None:
            self.trace.clear()

    def _check_timeout(self) -> None:
        elapsed = self.metrics.elapsed_seconds - self._query_epoch
        if elapsed > self.config.timeout_seconds:
            raise SimulatedTimeoutError(elapsed, self.config.timeout_seconds)

    def __repr__(self) -> str:
        c = self.config.cluster
        return (
            f"SimulatedCluster(nodes={c.num_nodes}, tasks_per_node="
            f"{c.tasks_per_node}, theta_t={c.task_memory_budget}, "
            f"time_model={self.config.time_model!r})"
        )
