"""The Cuboid-based Fusion plan Generator (Section 4).

Two phases:

* **Exploration** (Algorithm 2) — seed a candidate partial fusion plan at
  each matrix multiplication and greedily grow it through adjacent operators.
  Growth stops at *termination operators*: materialization points (operators
  whose output has two or more consumers) and unary aggregations (which need
  a shuffle); a termination operator may only join a plan as its top (root).
  Unlike GEN, multiplications are never an obstacle — that is the paper's
  headline difference.
* **Exploitation** (Algorithm 3) — each candidate may be too large for the
  memory budget or slower fused than split.  Every non-main multiplication is
  a *splitting point*, tried farthest-from-main first (distant nested
  multiplications accumulate the largest replication factors, Figure 11); a
  split is kept when the summed costs of the two halves beat the original.

The final :class:`~repro.core.plan.FusionPlan` also covers every operator the
candidates did not absorb: leftover element-wise chains become Cell-fused
units and anything else runs as a single operator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.config import EngineConfig
from repro.core.calibration import KernelCalibration
from repro.core.optimizer import optimize_parameters
from repro.core.plan import FusionPlan, MultiAggPlan, PartialFusionPlan, PlanUnit
from repro.errors import PlanError
from repro.lang.dag import AggNode, DAG, MatMulNode, Node

#: Resolves fitted coefficients for a (kernel kind, partial plan) pair, or
#: ``None`` to price with the paper constants.  Engines bind this to their
#: :class:`~repro.core.calibration.CalibrationStore` in ``"active"`` mode.
CalibrationProvider = Callable[
    [str, PartialFusionPlan], Optional[KernelCalibration]
]


def is_termination(dag: DAG, node: Node) -> bool:
    """Whether *node* forces materialization (Section 4.1).

    Materialization points (two or more outgoing edges), unary aggregations
    (partial results must be shuffled), and DAG roots that are *also*
    consumed by other operators terminate fusion; they can only be fused as
    a plan's top operator — their output must exist as a matrix either way.
    """
    if dag.consumers(node) >= 2:
        return True
    if node in dag.roots and dag.consumers(node) >= 1:
        return True
    return isinstance(node, AggNode)


# ---------------------------------------------------------------------------
# exploration phase (Algorithm 2)
# ---------------------------------------------------------------------------


def exploration_phase(dag: DAG) -> list[PartialFusionPlan]:
    """Find candidate partial fusion plans, one seeded per multiplication."""
    workload: set[Node] = {n for n in dag.nodes() if n.is_operator}
    candidates: list[PartialFusionPlan] = []

    def pick_seed() -> Optional[MatMulNode]:
        matmuls = [n for n in workload if isinstance(n, MatMulNode)]
        if not matmuls:
            return None
        # deterministic: largest voxel volume first, then node id
        return max(
            matmuls,
            key=lambda n: (
                n.inputs[0].meta.rows * n.inputs[1].meta.cols * n.common_dim,
                -n.node_id,
            ),
        )

    while True:
        seed = pick_seed()
        if seed is None:
            break
        workload.discard(seed)
        members: set[Node] = {seed}
        top_reached = False
        rejected: set[Node] = set()

        def adjacent() -> list[Node]:
            found: list[Node] = []
            for member in members:
                # incoming adjacents: operator children
                for child in member.inputs:
                    if child.is_operator and child in workload and child not in rejected:
                        found.append(child)
                # outgoing adjacents: parents (skip once the top is fixed,
                # and never through a member that must materialize anyway —
                # a DAG root consumed by another root has one outgoing edge
                # but still has to surface its own value)
                if top_reached or dag.consumers(member) != 1 or member in dag.roots:
                    continue
                for parent in dag.parents(member):
                    if parent in workload and parent not in rejected:
                        found.append(parent)
            return found

        frontier = adjacent()
        while frontier:
            for candidate in frontier:
                if candidate in members or candidate in rejected:
                    continue
                if not is_termination(dag, candidate):
                    members.add(candidate)
                    workload.discard(candidate)
                elif _is_outgoing(candidate, members) and not top_reached:
                    members.add(candidate)
                    workload.discard(candidate)
                    top_reached = True
                else:
                    rejected.add(candidate)
            frontier = adjacent()
        candidates.append(PartialFusionPlan(members, dag))
    return candidates


def _is_outgoing(candidate: Node, members: set[Node]) -> bool:
    """Whether *candidate* consumes a current member (is a parent of F)."""
    return any(child in members for child in candidate.inputs)


# ---------------------------------------------------------------------------
# exploitation phase (Algorithm 3)
# ---------------------------------------------------------------------------


@dataclass
class ExploitationReport:
    """What the exploitation phase did (inspectable by tests/benchmarks)."""

    splits: int = 0
    examined: int = 0
    final_costs: Dict[int, float] = field(default_factory=dict)


def exploitation_phase(
    candidates: list[PartialFusionPlan],
    config: EngineConfig,
    report: Optional[ExploitationReport] = None,
    calibration: Optional[CalibrationProvider] = None,
) -> list[PartialFusionPlan]:
    """Refine candidates: split where two smaller plans cost less than one."""
    final: list[PartialFusionPlan] = []
    queue = deque(candidates)
    while queue:
        plan = queue.popleft()
        plan = _exploit_one(plan, queue, config, report, calibration)
        final.append(plan)
    return final


def _fused_cost(
    plan: PartialFusionPlan,
    config: EngineConfig,
    calibration: Optional[CalibrationProvider] = None,
) -> float:
    """Optimal cost of a plan; infinite when it cannot lay out as one CFO."""
    if not plan.contains_matmul:
        return _cell_cost(plan, config, calibration)
    fit = calibration("cfo", plan) if calibration is not None else None
    try:
        return optimize_parameters(
            plan, config, calibration=fit
        ).cost.cost_seconds
    except PlanError:
        return float("inf")


def _exploit_one(
    plan: PartialFusionPlan,
    queue: deque,
    config: EngineConfig,
    report: Optional[ExploitationReport],
    calibration: Optional[CalibrationProvider] = None,
) -> PartialFusionPlan:
    if len(plan.matmuls()) <= 1:
        return plan
    main = plan.main_matmul()
    cost = _fused_cost(plan, config, calibration)
    split_points = [m for m in plan.matmuls() if m is not main]
    split_points.sort(key=lambda m: -_distance(plan, m, main))
    for point in split_points:
        if point not in plan.nodes or point is plan.root:
            continue  # already split away, or nothing would remain
        if report is not None:
            report.examined += 1
        remainder, split_off = plan.split(point)
        cost_m = _fused_cost(remainder, config, calibration)
        cost_i = _fused_cost(split_off, config, calibration)
        if cost > cost_m + cost_i:
            queue.append(split_off)
            plan = remainder
            cost = cost_m
            if report is not None:
                report.splits += 1
    if report is not None:
        report.final_costs[plan.root.node_id] = cost
    return plan


def _distance(plan: PartialFusionPlan, a: Node, b: Node) -> int:
    """Minimum hop count between two plan members (undirected BFS)."""
    neighbours: Dict[Node, set[Node]] = {n: set() for n in plan.nodes}
    for node in plan.nodes:
        for child in node.inputs:
            if child in plan.nodes:
                neighbours[node].add(child)
                neighbours[child].add(node)
    seen = {a}
    frontier = deque([(a, 0)])
    while frontier:
        current, dist = frontier.popleft()
        if current is b:
            return dist
        for nxt in neighbours[current]:
            if nxt not in seen:
                seen.add(nxt)
                frontier.append((nxt, dist + 1))
    raise PlanError(f"{a!r} and {b!r} are not connected within the plan")


def _cell_cost(
    plan: PartialFusionPlan,
    config: EngineConfig,
    calibration: Optional[CalibrationProvider] = None,
) -> float:
    """Cost of a matmul-free plan: one pass over its frontier inputs."""
    cluster = config.cluster
    total_bytes = sum(
        consumer.inputs[idx].meta.estimated_bytes
        for consumer in plan.topo_nodes()
        for idx, child in enumerate(consumer.inputs)
        if child not in plan.nodes
    )
    total_flops = sum(n.estimated_flops() for n in plan.topo_nodes())
    if calibration is not None:
        fit = calibration("cell", plan)
        if fit is not None:
            return fit.predict_seconds(total_bytes, total_flops)
    net_time = total_bytes / (cluster.num_nodes * cluster.network_bandwidth)
    com_time = total_flops / (cluster.num_nodes * cluster.compute_bandwidth)
    if config.overlap_comm_compute:
        return max(net_time, com_time)
    return net_time + com_time


# ---------------------------------------------------------------------------
# full plan generation
# ---------------------------------------------------------------------------


def generate_fusion_plan(
    dag: DAG,
    config: EngineConfig,
    report: Optional[ExploitationReport] = None,
    calibration: Optional[CalibrationProvider] = None,
) -> FusionPlan:
    """Run CFG end-to-end and cover every operator of *dag* with units.

    With a *calibration* provider, Algorithm 3's keep-or-split comparisons
    price plans with fitted per-kernel throughputs — split decisions then
    reflect the machine the plan will run on, not the paper's testbed.
    """
    candidates = exploration_phase(dag)
    if config.exploitation_phase:
        partials = exploitation_phase(candidates, config, report, calibration)
    else:
        partials = candidates
    partials = _ensure_layouts(partials)

    covered: set[Node] = set()
    for plan in partials:
        covered |= plan.nodes

    leftovers = [n for n in dag.nodes() if n.is_operator and n not in covered]
    cell_plans = _cell_fuse_leftovers(dag, leftovers)

    units: list[PlanUnit] = []
    for plan in partials:
        units.append(PlanUnit(plan=plan))
    for group in cell_plans:
        units.append(PlanUnit(plan=PartialFusionPlan(group, dag)))
    units = merge_multi_aggregations(dag, units)
    return FusionPlan(dag, _order_units(dag, units))


def merge_multi_aggregations(dag: DAG, units: list[PlanUnit]) -> list[PlanUnit]:
    """Multi-aggregation fusion (Figure 2(d)): merge matmul-free
    aggregation units that scan the same inputs into one multi-output unit.

    Two aggregation chains merge when they share at least one frontier input
    matrix and aggregate over the same block grid — exactly the situation
    where one shared scan replaces several.
    """
    candidates = [
        unit for unit in units
        if isinstance(unit.plan.root, AggNode)
        and not isinstance(unit.plan, MultiAggPlan)
        and not unit.plan.contains_matmul
        and len(unit.outputs) == 1
    ]
    if len(candidates) < 2:
        return units

    def signature(unit: PlanUnit):
        grid = unit.plan.root.inputs[0].meta.block_grid
        sources = frozenset(n.node_id for n in unit.plan.frontier())
        return grid, sources

    # union-find over candidates: connect units sharing an input source
    parents = list(range(len(candidates)))

    def find(i: int) -> int:
        while parents[i] != i:
            parents[i] = parents[parents[i]]
            i = parents[i]
        return i

    signatures = [signature(u) for u in candidates]
    for i in range(len(candidates)):
        for j in range(i + 1, len(candidates)):
            (grid_i, src_i), (grid_j, src_j) = signatures[i], signatures[j]
            if grid_i == grid_j and src_i & src_j:
                parents[find(i)] = find(j)

    groups: dict[int, list[PlanUnit]] = {}
    for i, unit in enumerate(candidates):
        groups.setdefault(find(i), []).append(unit)

    merged: list[PlanUnit] = []
    absorbed: set[PlanUnit] = set()
    for members in groups.values():
        if len(members) < 2:
            continue
        nodes: set[Node] = set()
        for unit in members:
            nodes |= unit.plan.nodes
            absorbed.add(unit)
        merged.append(PlanUnit(plan=MultiAggPlan(nodes, dag)))
    if not merged:
        return units
    return [u for u in units if u not in absorbed] + merged


def _ensure_layouts(partials: list[PartialFusionPlan]) -> list[PartialFusionPlan]:
    """Guarantee every matmul plan has a valid 3-D layout, splitting if not.

    A plan where another multiplication *contracts* the main product stream
    cannot execute as one CFO (its output leaves the ``(i, j)`` plane); such
    plans split at a secondary multiplication until every piece lays out.
    """
    from repro.core.spaces import plan_layout

    out: list[PartialFusionPlan] = []
    work = deque(partials)
    while work:
        plan = work.popleft()
        if not plan.contains_matmul:
            out.append(plan)
            continue
        try:
            plan_layout(plan)
        except PlanError:
            points = [m for m in plan.matmuls() if m is not plan.root]
            if not points:
                raise
            remainder, split_off = plan.split(points[-1])
            work.append(split_off)
            work.append(remainder)
            continue
        out.append(plan)
    return out


def _cell_fuse_leftovers(dag: DAG, leftovers: list[Node]) -> list[set[Node]]:
    """Greedy Cell fusion over operators no candidate plan absorbed."""
    remaining = set(leftovers)
    groups: list[set[Node]] = []
    for node in [n for n in dag.nodes() if n in remaining]:
        if node not in remaining:
            continue
        group = {node}
        remaining.discard(node)
        if isinstance(node, MatMulNode):
            groups.append(group)  # multiplications never Cell-fuse
            continue
        top_taken = is_termination(dag, node)
        changed = True
        while changed:
            changed = False
            for member in list(group):
                for child in member.inputs:
                    if (
                        child in remaining
                        and not is_termination(dag, child)
                        and not isinstance(child, MatMulNode)
                    ):
                        group.add(child)
                        remaining.discard(child)
                        changed = True
                if dag.consumers(member) == 1 and member not in dag.roots:
                    for parent in dag.parents(member):
                        if parent not in remaining or isinstance(parent, MatMulNode):
                            continue
                        if not is_termination(dag, parent):
                            group.add(parent)
                            remaining.discard(parent)
                            changed = True
                        elif not top_taken:
                            # a termination operator may cap the group as
                            # its top (Algorithm 2's rule), ending upward
                            # growth
                            group.add(parent)
                            remaining.discard(parent)
                            top_taken = True
                            changed = True
        groups.append(group)
    return groups


def _order_units(dag: DAG, units: list[PlanUnit]) -> list[PlanUnit]:
    """Topologically order units by their materialized dependencies."""
    produced: set[Node] = set()
    pending = list(units)
    ordered: list[PlanUnit] = []
    while pending:
        progressed = False
        for unit in list(pending):
            deps = [d for d in unit.dependencies() if d.is_operator]
            if all(d in produced for d in deps):
                ordered.append(unit)
                produced.update(unit.outputs)
                pending.remove(unit)
                progressed = True
        if not progressed:
            raise PlanError("cyclic dependency among fusion plan units")
    return ordered
