"""Redundant consolidation elimination across units.

Several units consolidating the same materialized matrix each pay its
consolidation traffic in the seed plan.  This pass walks the final unit
order (and member order inside merged units) with a seen-set of consumed
environment keys: the first consumer keeps paying, every later consumer
gets the key in its ``shared_inputs`` annotation so operators charge those
blocks as local reads.  One materialization feeds all consumers; lifetimes
(``releases``) are recomputed for the final last consumer.

The annotation is *static* — first consumer is defined by final plan
order, not runtime order — so modeled totals are identical under
sequential and wave scheduling no matter how waves interleave.  Keys the
merge pass already shares intra-group are skipped, never double-counted.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, List, Set, Tuple

from repro.core.physical import PhysicalPlan, UnitOp, env_key_of, recompute_releases
from repro.lang.dag import InputNode

from repro.core.passes.base import GraphPass, PassReport


class DedupConsolidationsPass(GraphPass):
    """Make one consolidation feed every consumer of a materialization."""

    name = "dedup_consolidations"

    def run(self, engine, physical: PhysicalPlan) -> Tuple[PhysicalPlan, PassReport]:
        started = time.perf_counter()
        report = PassReport(
            name=self.name,
            units_before=len(physical.ops),
            units_after=len(physical.ops),
        )
        seen: Set[object] = set()
        new_ops: List[UnitOp] = []
        changed_any = False
        for op in physical.ops:
            if op.members:
                new_members = []
                members_changed = False
                for member in op.members:
                    marked = self._mark(member, seen, report)
                    members_changed = members_changed or marked is not member
                    new_members.append(marked)
                if members_changed:
                    op = replace(op, members=tuple(new_members))
                    changed_any = True
            else:
                marked = self._mark(op, seen, report)
                changed_any = changed_any or marked is not op
                op = marked
            new_ops.append(op)
        if not changed_any:
            report.elapsed_seconds = time.perf_counter() - started
            return physical, report
        new_ops = recompute_releases(physical.dag, new_ops)
        rebuilt = PhysicalPlan(
            physical.dag,
            new_ops,
            fusion_plan=physical.fusion_plan,
            engine_name=physical.engine_name,
        )
        rebuilt.pass_reports = physical.pass_reports
        report.elapsed_seconds = time.perf_counter() - started
        return rebuilt, report

    @staticmethod
    def _mark(op: UnitOp, seen: Set[object], report: PassReport) -> UnitOp:
        """Mark *op*'s already-consolidated keys shared; grow *seen*."""
        if op.unit is None:
            for key in op.consumes:
                seen.add(key)
            return op
        already = set(op.shared_inputs)
        key_bytes: Dict[object, float] = {}
        for dep in op.unit.dependencies():
            if isinstance(dep, InputNode) or dep.is_operator:
                key_bytes[env_key_of(dep)] = float(dep.meta.estimated_bytes)
        fresh: List[object] = []
        for key in op.consumes:
            if key in seen and key not in already:
                fresh.append(key)
                report.net_bytes_saved += key_bytes.get(key, 0.0)
            seen.add(key)
        if not fresh:
            return op
        report.shared_keys += len(fresh)
        return replace(op, shared_inputs=op.shared_inputs + tuple(fresh))
