"""Graph-level optimizer passes over the physical IR.

:func:`run_graph_passes` is the pipeline entry point the engine calls
between :func:`~repro.core.physical.lower_plan` and the plan cache: it
resolves the ``EngineConfig.graph_passes`` spec to an ordered list of
registered passes, runs each, threads the accumulated
:class:`~repro.core.passes.base.PassReport` objects onto the resulting
plan (EXPLAIN renders them), and opens one telemetry span per pass when a
tracer is attached.

Registering a new pass (DESIGN.md §15):

1. subclass :class:`~repro.core.passes.base.GraphPass` in a new module
   under ``repro/core/passes/``;
2. add its ``name`` to :data:`repro.config.GRAPH_PASSES` at its pipeline
   position (the config layer validates specs against that tuple, and
   canonical order is defined there — never by the user's spec string);
3. add the class to :data:`REGISTRY` below.

Passes must keep matrix outputs bit-identical — they may only change unit
structure, charging annotations, and modeled cost.
"""

from __future__ import annotations

from typing import Optional

from repro.config import enabled_graph_passes
from repro.core.passes.base import GraphPass, PassReport
from repro.core.passes.dedup_consolidations import DedupConsolidationsPass
from repro.core.passes.merge_units import MergeUnitsPass
from repro.core.physical import PhysicalPlan

#: name -> pass class, every registered rewrite.
REGISTRY = {
    MergeUnitsPass.name: MergeUnitsPass,
    DedupConsolidationsPass.name: DedupConsolidationsPass,
}


def run_graph_passes(
    engine, physical: PhysicalPlan, tracer: Optional[object] = None
) -> PhysicalPlan:
    """Run the engine's enabled passes over *physical*, in canonical order.

    With ``graph_passes="off"`` this returns *physical* untouched — not a
    copy — so the seed path allocates and computes nothing extra.
    """
    names = enabled_graph_passes(engine.config.graph_passes)
    if not names:
        return physical
    reports = list(physical.pass_reports)
    for name in names:
        graph_pass = REGISTRY[name]()
        if tracer is not None:
            with tracer.span(f"pass:{name}", "planning") as span:
                physical, report = graph_pass.run(engine, physical)
                span.attrs.update(report.to_dict())
        else:
            physical, report = graph_pass.run(engine, physical)
        reports.append(report)
    physical.pass_reports = tuple(reports)
    return physical


__all__ = [
    "GraphPass",
    "PassReport",
    "REGISTRY",
    "run_graph_passes",
    "MergeUnitsPass",
    "DedupConsolidationsPass",
]
