"""Pass pipeline scaffolding: the :class:`GraphPass` contract + reports.

A graph pass is a rewrite over the lowered :class:`~repro.core.physical.
PhysicalPlan` — it runs *after* the engine's per-unit annotation and
*before* the plan is cached or executed, and it must never change matrix
outputs (only unit structure and modeled cost).  Passes are pure plan ->
plan functions that also return a :class:`PassReport`, which EXPLAIN and
the per-pass telemetry spans surface.

Ordering contract (see DESIGN.md §15): passes run in the canonical order
of :data:`repro.config.GRAPH_PASSES`, regardless of how the
``EngineConfig.graph_passes`` spec lists them.  Structural passes (unit
merging) run before annotation passes (consolidation dedup) so the dedup
walk sees the final unit order and never marks a key the merge pass
already shares intra-group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.physical import PhysicalPlan
from repro.utils.formatting import format_bytes


@dataclass
class PassReport:
    """What one pass did to one plan — rendered at the end of EXPLAIN."""

    name: str
    units_before: int = 0
    units_after: int = 0
    #: Merged groups formed (merge pass only).
    merged_groups: int = 0
    #: Consolidations rewritten to local reads (both passes).
    shared_keys: int = 0
    #: Modeled network bytes the rewrite saves (planner estimate).
    net_bytes_saved: float = 0.0
    #: Modeled seconds the rewrite saves (planner estimate).
    seconds_saved: float = 0.0
    #: Merged units whose re-run cuboid search would have picked a
    #: different ``(P, Q, R)`` — execution pins the original parameters
    #: (bit-identity), so this is surfaced as a counter instead.
    pqr_changes: int = 0
    #: Wall-clock the pass itself took (planning overhead, not modeled).
    elapsed_seconds: float = 0.0

    @property
    def fired(self) -> bool:
        """Whether the pass changed the plan at all."""
        return self.units_after < self.units_before or self.shared_keys > 0

    def __str__(self) -> str:
        parts = [f"{self.name}:"]
        if not self.fired:
            parts.append("no-op")
            return " ".join(parts)
        if self.units_after != self.units_before:
            parts.append(
                f"units {self.units_before}->{self.units_after} "
                f"({self.merged_groups} group(s))"
            )
        if self.shared_keys:
            parts.append(f"shared {self.shared_keys} consolidation(s)")
        if self.net_bytes_saved > 0:
            parts.append(f"saved net={format_bytes(int(self.net_bytes_saved))}")
        if self.seconds_saved > 0:
            parts.append(f"sec={self.seconds_saved:.4g}")
        if self.pqr_changes:
            parts.append(f"pqr_would_change={self.pqr_changes}")
        return " ".join(parts)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "fired": self.fired,
            "units_before": self.units_before,
            "units_after": self.units_after,
            "merged_groups": self.merged_groups,
            "shared_keys": self.shared_keys,
            "net_bytes_saved": self.net_bytes_saved,
            "seconds_saved": self.seconds_saved,
            "pqr_changes": self.pqr_changes,
            "elapsed_seconds": self.elapsed_seconds,
        }


class GraphPass:
    """One rewrite over the physical IR.

    Subclasses set :attr:`name` (the registry key, also the
    ``EngineConfig.graph_passes`` token) and implement :meth:`run`.
    *engine* is the engine that lowered the plan — passes use its config,
    optimizer method, and calibration hooks, never its execution state.
    """

    name = "graph-pass"

    def run(self, engine, physical: PhysicalPlan) -> Tuple[PhysicalPlan, PassReport]:
        raise NotImplementedError
