"""Unit merging: fuse independent units that share consolidation inputs.

Two units with no dependency path between them that consolidate the same
materialized matrix each pay its consolidation traffic (Eq. 4) — the
consolidation phases are identical work.  Merging them into one scheduler
slot lets the second member read the shared slabs as local blocks, which
the (calibration-aware) :class:`~repro.core.cost.CostModel` prices via
``free_sources``.  A merge only happens when the modeled merged cost is
strictly below the members' separate costs.

Bit-identity contract: a merged unit executes its members back-to-back in
original unit order, each with its **original** ``(P, Q, R)`` and
annotations — changing ``R`` would change the k-chunk partial-sum order
and changing ``P, Q`` the sorted-``(p, q)`` combine order, either of which
perturbs floating-point results.  The cuboid search *is* re-run on the
merged unit (with the shared inputs free) as the paper's plan-generation
story asks, but its result only informs the merge decision; when it would
pick different parameters the pass counts it (``pqr_changes``) instead of
adopting them.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.cost import CostModel
from repro.core.optimizer import optimize_parameters
from repro.core.physical import (
    PhysicalPlan,
    UnitEstimate,
    UnitOp,
    env_key_of,
    recompute_releases,
)
from repro.core.spaces import plan_layout
from repro.lang.dag import InputNode

from repro.core.passes.base import GraphPass, PassReport


def _price(config, calibration, net: float, flops: float) -> float:
    """Seconds for *net* bytes + *flops* — Eq. 2 or the fitted throughputs
    (mirrors :meth:`CostModel._price` for units without a space tree)."""
    if calibration is not None:
        return calibration.predict_seconds(net, flops)
    cluster = config.cluster
    net_time = net / (cluster.num_nodes * cluster.network_bandwidth)
    com_time = flops / (cluster.num_nodes * cluster.compute_bandwidth)
    if config.overlap_comm_compute:
        return max(net_time, com_time)
    return net_time + com_time


def _group_topo(ops: Sequence[UnitOp], group_of: Dict[int, int]) -> Optional[List[int]]:
    """Kahn order of the quotient graph's group leaders (deps first),
    min-original-index tie-break; ``None`` when the grouping is cyclic."""
    edges: Dict[int, Set[int]] = {}
    indegree: Dict[int, int] = {leader: 0 for leader in set(group_of.values())}
    for op in ops:
        group = group_of[op.index]
        for dep in op.deps:
            dep_group = group_of[dep]
            if dep_group != group and group not in edges.setdefault(dep_group, set()):
                edges[dep_group].add(group)
                indegree[group] += 1
    ready = sorted(leader for leader, deg in indegree.items() if deg == 0)
    order: List[int] = []
    while ready:
        leader = ready.pop(0)
        order.append(leader)
        for succ in sorted(edges.get(leader, ())):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                # keep the ready set sorted so the final order is stable
                ready.append(succ)
                ready.sort()
    if len(order) != len(indegree):
        return None
    return order


class MergeUnitsPass(GraphPass):
    """Fuse independent, input-sharing units when the cost model agrees."""

    name = "merge_units"

    def run(self, engine, physical: PhysicalPlan) -> Tuple[PhysicalPlan, PassReport]:
        started = time.perf_counter()
        ops = physical.ops
        report = PassReport(
            name=self.name, units_before=len(ops), units_after=len(ops)
        )
        if len(ops) < 2:
            report.elapsed_seconds = time.perf_counter() - started
            return physical, report

        # shared consumed keys with nonzero modeled size -> candidate pairs
        key_bytes: Dict[object, float] = {}
        key_consumers: Dict[object, Set[int]] = {}
        for op in ops:
            if op.unit is None:
                continue
            for dep in op.unit.dependencies():
                if not (isinstance(dep, InputNode) or dep.is_operator):
                    continue
                key = env_key_of(dep)
                key_bytes[key] = max(
                    key_bytes.get(key, 0.0), float(dep.meta.estimated_bytes)
                )
                key_consumers.setdefault(key, set()).add(op.index)

        pair_shared: Dict[Tuple[int, int], float] = {}
        for key, consumers in key_consumers.items():
            size = key_bytes.get(key, 0.0)
            if size <= 0 or len(consumers) < 2:
                continue
            indices = sorted(consumers)
            for a in range(len(indices)):
                for b in range(a + 1, len(indices)):
                    pair = (indices[a], indices[b])
                    pair_shared[pair] = pair_shared.get(pair, 0.0) + size
        if not pair_shared:
            report.elapsed_seconds = time.perf_counter() - started
            return physical, report

        # greedy deterministic union: largest shared bytes first, then the
        # pair's indices; a union is only kept when the quotient graph
        # stays acyclic AND the modeled merged cost is strictly cheaper
        group_of = {op.index: op.index for op in ops}
        members: Dict[int, List[int]] = {op.index: [op.index] for op in ops}
        estimates: Dict[FrozenSet[int], Optional[Tuple[float, float, float, int]]] = {}

        def group_estimate(group: Sequence[int]):
            """(net, flops, seconds, pqr_changes) of the group executing
            as one unit with intra-group consolidation sharing; ``None``
            when any member cannot be costed (never merge blindly)."""
            cache_key = frozenset(group)
            if cache_key in estimates:
                return estimates[cache_key]
            seen: Set[object] = set()
            total_net = total_flops = total_sec = 0.0
            changes = 0
            result = None
            for index in sorted(group):
                member = self._member_estimate(
                    engine, ops[index], seen & set(ops[index].consumes)
                )
                if member is None:
                    break
                net, flops, seconds, changed = member
                total_net += net
                total_flops += flops
                total_sec += seconds
                changes += int(changed)
                seen |= set(ops[index].consumes)
            else:
                result = (total_net, total_flops, total_sec, changes)
            estimates[cache_key] = result
            return result

        order = sorted(pair_shared.items(), key=lambda kv: (-kv[1], kv[0]))
        merged_any = False
        for (i, j), _shared in order:
            leader_i, leader_j = group_of[i], group_of[j]
            if leader_i == leader_j:
                continue
            # direct dependency edges between the groups make the members
            # ordered, not independent — the quotient-topo check cannot see
            # them (intra-group edges vanish in the quotient), so reject here
            set_i, set_j = set(members[leader_i]), set(members[leader_j])
            if any(d in set_i for m in set_j for d in ops[m].deps) or any(
                d in set_j for m in set_i for d in ops[m].deps
            ):
                continue
            keep, drop = sorted((leader_i, leader_j))
            trial = dict(group_of)
            for index in members[drop]:
                trial[index] = keep
            if _group_topo(ops, trial) is None:
                continue  # the union would create a quotient cycle
            separate_i = group_estimate(members[leader_i])
            separate_j = group_estimate(members[leader_j])
            combined = group_estimate(members[leader_i] + members[leader_j])
            if separate_i is None or separate_j is None or combined is None:
                continue
            if not combined[2] < separate_i[2] + separate_j[2]:
                continue
            group_of = trial
            members[keep] = sorted(members[keep] + members[drop])
            del members[drop]
            merged_any = True

        if not merged_any:
            report.elapsed_seconds = time.perf_counter() - started
            return physical, report

        # rebuild: topo-order the quotient graph, renumber, remap deps,
        # annotate intra-group sharing, recompute lifetimes
        topo = _group_topo(ops, group_of)
        assert topo is not None  # every committed union preserved acyclicity
        old_to_new = {}
        for new_index, leader in enumerate(topo):
            for index in members[leader]:
                old_to_new[index] = new_index

        new_ops: List[UnitOp] = []
        for new_index, leader in enumerate(topo):
            group = members[leader]
            if len(group) == 1:
                op = ops[group[0]]
                new_ops.append(replace(
                    op,
                    index=new_index,
                    deps=tuple(sorted({old_to_new[d] for d in op.deps})),
                    sources=op.source_indices,
                ))
                continue
            merged_groups_est = group_estimate(group)
            separate_sec = 0.0
            separate_net = 0.0
            for index in group:
                single = group_estimate([index])
                separate_net += single[0]
                separate_sec += single[2]
            seen: Set[object] = set()
            member_ops: List[UnitOp] = []
            for index in group:
                op = ops[index]
                free = tuple(k for k in op.consumes if k in seen)
                member_ops.append(replace(
                    op,
                    releases=(),
                    sources=op.source_indices,
                    shared_inputs=free,
                ))
                seen |= set(op.consumes)
            deps = tuple(sorted({
                old_to_new[d]
                for index in group
                for d in ops[index].deps
            }))
            mems = [
                float(ops[index].estimate.mem_bytes_per_task)
                for index in group
                if ops[index].estimate is not None
                and ops[index].estimate.mem_bytes_per_task is not None
            ]
            net, flops, seconds, changes = merged_groups_est
            report.merged_groups += 1
            report.shared_keys += sum(len(m.shared_inputs) for m in member_ops)
            report.net_bytes_saved += max(0.0, separate_net - net)
            report.seconds_saved += max(0.0, separate_sec - seconds)
            report.pqr_changes += changes
            new_ops.append(UnitOp(
                index=new_index,
                unit=None,
                kind="merged",
                deps=deps,
                outputs=tuple(
                    node for index in group for node in ops[index].outputs
                ),
                releases=(),
                consumes=tuple(dict.fromkeys(
                    key for index in group for key in ops[index].consumes
                )),
                estimate=UnitEstimate(
                    net_bytes=net,
                    flops=flops,
                    seconds=seconds,
                    mem_bytes_per_task=max(mems) if len(mems) == len(group) else None,
                ),
                name="merged(" + ",".join(str(index) for index in group) + ")",
                members=tuple(member_ops),
                sources=tuple(group),
            ))

        new_ops = recompute_releases(physical.dag, new_ops)
        rebuilt = PhysicalPlan(
            physical.dag,
            new_ops,
            fusion_plan=physical.fusion_plan,
            engine_name=physical.engine_name,
        )
        rebuilt.pass_reports = physical.pass_reports
        report.units_after = len(new_ops)
        report.elapsed_seconds = time.perf_counter() - started
        return rebuilt, report

    @staticmethod
    def _member_estimate(engine, op: UnitOp, free: Set[object]):
        """(net, flops, seconds, pqr_changed) of *op* with the *free*
        consolidations discounted; ``None`` when the unit cannot be costed
        or the discounted plan would be memory-infeasible."""
        est = op.estimate
        if est is None or op.unit is None:
            return None
        plan = op.unit.plan
        if not free:
            net, flops = float(est.net_bytes), float(est.flops)
            seconds = est.seconds
            if seconds is None:
                seconds = _price(
                    engine.config,
                    engine.calibration_for(op.kind, plan),
                    net, flops,
                )
            return net, flops, float(seconds), False
        if op.pqr is not None and getattr(plan, "contains_matmul", False):
            calibration = engine.calibration_for("cfo", plan)
            searched = optimize_parameters(
                plan,
                engine.config,
                method=getattr(engine, "optimizer_method", "pruned"),
                calibration=calibration,
                free_sources=free,
            )
            changed = searched.pqr != op.pqr
            if changed:
                # execution pins the original parameters (bit-identity),
                # so the honest merged estimate prices those, discounted
                tree = plan_layout(plan).tree
                model = CostModel(
                    engine.config, calibration=calibration, free_sources=free
                )
                cost = model.evaluate(plan, tree, op.pqr)
            else:
                cost = searched.cost
            if not cost.feasible:
                return None
            return (
                float(cost.net_bytes), float(cost.com_flops),
                float(cost.cost_seconds), changed,
            )
        free_bytes = 0.0
        for dep in op.unit.dependencies():
            if not (isinstance(dep, InputNode) or dep.is_operator):
                continue
            if env_key_of(dep) in free:
                free_bytes += float(dep.meta.estimated_bytes)
        net = max(0.0, float(est.net_bytes) - free_bytes)
        flops = float(est.flops)
        seconds = _price(
            engine.config, engine.calibration_for(op.kind, plan), net, flops
        )
        return net, flops, seconds, False
