"""(P, Q, R)-cuboid partitioning of the 3-D model space (Section 2.3).

The model space of a multiplication with block extents ``I x J x K`` is cut
into ``P * Q * R`` cuboids; cuboid ``D[p,q,r]`` covers a contiguous slab of
block indices on each axis.  L-, R- and O-space are partitioned with the
induced ``(P,1,R)``, ``(1,Q,R)`` and ``(P,Q,1)`` schemes (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import OptimizerError

BlockRange = tuple[int, int]


def chunk_ranges(extent: int, parts: int) -> list[BlockRange]:
    """Split ``range(extent)`` into *parts* contiguous ``[start, stop)`` runs.

    The first ``extent % parts`` chunks get one extra element, matching the
    paper's ``ceil(I/P)``-sized cuboids.
    """
    if extent <= 0:
        raise ValueError(f"extent must be positive, got {extent}")
    if not 0 < parts <= extent:
        raise ValueError(f"parts must be in [1, {extent}], got {parts}")
    base, extra = divmod(extent, parts)
    ranges = []
    start = 0
    for idx in range(parts):
        size = base + (1 if idx < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


@dataclass(frozen=True)
class CuboidPartitioning:
    """A concrete ``(P, Q, R)`` partitioning of an ``I x J x K`` block space."""

    extent_i: int
    extent_j: int
    extent_k: int
    p: int
    q: int
    r: int

    def __post_init__(self) -> None:
        for name, parts, extent in (
            ("P", self.p, self.extent_i),
            ("Q", self.q, self.extent_j),
            ("R", self.r, self.extent_k),
        ):
            if not 0 < parts <= extent:
                raise OptimizerError(
                    f"{name}={parts} outside [1, {extent}] for space "
                    f"{self.extent_i}x{self.extent_j}x{self.extent_k}"
                )

    @property
    def pqr(self) -> tuple[int, int, int]:
        return (self.p, self.q, self.r)

    @property
    def num_cuboids(self) -> int:
        return self.p * self.q * self.r

    @property
    def voxels(self) -> int:
        return self.extent_i * self.extent_j * self.extent_k

    def i_ranges(self) -> list[BlockRange]:
        return chunk_ranges(self.extent_i, self.p)

    def j_ranges(self) -> list[BlockRange]:
        return chunk_ranges(self.extent_j, self.q)

    def k_ranges(self) -> list[BlockRange]:
        return chunk_ranges(self.extent_k, self.r)

    def cuboids(self) -> Iterator[tuple[int, int, int]]:
        """All ``(p, q, r)`` indices in row-major order."""
        for p in range(self.p):
            for q in range(self.q):
                for r in range(self.r):
                    yield (p, q, r)

    def cuboid_ranges(
        self, p: int, q: int, r: int
    ) -> tuple[BlockRange, BlockRange, BlockRange]:
        """Block ranges ``(i, j, k)`` covered by cuboid ``D[p,q,r]``."""
        return (self.i_ranges()[p], self.j_ranges()[q], self.k_ranges()[r])

    def __repr__(self) -> str:
        return (
            f"CuboidPartitioning(P={self.p}, Q={self.q}, R={self.r} over "
            f"{self.extent_i}x{self.extent_j}x{self.extent_k})"
        )
