"""Process-backend execution of physical-plan units.

This module is the bridge between the typed unit graph
(:mod:`repro.core.physical`) and the generic process substrate
(:mod:`repro.cluster.procpool`).  It owns three things:

* **task-descriptor extraction** — :func:`build_unit_task` turns a
  :class:`~repro.core.physical.UnitOp` into a small picklable
  :class:`UnitTask`: the engine class (pickled by reference), its frozen
  config, the unit op itself, and :class:`~repro.cluster.procpool.MatrixRef`
  handles for exactly the env keys the unit consumes;
* **the worker entry point** — :func:`execute_unit_task` runs in a pool
  worker: it rebuilds the engine from its config, opens zero-copy views of
  the consumed matrices, executes the unit against a **fresh, worker-local**
  :class:`~repro.cluster.executor.SimulatedCluster`, writes outputs back
  through the store, and returns the unit's stage records.  Stage modeled
  time is a pure function of the config and the stage's own totals under the
  aggregate time model, so records computed in a worker are *identical* to
  what the driver would have recorded;
* **the deterministic merge** — :class:`ProcessWaveRunner` dispatches one
  dependency wave, then commits results in unit-index order at the wave
  barrier: stage records append to the driver's metrics in exactly the order
  the thread scheduler's ``reorder_tail`` would produce, trace events are
  replayed on the driver's modeled clock, and outputs enter the shared env —
  so outputs stay bit-identical and modeled totals unchanged versus the
  sequential run.

Failure policy: worker crashes respawn (bounded, inside the pool); when the
pool breaks, the runner falls back to driver-side execution for the
remaining units and the scheduler continues on the thread backend — with a
``RuntimeWarning`` and a ``procpool.fallback`` telemetry event, never a
wrong answer.  Ordinary task exceptions are re-raised in unit-index order,
matching serial semantics, after the preceding units' records are merged.
"""

from __future__ import annotations

import gc
import os
import pickle
import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Tuple

from repro.cluster.executor import SimulatedCluster
from repro.cluster.metrics import StageRecord
from repro.cluster.procpool import (
    MatrixRef,
    PoolBrokenError,
    ProcessPool,
    SharedBlockStore,
    open_matrix,
    write_matrix,
)
from repro.config import EngineConfig

if TYPE_CHECKING:  # avoid a physical <-> procexec import cycle at runtime
    from repro.core.physical import UnitOp


# ---------------------------------------------------------------------------
# task descriptors


@dataclass
class UnitTask:
    """Everything a worker needs to execute one unit, picklable and small.

    Matrix payloads travel through the block store, not the descriptor —
    ``env_refs`` holds :class:`MatrixRef` handles keyed the same way the
    scheduler's env is (node ids for operator outputs, names for inputs).
    """

    engine_cls: type
    config: EngineConfig
    op: "UnitOp"
    env_refs: Dict[object, MatrixRef]
    output_dir: str


@dataclass
class UnitOutcome:
    """What a worker hands back: records + output refs (or an error)."""

    records: List[StageRecord] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    #: A single ref, or ``{node_id: ref}`` for multi-output units.
    output: object = None
    error: Optional[tuple] = None
    #: Worker-side observability: pid, wall/kernel seconds, shm traffic.
    #: A plain dict so it pickles cheaply and the obs layer stays optional.
    span: Optional[Dict[str, float]] = None


def build_unit_task(
    engine, op: "UnitOp", env: Mapping[object, object], store: SharedBlockStore
) -> UnitTask:
    """Extract the picklable task descriptor for *op*.

    Registers each consumed env value in the store (a payload already
    registered — or produced by an earlier wave's worker — is reused, so a
    matrix crosses the process boundary at most once per query).
    """
    refs = {key: store.register(env[key]) for key in op.consumes if key in env}
    return UnitTask(
        engine_cls=type(engine),
        config=engine.config,
        op=op,
        env_refs=refs,
        output_dir=store.directory,
    )


# ---------------------------------------------------------------------------
# worker side

#: Engine instances are stateless during ``run_unit`` (the lowering-time
#: annotations carry every decision), so one rebuilt engine per
#: (class, config) serves every task a worker runs.
_ENGINE_CACHE: Dict[tuple, object] = {}


def _worker_engine(engine_cls: type, config: EngineConfig):
    key = (engine_cls, repr(config))
    engine = _ENGINE_CACHE.get(key)
    if engine is None:
        engine = engine_cls(config)
        _ENGINE_CACHE[key] = engine
    return engine


def _refs_nbytes(refs) -> int:
    """Shared-segment bytes behind an iterable of :class:`MatrixRef`."""
    total = 0
    for ref in refs:
        segment = getattr(ref, "segment", None)
        if segment is not None:
            total += segment.nbytes
    return total


def _output_nbytes(output: object) -> int:
    if output is None:
        return 0
    if isinstance(output, dict):
        return _refs_nbytes(output.values())
    return _refs_nbytes((output,))


def execute_unit_task(task: UnitTask) -> UnitOutcome:
    """Pool-worker entry point: run one unit and write results to the store.

    Never raises for unit-level failures — the stage records accumulated
    before the failure (including aborted-stage traffic, mirroring the
    driver path) ride back with the encoded error so the driver's metrics
    stay faithful.
    """
    from repro.cluster.procpool.worker import encode_error

    wall_start = time.perf_counter()
    engine = _worker_engine(task.engine_cls, task.config)
    cluster = SimulatedCluster(task.config)
    closers: List[Callable[[], None]] = []
    env: Dict[object, object] = {}
    outcome = UnitOutcome()
    kernel_start = wall_start
    try:
        for key, ref in task.env_refs.items():
            matrix, close = open_matrix(ref)
            env[key] = matrix
            closers.append(close)
        op = task.op
        kernel_start = time.perf_counter()
        kernel_end = kernel_start
        try:
            # the shared entry point honours merged units and shared-input
            # charging annotations exactly like the in-process scheduler
            from repro.core.physical import execute_unit

            with cluster.unit_scope(op.index):
                result = execute_unit(engine, op, cluster, env)
            kernel_end = time.perf_counter()
            if isinstance(result, dict):
                outcome.output = {
                    node.node_id: write_matrix(matrix, task.output_dir)
                    for node, matrix in result.items()
                }
            else:
                outcome.output = write_matrix(result, task.output_dir)
        except Exception as exc:  # noqa: BLE001 - shipped to the driver
            kernel_end = time.perf_counter()
            outcome.error = encode_error(exc)
        outcome.records = list(cluster.metrics.stages)
        outcome.counters = dict(cluster.metrics.counters)
        outcome.span = {
            "pid": os.getpid(),
            "wall_seconds": time.perf_counter() - wall_start,
            "kernel_seconds": kernel_end - kernel_start,
            "shm_read_bytes": _refs_nbytes(task.env_refs.values()),
            "shm_write_bytes": _output_nbytes(outcome.output),
            "stages": len(outcome.records),
        }
        return outcome
    finally:
        env.clear()
        # stage/task bookkeeping forms reference cycles that can keep numpy
        # views of the shared segments alive past this frame; collect now so
        # every attachment closes cleanly (a view surviving close would make
        # SharedMemory's destructor raise BufferError noise at gc time)
        del cluster
        gc.collect()
        for close in closers:
            close()


#: The function dispatched for unit tasks.  Module-level and swappable so
#: crash-injection tests can point it at ``procpool.testing.crash_task``.
_UNIT_TASK_FN: Callable[[UnitTask], UnitOutcome] = execute_unit_task


def unit_task_fn() -> Callable[[UnitTask], UnitOutcome]:
    return _UNIT_TASK_FN


# ---------------------------------------------------------------------------
# driver side


def _emit_fallback(
    engine,
    metrics,
    reason: str,
    task: Optional[str] = None,
    worker_pid: Optional[int] = None,
) -> None:
    """The never-a-wrong-answer demotion: warn + count + telemetry event.

    *task* (the unit label being demoted) and *worker_pid* (the dead
    worker, when a crash triggered the demotion) ride on the
    ``procpool.fallback`` event so operators can attribute it.
    """
    warnings.warn(
        f"process execution backend falling back to threads: {reason}",
        RuntimeWarning,
        stacklevel=3,
    )
    metrics.bump("procpool_fallbacks")
    bus = getattr(engine, "telemetry", None)
    if bus is not None and getattr(bus, "active", False):
        from repro.obs import TelemetryEvent

        attrs = {"engine": getattr(engine, "name", "?"), "reason": reason}
        if task is not None:
            attrs["task"] = task
        if worker_pid is not None:
            attrs["worker_pid"] = worker_pid
        bus.emit(TelemetryEvent(
            name="procpool.fallback",
            kind="event",
            attrs=attrs,
        ))


def replay_records(
    records: List[StageRecord], cluster: SimulatedCluster
) -> None:
    """Commit worker-computed stage records to the driver's accounting.

    Mirrors ``Stage.close``: records append in the given order, trace
    stage/transfer events are emitted on the driver's modeled clock, and
    the per-query simulated timeout is enforced.
    """
    for record in records:
        start = cluster.metrics.elapsed_seconds
        cluster.metrics.record(record)
        if cluster.trace is not None and not record.aborted:
            cluster.trace.stage(
                record.name,
                start,
                start + record.seconds,
                num_tasks=record.num_tasks,
                attempts=record.attempts,
                skew_ratio=record.skew_ratio,
            )
            cluster.trace.transfer(
                record.name,
                start + record.seconds,
                record.consolidation_bytes,
                record.aggregation_bytes,
            )
    cluster._check_timeout()


class ProcessWaveRunner:
    """Dispatches dependency waves to the engine's worker pool.

    Created per ``run_physical_plan`` call when the process backend is
    eligible; owns the query's :class:`SharedBlockStore` (closed by
    :meth:`finish`).  ``broken`` flips when the pool gives up — the
    scheduler then continues on the thread path for the rest of the query.
    """

    def __init__(self, engine, cluster: SimulatedCluster, pool: ProcessPool):
        self.engine = engine
        self.cluster = cluster
        self.pool = pool
        self.store = SharedBlockStore()
        self.broken = False

    # -- wave dispatch -----------------------------------------------------

    def run_wave(
        self,
        wave: List["UnitOp"],
        env: Dict[object, object],
        run_op: Callable[["UnitOp"], object],
        merge: Callable[["UnitOp", object], None],
        unit_observer: Optional[Callable] = None,
    ) -> None:
        """Execute one wave on the pool; commit results in unit-index order.

        *run_op*/*merge* are the scheduler's driver-side callbacks, used
        both for the crash-fallback path and (merge) for adopted results.
        """
        metrics = self.cluster.metrics
        tasks = []
        fn = unit_task_fn()
        for op in wave:
            tasks.append((fn, build_unit_task(self.engine, op, env, self.store)))
        metrics.bump("procpool_tasks", len(tasks))
        metrics.bump("procpool_batches")
        metrics.bump_max("procpool_width_max", min(self.pool.width, len(tasks)))

        completed: Dict[int, object] = {}
        try:
            outcomes = self.pool.run_tasks(tasks)
            completed = {i: o for i, o in enumerate(outcomes)}
        except PoolBrokenError as broken:
            self.broken = True
            completed = dict(broken.completed)
            demoted = [
                op.label() for position, op in enumerate(wave)
                if position not in completed
            ]
            _emit_fallback(
                self.engine, metrics, str(broken),
                task=", ".join(demoted) if demoted else None,
                worker_pid=broken.worker_pid,
            )

        busy_ms = 0
        for position, op in enumerate(wave):
            outcome = completed.get(position)
            value = outcome.value if outcome is not None else None
            usable = (
                outcome is not None
                and outcome.error is None
                and isinstance(value, UnitOutcome)
            )
            if usable and value.error is None:
                self._commit(op, value, env, merge)
                busy_ms += int(outcome.busy_seconds * 1000)
                if unit_observer is not None:
                    worker_span = value.span
                    if worker_span is not None:
                        worker_span = dict(worker_span)
                        worker_span.setdefault("worker_id", outcome.worker_id)
                    unit_observer(
                        op,
                        outcome.submitted_at,
                        outcome.completed_at,
                        worker_span,
                    )
            elif usable:  # the unit itself failed: serial semantics
                replay_records(value.records, self.cluster)
                from repro.cluster.procpool.worker import decode_error

                raise decode_error(value.error)
            elif outcome is not None and outcome.error is not None:
                # task function raised outside the unit guard (pickling,
                # store attach, injected test failures): rerun locally
                self._rerun_locally(
                    op, run_op, merge, repr(outcome.error),
                    worker_pid=outcome.worker_pid
                    if outcome.worker_pid >= 0 else None,
                )
            else:
                self._rerun_locally(op, run_op, merge, "worker crashed")
        if busy_ms:
            metrics.bump("procpool_busy_ms", busy_ms)

    def _rerun_locally(
        self, op, run_op, merge, reason: str,
        worker_pid: Optional[int] = None,
    ) -> None:
        if not self.broken:
            self.broken = True
            _emit_fallback(
                self.engine, self.cluster.metrics, reason,
                task=op.label(), worker_pid=worker_pid,
            )
        merge(op, run_op(op))

    def _commit(self, op, value: UnitOutcome, env, merge) -> None:
        replay_records(value.records, self.cluster)
        for name, amount in value.counters.items():
            self.cluster.metrics.bump(f"worker_{name}", amount)
        if isinstance(value.output, dict):
            for node_id, ref in value.output.items():
                env[node_id] = self.store.adopt(ref)
        else:
            merge(op, self.store.adopt(value.output))

    # -- store-backed env hygiene -----------------------------------------

    def release(self, matrix) -> None:
        """Unlink the store segment behind a released env value."""
        self.store.release(matrix)

    def detach_roots(self, physical, env: Dict[object, object]) -> None:
        """Replace store-backed root outputs with private copies.

        Results must outlive the store (whose segments unlink in
        :meth:`finish`), so anything a DAG root still references is deep
        copied out of shared memory here.
        """
        from repro.core.physical import _root_keys

        for key in _root_keys(physical.dag):
            value = env.get(key)
            if value is not None and self.store.owns(value):
                env[key] = self.store.detach_copy(value)

    def finish(self) -> None:
        self.store.close()


def make_wave_runner(
    engine, cluster: SimulatedCluster
) -> Optional[ProcessWaveRunner]:
    """A :class:`ProcessWaveRunner` when the process backend can run, else
    ``None`` (after emitting the demotion warning when appropriate).

    Eligibility: the engine must expose a pool (``Engine._ensure_procpool``),
    and the config's time model must be ``"aggregate"`` — the scheduled
    runtime's slot timelines are cluster-global state that worker-local
    clusters cannot reproduce, so it stays on the thread backend.
    """
    ensure = getattr(engine, "_ensure_procpool", None)
    if ensure is None:
        return None
    if engine.config.time_model != "aggregate":
        _emit_fallback(
            engine,
            cluster.metrics,
            'execution_backend="process" requires time_model="aggregate"',
        )
        return None
    try:
        pickle.dumps(type(engine))
    except Exception:
        _emit_fallback(engine, cluster.metrics, "engine class is not picklable")
        return None
    pool = ensure()
    if pool is None:
        _emit_fallback(engine, cluster.metrics, "worker pool unavailable")
        return None
    return ProcessWaveRunner(engine, cluster, pool)
