"""The FuseME engine: CFG planning + CFO execution (Section 5).

``FuseMEEngine`` wires the pieces together the way the paper's implementation
does on Spark: the query DAG is simplified, CFG generates a fusion plan whose
fused units lower to CFOs (Cell-fused operators for matmul-free chains), and
the physical plan executes on the simulated cluster with full cost
accounting.  The cuboid ``(P*, Q*, R*)`` search runs at lowering time
(:meth:`FuseMEEngine.annotate_unit`), so executing a unit never mutates
engine state and a plan-cache hit skips the search entirely.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cluster.executor import SimulatedCluster
from repro.config import EngineConfig
from repro.core.cfg import ExploitationReport, generate_fusion_plan
from repro.core.cfo import CuboidFusedOperator
from repro.core.optimizer import OptimizerResult, optimize_parameters
from repro.core.physical import (
    UnitAnnotation,
    UnitOp,
    estimate_from_cost,
)
from repro.core.plan import FusionPlan, MultiAggPlan, PlanUnit
from repro.execution import Engine
from repro.lang.dag import DAG
from repro.lang.rewrites import refresh_leaf_metas, simplify_dag
from repro.matrix.distributed import BlockedMatrix
from repro.operators.cell import FusedCellOperator
from repro.operators.multi_agg import MultiAggregationOperator


class FuseMEEngine(Engine):
    """The paper's system: cuboid-based fusion plan generation + CFOs."""

    name = "FuseME"

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        optimizer_method: str = "pruned",
    ):
        super().__init__(config)
        self.optimizer_method = optimizer_method
        self.last_report: Optional[ExploitationReport] = None

    def prepare_dag(self, dag: DAG, inputs=None) -> DAG:
        """Simplify the DAG (double-transpose and scalar-chain cleanups)
        before planning.  With ``config.refine_input_metas`` and bound
        inputs, the declared leaf densities are also replaced by the
        matrices' measured densities, sharpening the optimizer's size
        estimates."""
        # clear per-query planner state up front: on a plan-cache hit
        # plan_query never runs, and a stale report from an earlier query
        # (possibly another tenant's, under the serving layer) must not
        # leak into this one
        self.last_report = None
        dag = simplify_dag(dag)
        if inputs is not None and self.config.refine_input_metas:
            metas = {
                name: matrix.refreshed_meta()
                for name, matrix in inputs.items()
            }
            dag = refresh_leaf_metas(dag, metas)
        return dag

    def planning_signature(self) -> tuple:
        return super().planning_signature() + (self.optimizer_method,)

    def clone(self, config: Optional[EngineConfig] = None) -> "FuseMEEngine":
        """A fresh FuseME engine planning with the same optimizer method."""
        return type(self)(
            config if config is not None else self.config,
            optimizer_method=self.optimizer_method,
        )

    def planning_attrs(self):
        """CFG/exploitation counters for the planning span.

        ``last_report`` is None on a plan-cache hit (``plan_query`` never
        ran), so the span then carries only the method — the hit itself is
        already an attribute of the plan span.
        """
        attrs = {"optimizer_method": self.optimizer_method}
        if self.last_report is not None:
            attrs["exploitation_splits"] = self.last_report.splits
            attrs["plans_examined"] = self.last_report.examined
        return attrs

    def plan_query(self, dag: DAG) -> FusionPlan:
        self.last_report = ExploitationReport()
        return generate_fusion_plan(
            dag,
            self.config,
            report=self.last_report,
            # active calibration prices Algorithm 3's keep-or-split
            # comparisons with fitted throughputs; None keeps Eq. 2 exact
            calibration=(
                self.calibration_for if self.calibration_active else None
            ),
        )

    def annotate_unit(
        self, unit: PlanUnit, hint: Optional[OptimizerResult] = None
    ) -> UnitAnnotation:
        plan = unit.plan
        if isinstance(plan, MultiAggPlan):
            return UnitAnnotation(
                kind="multi-agg",
                estimate=self.calibrated_estimate("multi-agg", unit),
            )
        if plan.contains_matmul:
            # the (P*, Q*, R*) search — once here at lowering, never on the
            # execution path; a plan-cache hint skips it entirely
            result = hint or optimize_parameters(
                plan,
                self.config,
                method=self.optimizer_method,
                calibration=self.calibration_for("cfo", plan),
            )
            return UnitAnnotation(
                kind="cfo",
                pqr=result.pqr,
                optimizer_result=result,
                estimate=estimate_from_cost(
                    result.cost,
                    paper_seconds=(
                        result.paper_cost.cost_seconds
                        if result.paper_cost is not None else None
                    ),
                ),
            )
        return UnitAnnotation(
            kind="cell", estimate=self.calibrated_estimate("cell", unit)
        )

    def run_unit(
        self,
        op: UnitOp,
        cluster: SimulatedCluster,
        env: Mapping[object, BlockedMatrix],
    ):
        plan = op.unit.plan
        if isinstance(plan, MultiAggPlan):
            return MultiAggregationOperator(plan, self.config).execute(cluster, env)
        if plan.contains_matmul:
            operator = CuboidFusedOperator(plan, self.config, pqr=op.pqr)
            operator.optimizer_result = op.optimizer_result
            return operator.execute(cluster, env)
        return FusedCellOperator(plan, self.config).execute(cluster, env)
