"""The FuseME engine: CFG planning + CFO execution (Section 5).

``FuseMEEngine`` wires the pieces together the way the paper's implementation
does on Spark: the query DAG is simplified, CFG generates a fusion plan whose
fused units run as CFOs (Cell-fused operators for matmul-free chains), and
everything executes on the simulated cluster with full cost accounting.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cluster.executor import SimulatedCluster
from repro.config import EngineConfig
from repro.core.cfg import ExploitationReport, generate_fusion_plan
from repro.core.cfo import CuboidFusedOperator
from repro.core.plan import FusionPlan, MultiAggPlan, PlanUnit
from repro.execution import Engine, ExecutionResult, Query, as_dag
from repro.lang.dag import DAG
from repro.lang.rewrites import refresh_leaf_metas, simplify_dag
from repro.matrix.distributed import BlockedMatrix
from repro.operators.cell import FusedCellOperator
from repro.operators.multi_agg import MultiAggregationOperator


class FuseMEEngine(Engine):
    """The paper's system: cuboid-based fusion plan generation + CFOs."""

    name = "FuseME"

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        optimizer_method: str = "pruned",
    ):
        super().__init__(config)
        self.optimizer_method = optimizer_method
        self.last_report: Optional[ExploitationReport] = None

    def execute(self, query: Query, inputs, cluster=None) -> ExecutionResult:
        """Simplify the DAG (double-transpose and scalar-chain cleanups)
        before planning, then run as usual.  With
        ``config.refine_input_metas`` the declared leaf densities are also
        replaced by the bound matrices' measured densities, sharpening the
        optimizer's size estimates."""
        # clear per-query planner state up front: on a plan-cache hit
        # plan_query never runs, and a stale report from an earlier query
        # (possibly another tenant's, under the serving layer) must not
        # leak into this one
        self.last_report = None
        dag = simplify_dag(as_dag(query))
        if self.config.refine_input_metas:
            metas = {
                name: matrix.refreshed_meta()
                for name, matrix in inputs.items()
            }
            dag = refresh_leaf_metas(dag, metas)
        return super().execute(dag, inputs, cluster)

    def planning_signature(self) -> tuple:
        return super().planning_signature() + (self.optimizer_method,)

    def plan_query(self, dag: DAG) -> FusionPlan:
        self.last_report = ExploitationReport()
        return generate_fusion_plan(dag, self.config, report=self.last_report)

    def run_unit(
        self,
        unit: PlanUnit,
        cluster: SimulatedCluster,
        env: Mapping[object, BlockedMatrix],
    ):
        plan = unit.plan
        if isinstance(plan, MultiAggPlan):
            return MultiAggregationOperator(plan, self.config).execute(cluster, env)
        if plan.contains_matmul:
            hint = self._unit_hint()
            if hint is not None:
                # plan-cache hit: reuse the cached (P*, Q*, R*) search outcome
                operator = CuboidFusedOperator(plan, self.config, pqr=hint.pqr)
                operator.optimizer_result = hint
            else:
                operator = CuboidFusedOperator(
                    plan, self.config, optimizer_method=self.optimizer_method
                )
                self._store_unit_hint(operator.optimizer_result)
        else:
            operator = FusedCellOperator(plan, self.config)
        return operator.execute(cluster, env)
