"""The physical-plan layer: a typed unit-graph IR between planner and runtime.

The paper separates *plan generation* (Section 4) from *fused-operator
execution* (Section 3); this module is the seam between the two.  A
:class:`~repro.core.plan.FusionPlan` says *which operators fuse*; lowering it
produces a :class:`PhysicalPlan` — a DAG of :class:`UnitOp` nodes that
additionally says, per unit:

* the **physical operator kind** the engine chose (CFO / BFO / RFO / cell /
  multi-agg / a standalone multiplication strategy);
* the **cuboid parameters** ``(P*, Q*, R*)`` and the
  :class:`~repro.core.optimizer.OptimizerResult` that justified them — the
  parameter search runs once here, at lowering time, instead of inside the
  operator's constructor on the execution path;
* **cost/footprint estimates** from the existing
  :class:`~repro.core.cost.CostModel` (network bytes, flops, modeled
  seconds, per-task memory);
* **dependency edges** on other units (derived from the query DAG), which is
  what lets independent units dispatch concurrently; and
* **materialization lifetimes**: the environment keys whose *last* consumer
  is this unit, so intermediates are released as soon as they are dead
  instead of living until end-of-query.

Because lowering never opens a cluster stage, a ``PhysicalPlan`` is also the
engine's introspection surface: ``engine.explain(query)`` renders one without
executing anything (:meth:`PhysicalPlan.render`).

Execution goes through :func:`run_physical_plan`, the dependency-driven unit
scheduler.  With ``parallelism <= 1`` it is *sequential-equivalent*: units
run one at a time in the fusion plan's original order, so stage records
appear in exactly the order the pre-IR engine produced.  With
``parallelism > 1`` ready units dispatch concurrently through
:func:`~repro.cluster.parallel.parallel_map` in dependency waves; merge
order stays the unit-index order and each unit's stages are pure functions
of its own tasks, so outputs remain bit-identical and every modeled total
(seconds, bytes, flops) unchanged — only wall-clock and the interleaving of
stage records differ.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.parallel import parallel_map
from repro.core.optimizer import OptimizerResult
from repro.core.plan import FusionPlan, PlanUnit
from repro.errors import PlanError
from repro.lang.dag import DAG, InputNode, Node
from repro.utils.formatting import format_bytes

#: Environment key of a materialized value: produced operator outputs are
#: keyed by ``node_id`` (int), input matrices by name (str).
EnvKey = object


@dataclass(frozen=True)
class UnitEstimate:
    """Planner-side cost/footprint estimate for one unit.

    ``seconds`` and ``mem_bytes_per_task`` are only known for units that ran
    the cuboid parameter search (their :class:`PlanCost` carries both);
    generic units estimate traffic and flops from node metadata alone.
    """

    net_bytes: float
    flops: float
    seconds: Optional[float] = None
    mem_bytes_per_task: Optional[float] = None
    #: When ``seconds`` was priced with fitted throughputs
    #: (``calibration="active"``): the same estimate under the paper
    #: constants, so EXPLAIN shows both.  ``None`` on the uncalibrated path.
    paper_seconds: Optional[float] = None


@dataclass(frozen=True)
class UnitAnnotation:
    """What an engine adds to a unit during lowering (the subclass hook)."""

    kind: str
    pqr: Optional[Tuple[int, int, int]] = None
    optimizer_result: Optional[OptimizerResult] = None
    estimate: Optional[UnitEstimate] = None


@dataclass(frozen=True)
class UnitOp:
    """One node of the physical plan: an executable unit, fully annotated."""

    index: int
    unit: Optional[PlanUnit]
    kind: str
    #: Indices of units whose outputs this unit consumes.
    deps: Tuple[int, ...]
    #: Nodes this unit materializes.
    outputs: Tuple[Node, ...]
    #: Environment keys whose last consumer *in fusion-plan order* is this
    #: unit — released as soon as it completes in sequential mode.  Never
    #: contains a key a DAG root still needs.  (Wave-concurrent dispatch may
    #: run units out of index order, so the scheduler releases by consumer
    #: refcount there instead — see :func:`run_physical_plan`.)
    releases: Tuple[EnvKey, ...]
    #: Environment keys this unit reads (deduplicated, stable order).
    consumes: Tuple[EnvKey, ...] = ()
    pqr: Optional[Tuple[int, int, int]] = None
    optimizer_result: Optional[OptimizerResult] = None
    estimate: Optional[UnitEstimate] = None
    #: Display label; defaults to the wrapped unit's plan label.
    name: str = ""
    #: For ``kind="merged"`` ops: the original units executed back-to-back
    #: under this op's identity (one stage-attribution index, one scheduler
    #: slot, shared lifetimes).  Members are mutually independent — the
    #: merge pass only fuses units with no path between them — and keep
    #: their original annotations (``pqr``, estimates), so execution stays
    #: bit-identical to the unmerged plan.
    members: Tuple["UnitOp", ...] = ()
    #: Provenance: original lowering indices this op descends from.  Empty
    #: means the op is untouched by any pass (it is its own source).
    sources: Tuple[int, ...] = ()
    #: Environment keys whose consolidation an *earlier* consumer (in final
    #: plan order) already paid for; the runtime charges these as local
    #: reads (memory only, no network).  Annotated statically at plan time
    #: so modeled totals are identical under sequential and wave
    #: scheduling regardless of actual interleaving.
    shared_inputs: Tuple[EnvKey, ...] = ()

    def label(self) -> str:
        if self.name:
            return self.name
        return self.unit.label() if self.unit is not None else f"unit{self.index}"

    @property
    def is_fused(self) -> bool:
        return self.unit is not None and self.unit.is_fused

    @property
    def source_indices(self) -> Tuple[int, ...]:
        """Original lowering indices behind this op (itself when untouched)."""
        return self.sources if self.sources else (self.index,)


def estimate_from_cost(cost, paper_seconds: Optional[float] = None) -> UnitEstimate:
    """A :class:`UnitEstimate` from a cuboid search's
    :class:`~repro.core.cost.PlanCost` (Eq. 2-5 outputs).  *paper_seconds*
    carries the paper-constant price when *cost* was calibrated."""
    return UnitEstimate(
        net_bytes=float(cost.net_bytes),
        flops=float(cost.com_flops),
        seconds=float(cost.cost_seconds),
        mem_bytes_per_task=float(cost.mem_bytes_per_task),
        paper_seconds=paper_seconds,
    )


def generic_unit_estimate(unit: PlanUnit) -> UnitEstimate:
    """A metadata-only estimate for units without a parameter search:
    consolidation traffic ~ the frontier matrices' sizes, flops ~ the fused
    operators' ``numOp`` totals (Eq. 5 with no replication)."""
    net = float(sum(n.meta.estimated_bytes for n in unit.plan.frontier()))
    flops = float(sum(n.estimated_flops() for n in unit.plan.nodes))
    return UnitEstimate(net_bytes=net, flops=flops)


class PhysicalPlan:
    """A fusion plan lowered to annotated, dependency-linked unit ops."""

    def __init__(
        self,
        dag: DAG,
        ops: Sequence[UnitOp],
        fusion_plan: Optional[FusionPlan] = None,
        engine_name: str = "",
    ):
        self.dag = dag
        self.ops: Tuple[UnitOp, ...] = tuple(ops)
        self.fusion_plan = fusion_plan
        self.engine_name = engine_name
        #: Reports of the graph passes that produced this plan (set by
        #: :func:`repro.core.passes.run_graph_passes`); empty for a raw
        #: lowering.  Rendered at the end of EXPLAIN.
        self.pass_reports: Tuple[object, ...] = ()
        for op in self.ops:
            for dep in op.deps:
                if not 0 <= dep < op.index:
                    raise PlanError(
                        f"unit {op.index} depends on {dep}, which does not "
                        f"precede it"
                    )

    # -- structure ---------------------------------------------------------

    def waves(self) -> List[List[UnitOp]]:
        """Units grouped into dependency waves (Kahn levels).

        Every unit lands in the earliest wave all its dependencies precede;
        units within a wave are mutually independent and listed in unit-index
        order, so dispatch and merge order are deterministic.
        """
        level: Dict[int, int] = {}
        waves: List[List[UnitOp]] = []
        for op in self.ops:
            depth = 1 + max((level[d] for d in op.deps), default=-1)
            level[op.index] = depth
            while len(waves) <= depth:
                waves.append([])
            waves[depth].append(op)
        return waves

    def critical_path_seconds(self) -> Optional[float]:
        """Sum over waves of the slowest estimated unit, when every unit has
        a modeled-seconds estimate; ``None`` otherwise."""
        total = 0.0
        for wave in self.waves():
            secs = [
                op.estimate.seconds
                for op in wave
                if op.estimate is not None and op.estimate.seconds is not None
            ]
            if len(secs) != len(wave):
                return None
            total += max(secs)
        return total

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """The EXPLAIN text: every unit with kind, fused nodes, cuboid
        ``(P, Q, R)``, estimates, dependencies and lifetime releases."""
        waves = self.waves()
        header = (
            f"PhysicalPlan[{self.engine_name or 'engine'}]: "
            f"{len(self.ops)} unit(s), {len(waves)} wave(s), "
            f"{len(self.dag.roots)} root(s)"
        )
        lines = [header]
        for depth, wave in enumerate(waves):
            lines.append(f"wave {depth}:")
            for op in wave:
                lines.append("  " + self._render_op(op))
                for member in op.members:
                    lines.append("    + " + self._render_op(member))
        if self.pass_reports:
            lines.append("passes:")
            for report in self.pass_reports:
                lines.append("  " + str(report))
        return "\n".join(lines)

    @staticmethod
    def _render_op(op: UnitOp) -> str:
        parts = [f"[{op.index}] {op.kind:<10} {op.label()}"]
        if op.members:
            parts.append(
                "merges=" + ",".join(str(s) for s in op.source_indices)
            )
        if op.pqr is not None:
            parts.append(f"pqr={op.pqr}")
        est = op.estimate
        if est is not None:
            detail = f"est: net={format_bytes(int(est.net_bytes))} flops={est.flops:.3g}"
            if est.seconds is not None:
                detail += f" sec={est.seconds:.4g}"
            if est.paper_seconds is not None:
                detail += f" (paper {est.paper_seconds:.4g})"
            if est.mem_bytes_per_task is not None:
                detail += f" mem/task={format_bytes(int(est.mem_bytes_per_task))}"
            parts.append(detail)
        outs = ",".join(f"#{n.node_id}" for n in op.outputs)
        parts.append(f"-> {outs}")
        if op.deps:
            parts.append("deps=" + ",".join(str(d) for d in op.deps))
        if op.releases:
            parts.append(
                "releases=" + ",".join(_release_label(k) for k in op.releases)
            )
        if op.shared_inputs:
            parts.append(
                "shared=" + ",".join(_release_label(k) for k in op.shared_inputs)
            )
        return "  ".join(parts)

    # -- visualization -----------------------------------------------------

    def visualize(self, fmt: str = "mermaid") -> str:
        """The unit graph as Mermaid (default) or Graphviz ``dot`` text.

        Units render as nodes — merged units as subgraphs containing their
        member units — inputs as distinct shapes, and every consolidation
        edge is labeled with the modeled traffic of the consumed matrix.
        Edges whose consolidation a graph pass deduplicated render dashed
        with a ``shared`` label; merged units are highlighted.
        """
        if fmt not in ("mermaid", "dot", "graphviz"):
            raise ValueError(
                f"visualize format must be 'mermaid' or 'dot', got {fmt!r}"
            )
        producer: Dict[EnvKey, str] = {}
        for op in self.ops:
            if op.members:
                for member in op.members:
                    for node in member.outputs:
                        producer[env_key_of(node)] = f"u{op.index}m{member.index}"
            else:
                for node in op.outputs:
                    producer[env_key_of(node)] = f"u{op.index}"

        def input_id(key: EnvKey) -> str:
            safe = "".join(c if c.isalnum() else "_" for c in str(key))
            return f"in_{safe}"

        inputs: Dict[str, str] = {}
        edges: Dict[Tuple[str, str], Tuple[str, bool]] = {}

        def collect(op: UnitOp, target: str) -> None:
            if op.unit is None:
                return
            shared_keys = set(op.shared_inputs)
            for dep in op.unit.dependencies():
                if not (isinstance(dep, InputNode) or dep.is_operator):
                    continue
                key = env_key_of(dep)
                traffic = format_bytes(int(dep.meta.estimated_bytes))
                if isinstance(key, str):
                    src = input_id(key)
                    inputs.setdefault(src, str(key))
                elif key in producer:
                    src = producer[key]
                else:
                    continue
                shared = key in shared_keys
                label = f"shared {traffic}" if shared else traffic
                edges.setdefault((src, target), (label, shared))

        for op in self.ops:
            if op.members:
                for member in op.members:
                    collect(member, f"u{op.index}m{member.index}")
            else:
                collect(op, f"u{op.index}")

        if fmt == "mermaid":
            return self._render_mermaid(inputs, edges)
        return self._render_dot(inputs, edges)

    @staticmethod
    def _viz_label(text: str) -> str:
        return text.replace('"', "'")

    def _render_mermaid(self, inputs, edges) -> str:
        lines = ["flowchart TD"]
        for src, label in sorted(inputs.items()):
            lines.append(f'    {src}(["{self._viz_label(label)}"])')
        for op in self.ops:
            if op.members:
                title = self._viz_label(
                    f"[{op.index}] merged("
                    + ",".join(str(s) for s in op.source_indices) + ")"
                )
                lines.append(f'    subgraph u{op.index} ["{title}"]')
                for member in op.members:
                    mlabel = self._viz_label(
                        f"[{member.index}] {member.kind} {member.label()}"
                    )
                    lines.append(f'        u{op.index}m{member.index}["{mlabel}"]')
                lines.append("    end")
            else:
                label = self._viz_label(f"[{op.index}] {op.kind} {op.label()}")
                lines.append(f'    u{op.index}["{label}"]')
        for (src, dst), (label, shared) in sorted(edges.items()):
            arrow = f'-. "{label}" .->' if shared else f'-- "{label}" -->'
            lines.append(f"    {src} {arrow} {dst}")
        merged = [f"u{op.index}" for op in self.ops if op.members]
        if merged:
            lines.append(
                "    classDef merged fill:#fdf6e3,stroke:#b58900,"
                "stroke-width:2px"
            )
            lines.append("    class " + ",".join(merged) + " merged")
        return "\n".join(lines)

    def _render_dot(self, inputs, edges) -> str:
        lines = [
            "digraph physical_plan {",
            "    rankdir=TB;",
            '    node [shape=box, fontname="monospace"];',
        ]
        for src, label in sorted(inputs.items()):
            lines.append(
                f'    {src} [shape=ellipse, label="{self._viz_label(label)}"];'
            )
        for op in self.ops:
            if op.members:
                title = self._viz_label(
                    f"[{op.index}] merged("
                    + ",".join(str(s) for s in op.source_indices) + ")"
                )
                lines.append(f"    subgraph cluster_u{op.index} {{")
                lines.append(
                    f'        label="{title}"; style=filled; '
                    'color="#b58900"; fillcolor="#fdf6e3";'
                )
                for member in op.members:
                    mlabel = self._viz_label(
                        f"[{member.index}] {member.kind} {member.label()}"
                    )
                    lines.append(
                        f'        u{op.index}m{member.index} '
                        f'[label="{mlabel}"];'
                    )
                lines.append("    }")
            else:
                label = self._viz_label(f"[{op.index}] {op.kind} {op.label()}")
                lines.append(f'    u{op.index} [label="{label}"];')
        for (src, dst), (label, shared) in sorted(edges.items()):
            style = ', style=dashed, color="#b58900"' if shared else ""
            lines.append(
                f'    {src} -> {dst} [label="{self._viz_label(label)}"{style}];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def __repr__(self) -> str:
        return (
            f"PhysicalPlan(engine={self.engine_name!r}, units={len(self.ops)}, "
            f"waves={len(self.waves())})"
        )


def _release_label(key: EnvKey) -> str:
    return f"#{key}" if isinstance(key, int) else str(key)


def env_key_of(node: Node) -> EnvKey:
    """The environment key a node's materialization lives under: input
    leaves by name, everything else by ``node_id``."""
    return node.name if isinstance(node, InputNode) else node.node_id


def _consumed_keys(unit: PlanUnit) -> List[EnvKey]:
    """Environment keys a unit reads: operator dependencies by node id,
    input leaves by name."""
    keys: List[EnvKey] = []
    for dep in unit.dependencies():
        if isinstance(dep, InputNode) or dep.is_operator:
            keys.append(env_key_of(dep))
    return keys


def _root_keys(dag: DAG) -> set:
    """Keys the result collection still needs after the last unit ran."""
    keys = set()
    for root in dag.roots:
        if isinstance(root, InputNode):
            keys.add(root.name)
        else:
            keys.add(root.node_id)
    return keys


def recompute_releases(dag: DAG, ops: Sequence[UnitOp]) -> List[UnitOp]:
    """Re-derive every op's ``releases`` from the final op order.

    Graph passes that move, merge, or renumber units invalidate the
    last-consumer lifetimes :func:`lower_plan` computed; this recomputes
    them with the same rules (last consumer in final order releases the
    key, keys a DAG root still needs are never released).
    """
    last_consumer: Dict[EnvKey, int] = {}
    for op in ops:
        for key in op.consumes:
            last_consumer[key] = op.index
    keep_alive = _root_keys(dag)
    releases_at: Dict[int, List[EnvKey]] = {}
    for key, index in last_consumer.items():
        if key not in keep_alive:
            releases_at.setdefault(index, []).append(key)
    return [
        replace(op, releases=tuple(sorted(releases_at.get(op.index, ()), key=str)))
        for op in ops
    ]


def execute_unit(engine, op: UnitOp, cluster, env: Mapping[EnvKey, object]):
    """Run one (possibly merged, possibly input-sharing) unit op.

    The single execution entry point for both the in-process scheduler
    (:func:`run_physical_plan`) and the process-backend worker
    (:func:`repro.core.procexec.execute_unit_task`), so graph-pass
    semantics behave identically on every backend:

    * a ``shared_inputs`` annotation makes operators charge those
      consolidations as local reads (the earlier consumer already paid);
    * a merged op executes its members back-to-back — in original unit
      order, each with its original annotations, so every block value and
      per-member stage total is bit-identical to the unmerged plan — and
      returns a dict of all member outputs.
    """
    if op.members:
        results: Dict[Node, object] = {}
        for member in op.members:
            with cluster.shared_input_scope(member.shared_inputs):
                value = engine.run_unit(member, cluster, env)
            if isinstance(value, dict):
                results.update(value)
            else:
                results[member.unit.output] = value
        return results
    if op.shared_inputs:
        with cluster.shared_input_scope(op.shared_inputs):
            return engine.run_unit(op, cluster, env)
    return engine.run_unit(op, cluster, env)


def lower_plan(
    dag: DAG,
    fusion_plan: FusionPlan,
    annotate: Callable[[PlanUnit, Optional[OptimizerResult]], UnitAnnotation],
    hints: Optional[Mapping[int, OptimizerResult]] = None,
    engine_name: str = "",
) -> PhysicalPlan:
    """Lower *fusion_plan* to a :class:`PhysicalPlan`.

    *annotate* is the engine's per-unit hook choosing the physical operator
    kind, the cuboid parameters and the cost estimate; *hints* optionally
    supplies cached :class:`OptimizerResult` objects by unit index so a
    plan-cache hit skips the parameter search.
    """
    producer: Dict[Node, int] = {}
    last_consumer: Dict[EnvKey, int] = {}
    ops: List[UnitOp] = []

    units = list(fusion_plan)
    for index, unit in enumerate(units):
        for key in _consumed_keys(unit):
            last_consumer[key] = index

    keep_alive = _root_keys(dag)
    releases_at: Dict[int, List[EnvKey]] = {}
    for key, index in last_consumer.items():
        if key not in keep_alive:
            releases_at.setdefault(index, []).append(key)

    for index, unit in enumerate(units):
        deps = sorted({
            producer[node]
            for node in unit.dependencies()
            if node.is_operator and node in producer
        })
        hint = hints.get(index) if hints else None
        note = annotate(unit, hint)
        ops.append(
            UnitOp(
                index=index,
                unit=unit,
                kind=note.kind,
                deps=tuple(deps),
                outputs=unit.outputs,
                releases=tuple(sorted(releases_at.get(index, ()), key=str)),
                consumes=tuple(dict.fromkeys(_consumed_keys(unit))),
                pqr=note.pqr,
                optimizer_result=note.optimizer_result,
                estimate=note.estimate,
            )
        )
        for node in unit.outputs:
            producer[node] = index
    return PhysicalPlan(dag, ops, fusion_plan=fusion_plan, engine_name=engine_name)


def run_physical_plan(
    engine,
    physical: PhysicalPlan,
    cluster,
    env: Dict[EnvKey, object],
    parallelism: int = 1,
    unit_observer: Optional[Callable[[UnitOp, float, float], None]] = None,
) -> None:
    """Execute *physical* on *cluster*, materializing unit outputs into *env*.

    ``parallelism <= 1`` is sequential-equivalent mode: units run in the
    fusion plan's original order and each unit's dead inputs are released
    the moment it completes.  ``parallelism > 1`` dispatches each dependency
    wave concurrently — through :func:`parallel_map` threads by default, or
    through the engine's process pool when
    ``EngineConfig(execution_backend="process")`` is eligible (see
    :func:`repro.core.procexec.make_wave_runner`); either way results merge
    in unit index order at the wave barrier, so outputs and modeled totals
    match the sequential run exactly.

    During a wave *env* is only read (all writes happen at the merge
    barrier), which is what makes concurrent unit execution safe.

    *unit_observer* (telemetry) is called as ``observer(op, wall_start,
    wall_end)`` after each completed unit — wall-clock only, so attaching
    one can never change a modeled number.  It may be called from pool
    threads; the engine's observer writes one dict slot per unit index.
    The process backend calls it with a 4th argument — the worker-captured
    span dict (pid, wall/kernel seconds, shm traffic) — so observers must
    accept an optional trailing parameter; this thread path passes none.
    """
    metrics = cluster.metrics

    def run_op(op: UnitOp):
        with cluster.unit_scope(op.index):
            if unit_observer is None:
                return execute_unit(engine, op, cluster, env)
            wall_start = time.perf_counter()
            result = execute_unit(engine, op, cluster, env)
            unit_observer(op, wall_start, time.perf_counter())
            return result

    def merge(op: UnitOp, result) -> None:
        if isinstance(result, dict):
            # multi-output unit (Multi-aggregation fusion)
            for node, value in result.items():
                env[node.node_id] = value
        else:
            env[op.unit.output.node_id] = result

    def release_key(key: EnvKey) -> None:
        value = env.pop(key, None)
        if value is not None:
            metrics.bump("env_keys_released")
            if runner is not None:
                runner.release(value)

    runner = None
    if parallelism <= 1:
        for op in physical.ops:
            merge(op, run_op(op))
            for key in op.releases:
                release_key(key)
        return

    if getattr(engine, "config", None) is not None and (
        engine.config.execution_backend == "process"
    ):
        from repro.core.procexec import make_wave_runner

        runner = make_wave_runner(engine, cluster)

    # Waves run units out of index order, so the index-based ``releases``
    # annotation would free keys a later-wave, smaller-index consumer still
    # needs.  Release by consumer refcount instead: a releasable key dies at
    # the wave barrier after its final consumer actually ran.
    releasable = {key for op in physical.ops for key in op.releases}
    remaining: Dict[EnvKey, set] = {}
    for op in physical.ops:
        for key in op.consumes:
            if key in releasable:
                remaining.setdefault(key, set()).add(op.index)

    try:
        for wave in physical.waves():
            metrics.bump("unit_waves")
            metrics.bump_max("unit_wave_width_max", len(wave))
            if runner is not None and not runner.broken and len(wave) > 1:
                # process backend: workers return StageRecords + output
                # refs; the runner commits them in unit-index order (the
                # order ``reorder_tail`` below restores for threads)
                runner.run_wave(wave, env, run_op, merge, unit_observer)
            else:
                wave_start = metrics.num_stages
                results = parallel_map(
                    run_op, wave, parallelism, metrics=metrics,
                    counter_prefix="unit_pool",
                )
                # restore unit-index record order within the wave so the
                # stage list (and every order-sensitive float sum over it)
                # is bit-identical to the sequential run
                metrics.reorder_tail(
                    wave_start,
                    key=lambda s: (
                        s.unit if s.unit is not None else len(physical.ops)
                    ),
                )
                for op, result in zip(wave, results):
                    merge(op, result)
            for op in wave:
                for key in op.consumes:
                    consumers = remaining.get(key)
                    if consumers is not None:
                        consumers.discard(op.index)
                        if not consumers:
                            del remaining[key]
                            release_key(key)
    finally:
        if runner is not None:
            # results must outlive the store: copy store-backed root
            # outputs out of shared memory, then unlink every segment
            runner.detach_roots(physical, env)
            runner.finish()
