"""The physical-plan layer: a typed unit-graph IR between planner and runtime.

The paper separates *plan generation* (Section 4) from *fused-operator
execution* (Section 3); this module is the seam between the two.  A
:class:`~repro.core.plan.FusionPlan` says *which operators fuse*; lowering it
produces a :class:`PhysicalPlan` — a DAG of :class:`UnitOp` nodes that
additionally says, per unit:

* the **physical operator kind** the engine chose (CFO / BFO / RFO / cell /
  multi-agg / a standalone multiplication strategy);
* the **cuboid parameters** ``(P*, Q*, R*)`` and the
  :class:`~repro.core.optimizer.OptimizerResult` that justified them — the
  parameter search runs once here, at lowering time, instead of inside the
  operator's constructor on the execution path;
* **cost/footprint estimates** from the existing
  :class:`~repro.core.cost.CostModel` (network bytes, flops, modeled
  seconds, per-task memory);
* **dependency edges** on other units (derived from the query DAG), which is
  what lets independent units dispatch concurrently; and
* **materialization lifetimes**: the environment keys whose *last* consumer
  is this unit, so intermediates are released as soon as they are dead
  instead of living until end-of-query.

Because lowering never opens a cluster stage, a ``PhysicalPlan`` is also the
engine's introspection surface: ``engine.explain(query)`` renders one without
executing anything (:meth:`PhysicalPlan.render`).

Execution goes through :func:`run_physical_plan`, the dependency-driven unit
scheduler.  With ``parallelism <= 1`` it is *sequential-equivalent*: units
run one at a time in the fusion plan's original order, so stage records
appear in exactly the order the pre-IR engine produced.  With
``parallelism > 1`` ready units dispatch concurrently through
:func:`~repro.cluster.parallel.parallel_map` in dependency waves; merge
order stays the unit-index order and each unit's stages are pure functions
of its own tasks, so outputs remain bit-identical and every modeled total
(seconds, bytes, flops) unchanged — only wall-clock and the interleaving of
stage records differ.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.parallel import parallel_map
from repro.core.optimizer import OptimizerResult
from repro.core.plan import FusionPlan, PlanUnit
from repro.errors import PlanError
from repro.lang.dag import DAG, InputNode, Node
from repro.utils.formatting import format_bytes

#: Environment key of a materialized value: produced operator outputs are
#: keyed by ``node_id`` (int), input matrices by name (str).
EnvKey = object


@dataclass(frozen=True)
class UnitEstimate:
    """Planner-side cost/footprint estimate for one unit.

    ``seconds`` and ``mem_bytes_per_task`` are only known for units that ran
    the cuboid parameter search (their :class:`PlanCost` carries both);
    generic units estimate traffic and flops from node metadata alone.
    """

    net_bytes: float
    flops: float
    seconds: Optional[float] = None
    mem_bytes_per_task: Optional[float] = None
    #: When ``seconds`` was priced with fitted throughputs
    #: (``calibration="active"``): the same estimate under the paper
    #: constants, so EXPLAIN shows both.  ``None`` on the uncalibrated path.
    paper_seconds: Optional[float] = None


@dataclass(frozen=True)
class UnitAnnotation:
    """What an engine adds to a unit during lowering (the subclass hook)."""

    kind: str
    pqr: Optional[Tuple[int, int, int]] = None
    optimizer_result: Optional[OptimizerResult] = None
    estimate: Optional[UnitEstimate] = None


@dataclass(frozen=True)
class UnitOp:
    """One node of the physical plan: an executable unit, fully annotated."""

    index: int
    unit: Optional[PlanUnit]
    kind: str
    #: Indices of units whose outputs this unit consumes.
    deps: Tuple[int, ...]
    #: Nodes this unit materializes.
    outputs: Tuple[Node, ...]
    #: Environment keys whose last consumer *in fusion-plan order* is this
    #: unit — released as soon as it completes in sequential mode.  Never
    #: contains a key a DAG root still needs.  (Wave-concurrent dispatch may
    #: run units out of index order, so the scheduler releases by consumer
    #: refcount there instead — see :func:`run_physical_plan`.)
    releases: Tuple[EnvKey, ...]
    #: Environment keys this unit reads (deduplicated, stable order).
    consumes: Tuple[EnvKey, ...] = ()
    pqr: Optional[Tuple[int, int, int]] = None
    optimizer_result: Optional[OptimizerResult] = None
    estimate: Optional[UnitEstimate] = None
    #: Display label; defaults to the wrapped unit's plan label.
    name: str = ""

    def label(self) -> str:
        if self.name:
            return self.name
        return self.unit.label() if self.unit is not None else f"unit{self.index}"

    @property
    def is_fused(self) -> bool:
        return self.unit is not None and self.unit.is_fused


def estimate_from_cost(cost, paper_seconds: Optional[float] = None) -> UnitEstimate:
    """A :class:`UnitEstimate` from a cuboid search's
    :class:`~repro.core.cost.PlanCost` (Eq. 2-5 outputs).  *paper_seconds*
    carries the paper-constant price when *cost* was calibrated."""
    return UnitEstimate(
        net_bytes=float(cost.net_bytes),
        flops=float(cost.com_flops),
        seconds=float(cost.cost_seconds),
        mem_bytes_per_task=float(cost.mem_bytes_per_task),
        paper_seconds=paper_seconds,
    )


def generic_unit_estimate(unit: PlanUnit) -> UnitEstimate:
    """A metadata-only estimate for units without a parameter search:
    consolidation traffic ~ the frontier matrices' sizes, flops ~ the fused
    operators' ``numOp`` totals (Eq. 5 with no replication)."""
    net = float(sum(n.meta.estimated_bytes for n in unit.plan.frontier()))
    flops = float(sum(n.estimated_flops() for n in unit.plan.nodes))
    return UnitEstimate(net_bytes=net, flops=flops)


class PhysicalPlan:
    """A fusion plan lowered to annotated, dependency-linked unit ops."""

    def __init__(
        self,
        dag: DAG,
        ops: Sequence[UnitOp],
        fusion_plan: Optional[FusionPlan] = None,
        engine_name: str = "",
    ):
        self.dag = dag
        self.ops: Tuple[UnitOp, ...] = tuple(ops)
        self.fusion_plan = fusion_plan
        self.engine_name = engine_name
        for op in self.ops:
            for dep in op.deps:
                if not 0 <= dep < op.index:
                    raise PlanError(
                        f"unit {op.index} depends on {dep}, which does not "
                        f"precede it"
                    )

    # -- structure ---------------------------------------------------------

    def waves(self) -> List[List[UnitOp]]:
        """Units grouped into dependency waves (Kahn levels).

        Every unit lands in the earliest wave all its dependencies precede;
        units within a wave are mutually independent and listed in unit-index
        order, so dispatch and merge order are deterministic.
        """
        level: Dict[int, int] = {}
        waves: List[List[UnitOp]] = []
        for op in self.ops:
            depth = 1 + max((level[d] for d in op.deps), default=-1)
            level[op.index] = depth
            while len(waves) <= depth:
                waves.append([])
            waves[depth].append(op)
        return waves

    def critical_path_seconds(self) -> Optional[float]:
        """Sum over waves of the slowest estimated unit, when every unit has
        a modeled-seconds estimate; ``None`` otherwise."""
        total = 0.0
        for wave in self.waves():
            secs = [
                op.estimate.seconds
                for op in wave
                if op.estimate is not None and op.estimate.seconds is not None
            ]
            if len(secs) != len(wave):
                return None
            total += max(secs)
        return total

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """The EXPLAIN text: every unit with kind, fused nodes, cuboid
        ``(P, Q, R)``, estimates, dependencies and lifetime releases."""
        waves = self.waves()
        header = (
            f"PhysicalPlan[{self.engine_name or 'engine'}]: "
            f"{len(self.ops)} unit(s), {len(waves)} wave(s), "
            f"{len(self.dag.roots)} root(s)"
        )
        lines = [header]
        for depth, wave in enumerate(waves):
            lines.append(f"wave {depth}:")
            for op in wave:
                lines.append("  " + self._render_op(op))
        return "\n".join(lines)

    @staticmethod
    def _render_op(op: UnitOp) -> str:
        parts = [f"[{op.index}] {op.kind:<10} {op.label()}"]
        if op.pqr is not None:
            parts.append(f"pqr={op.pqr}")
        est = op.estimate
        if est is not None:
            detail = f"est: net={format_bytes(int(est.net_bytes))} flops={est.flops:.3g}"
            if est.seconds is not None:
                detail += f" sec={est.seconds:.4g}"
            if est.paper_seconds is not None:
                detail += f" (paper {est.paper_seconds:.4g})"
            if est.mem_bytes_per_task is not None:
                detail += f" mem/task={format_bytes(int(est.mem_bytes_per_task))}"
            parts.append(detail)
        outs = ",".join(f"#{n.node_id}" for n in op.outputs)
        parts.append(f"-> {outs}")
        if op.deps:
            parts.append("deps=" + ",".join(str(d) for d in op.deps))
        if op.releases:
            parts.append(
                "releases=" + ",".join(_release_label(k) for k in op.releases)
            )
        return "  ".join(parts)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def __repr__(self) -> str:
        return (
            f"PhysicalPlan(engine={self.engine_name!r}, units={len(self.ops)}, "
            f"waves={len(self.waves())})"
        )


def _release_label(key: EnvKey) -> str:
    return f"#{key}" if isinstance(key, int) else str(key)


def _consumed_keys(unit: PlanUnit) -> List[EnvKey]:
    """Environment keys a unit reads: operator dependencies by node id,
    input leaves by name."""
    keys: List[EnvKey] = []
    for dep in unit.dependencies():
        if isinstance(dep, InputNode):
            keys.append(dep.name)
        elif dep.is_operator:
            keys.append(dep.node_id)
    return keys


def _root_keys(dag: DAG) -> set:
    """Keys the result collection still needs after the last unit ran."""
    keys = set()
    for root in dag.roots:
        if isinstance(root, InputNode):
            keys.add(root.name)
        else:
            keys.add(root.node_id)
    return keys


def lower_plan(
    dag: DAG,
    fusion_plan: FusionPlan,
    annotate: Callable[[PlanUnit, Optional[OptimizerResult]], UnitAnnotation],
    hints: Optional[Mapping[int, OptimizerResult]] = None,
    engine_name: str = "",
) -> PhysicalPlan:
    """Lower *fusion_plan* to a :class:`PhysicalPlan`.

    *annotate* is the engine's per-unit hook choosing the physical operator
    kind, the cuboid parameters and the cost estimate; *hints* optionally
    supplies cached :class:`OptimizerResult` objects by unit index so a
    plan-cache hit skips the parameter search.
    """
    producer: Dict[Node, int] = {}
    last_consumer: Dict[EnvKey, int] = {}
    ops: List[UnitOp] = []

    units = list(fusion_plan)
    for index, unit in enumerate(units):
        for key in _consumed_keys(unit):
            last_consumer[key] = index

    keep_alive = _root_keys(dag)
    releases_at: Dict[int, List[EnvKey]] = {}
    for key, index in last_consumer.items():
        if key not in keep_alive:
            releases_at.setdefault(index, []).append(key)

    for index, unit in enumerate(units):
        deps = sorted({
            producer[node]
            for node in unit.dependencies()
            if node.is_operator and node in producer
        })
        hint = hints.get(index) if hints else None
        note = annotate(unit, hint)
        ops.append(
            UnitOp(
                index=index,
                unit=unit,
                kind=note.kind,
                deps=tuple(deps),
                outputs=unit.outputs,
                releases=tuple(sorted(releases_at.get(index, ()), key=str)),
                consumes=tuple(dict.fromkeys(_consumed_keys(unit))),
                pqr=note.pqr,
                optimizer_result=note.optimizer_result,
                estimate=note.estimate,
            )
        )
        for node in unit.outputs:
            producer[node] = index
    return PhysicalPlan(dag, ops, fusion_plan=fusion_plan, engine_name=engine_name)


def run_physical_plan(
    engine,
    physical: PhysicalPlan,
    cluster,
    env: Dict[EnvKey, object],
    parallelism: int = 1,
    unit_observer: Optional[Callable[[UnitOp, float, float], None]] = None,
) -> None:
    """Execute *physical* on *cluster*, materializing unit outputs into *env*.

    ``parallelism <= 1`` is sequential-equivalent mode: units run in the
    fusion plan's original order and each unit's dead inputs are released
    the moment it completes.  ``parallelism > 1`` dispatches each dependency
    wave concurrently — through :func:`parallel_map` threads by default, or
    through the engine's process pool when
    ``EngineConfig(execution_backend="process")`` is eligible (see
    :func:`repro.core.procexec.make_wave_runner`); either way results merge
    in unit index order at the wave barrier, so outputs and modeled totals
    match the sequential run exactly.

    During a wave *env* is only read (all writes happen at the merge
    barrier), which is what makes concurrent unit execution safe.

    *unit_observer* (telemetry) is called as ``observer(op, wall_start,
    wall_end)`` after each completed unit — wall-clock only, so attaching
    one can never change a modeled number.  It may be called from pool
    threads; the engine's observer writes one dict slot per unit index.
    """
    metrics = cluster.metrics

    def run_op(op: UnitOp):
        with cluster.unit_scope(op.index):
            if unit_observer is None:
                return engine.run_unit(op, cluster, env)
            wall_start = time.perf_counter()
            result = engine.run_unit(op, cluster, env)
            unit_observer(op, wall_start, time.perf_counter())
            return result

    def merge(op: UnitOp, result) -> None:
        if isinstance(result, dict):
            # multi-output unit (Multi-aggregation fusion)
            for node, value in result.items():
                env[node.node_id] = value
        else:
            env[op.unit.output.node_id] = result

    def release_key(key: EnvKey) -> None:
        value = env.pop(key, None)
        if value is not None:
            metrics.bump("env_keys_released")
            if runner is not None:
                runner.release(value)

    runner = None
    if parallelism <= 1:
        for op in physical.ops:
            merge(op, run_op(op))
            for key in op.releases:
                release_key(key)
        return

    if getattr(engine, "config", None) is not None and (
        engine.config.execution_backend == "process"
    ):
        from repro.core.procexec import make_wave_runner

        runner = make_wave_runner(engine, cluster)

    # Waves run units out of index order, so the index-based ``releases``
    # annotation would free keys a later-wave, smaller-index consumer still
    # needs.  Release by consumer refcount instead: a releasable key dies at
    # the wave barrier after its final consumer actually ran.
    releasable = {key for op in physical.ops for key in op.releases}
    remaining: Dict[EnvKey, set] = {}
    for op in physical.ops:
        for key in op.consumes:
            if key in releasable:
                remaining.setdefault(key, set()).add(op.index)

    try:
        for wave in physical.waves():
            metrics.bump("unit_waves")
            metrics.bump_max("unit_wave_width_max", len(wave))
            if runner is not None and not runner.broken and len(wave) > 1:
                # process backend: workers return StageRecords + output
                # refs; the runner commits them in unit-index order (the
                # order ``reorder_tail`` below restores for threads)
                runner.run_wave(wave, env, run_op, merge, unit_observer)
            else:
                wave_start = metrics.num_stages
                results = parallel_map(
                    run_op, wave, parallelism, metrics=metrics,
                    counter_prefix="unit_pool",
                )
                # restore unit-index record order within the wave so the
                # stage list (and every order-sensitive float sum over it)
                # is bit-identical to the sequential run
                metrics.reorder_tail(
                    wave_start,
                    key=lambda s: (
                        s.unit if s.unit is not None else len(physical.ops)
                    ),
                )
                for op, result in zip(wave, results):
                    merge(op, result)
            for op in wave:
                for key in op.consumes:
                    consumers = remaining.get(key)
                    if consumers is not None:
                        consumers.discard(op.index)
                        if not consumers:
                            del remaining[key]
                            release_key(key)
    finally:
        if runner is not None:
            # results must outlive the store: copy store-backed root
            # outputs out of shared memory, then unlink every segment
            runner.detach_roots(physical, env)
            runner.finish()
