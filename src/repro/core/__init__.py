"""FuseME core: the paper's primary contribution.

* :mod:`repro.core.plan` — partial fusion plans and fusion plans.
* :mod:`repro.core.spaces` — the 3-D model space of Section 3.1 (L-, R-, O-,
  MM-space assignment, including nested spaces for inner matmuls) and the
  axis tags that map every plan node onto the ``(i, j, k)`` axes.
* :mod:`repro.core.cuboid` — ``(P, Q, R)`` cuboid partitioning (Section 2.3).
* :mod:`repro.core.cost` — ``MemEst`` / ``NetEst`` / ``ComEst`` / ``Cost``
  (Algorithm 1, Eqs. 2-5).
* :mod:`repro.core.optimizer` — exhaustive and pruned ``(P*, Q*, R*)`` search
  (Section 3.3, Figure 13(d)).
* :mod:`repro.core.cfo` — the Cuboid-based Fused Operator (Section 3.2).
* :mod:`repro.core.cfg` — the Cuboid-based Fusion plan Generator
  (Algorithms 2 and 3).
* :mod:`repro.core.physical` — the physical-plan layer: fusion plans lower
  to a typed unit graph (:class:`UnitOp` DAG) with operator kinds, cuboid
  parameters, cost estimates and materialization lifetimes.
* :mod:`repro.core.calibration` — per-kernel effective-throughput fitting
  that closes the predicted-vs-measured loop for the cost model.
* :mod:`repro.core.engine` — the FuseME engine tying it all together.
"""

from repro.core.calibration import (
    CalibrationStore,
    KernelCalibration,
    Observation,
    fit_throughput,
    sparsity_bucket,
)
from repro.core.plan import FusionPlan, MultiAggPlan, PartialFusionPlan, PlanUnit
from repro.core.spaces import AxisKind, SpaceKind, SpaceTree, assign_axis_tags, build_space_tree
from repro.core.cuboid import CuboidPartitioning, chunk_ranges
from repro.core.cost import CostModel, PlanCost
from repro.core.optimizer import OptimizerResult, optimize_parameters
from repro.core.cfo import CuboidFusedOperator
from repro.core.cfg import generate_fusion_plan
from repro.core.physical import (
    PhysicalPlan,
    UnitAnnotation,
    UnitEstimate,
    UnitOp,
    lower_plan,
    run_physical_plan,
)
from repro.core.engine import FuseMEEngine

__all__ = [
    "CalibrationStore",
    "KernelCalibration",
    "Observation",
    "fit_throughput",
    "sparsity_bucket",
    "PartialFusionPlan",
    "FusionPlan",
    "MultiAggPlan",
    "PlanUnit",
    "SpaceKind",
    "AxisKind",
    "SpaceTree",
    "build_space_tree",
    "assign_axis_tags",
    "CuboidPartitioning",
    "chunk_ranges",
    "CostModel",
    "PlanCost",
    "optimize_parameters",
    "OptimizerResult",
    "CuboidFusedOperator",
    "generate_fusion_plan",
    "PhysicalPlan",
    "UnitAnnotation",
    "UnitEstimate",
    "UnitOp",
    "lower_plan",
    "run_physical_plan",
    "FuseMEEngine",
]
