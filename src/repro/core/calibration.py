"""Cost-model calibration: fitting the paper's constants to this machine.

The optimizer prices every ``(P, Q, R)`` cuboid and every fusion-plan split
with the paper's hardware constants (``Bn`` = 1 Gbps, ``Bc`` = 546 GFLOPS,
Section 6.1).  Execution, however, reports *measured* per-unit seconds that
include everything the closed-form Eq. 2 leaves out: per-stage launch
overhead, utilization loss when a stage runs fewer tasks than the cluster
has slots, per-stage (rather than per-unit) communication/computation
overlap, and kernel efficiency that varies with sparsity.  On the seed
benchmarks the result is a ~30x gap (predicted 0.031 s vs measured 0.611 s
per stage) — the search optimizes for a machine we don't run on.

This module closes that loop.  A :class:`CalibrationStore` accumulates
:class:`Observation` rows — one per executed physical-plan unit, keyed by
the unit's physical operator kind (``cfo`` / ``cuboid-mm`` / ``multi-agg``
/ ``cell`` / ...) and a sparsity bucket — and fits, per kernel key, three
effective-throughput coefficients by robust least squares::

    measured_seconds  ~=  net_est * inv_net_rate
                        + com_est * inv_com_rate
                        + overhead_seconds

``net_est`` / ``com_est`` are the planner's own Net/Com *estimates* for the
unit — the fit lives in the feature space predictions are made in, so any
systematic estimate bias folds into the rates.  ``inv_net_rate`` is seconds
per (estimated) byte moved cluster-wide (its reciprocal is the *effective*
aggregate network bandwidth ``N * Bn_eff`` for that kernel class),
``inv_com_rate`` seconds per (estimated) flop (reciprocal: effective ``N *
Bc_eff``), and ``overhead_seconds`` the fixed per-unit cost (stage launch
waves) no bandwidth term can explain.  The additive form is deliberate:
measured unit time sums per-*stage* maxima over heterogeneous stages, which
an additive model tracks far better than one whole-unit ``max`` — and it
keeps the cost monotone in each of ``P, Q, R``, so the pruned search's
bounds (:mod:`repro.core.optimizer`) stay valid under calibration.

Robustness: the fit is ordinary least squares with column equilibration, an
MAD-based outlier rejection pass (straggler iterations, GC pauses), and a
non-negativity clamp (a negative throughput is always a fitting artifact).
Everything is deterministic — same observations, same coefficients.

The store is thread-safe (the serving layer shares one across tenants),
JSON round-trips via :meth:`CalibrationStore.save` /
:meth:`CalibrationStore.load`, and never imports anything above the config
layer — engines hand it plain floats (enforced by ``scripts/check_layers.py``).
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Density at or above which a kernel's inputs count as dense.
DENSE_THRESHOLD = 0.4
#: Density below which a kernel's inputs count as (very) sparse.
SPARSE_THRESHOLD = 0.05

#: Pooled-fit pseudo bucket: all observations of a kind, any sparsity.
ANY_BUCKET = "*"

KernelKey = Tuple[str, str]


def sparsity_bucket(density: Optional[float]) -> str:
    """The calibration bucket for a kernel whose sparsest input has
    *density* (``None`` — density unknown — buckets as dense)."""
    if density is None or density >= DENSE_THRESHOLD:
        return "dense"
    if density >= SPARSE_THRESHOLD:
        return "mid"
    return "sparse"


def _finite(value: Optional[float]) -> Optional[float]:
    """*value* as a float when finite, else ``None`` (JSON-safe)."""
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


@dataclass(frozen=True)
class Observation:
    """One executed unit's prediction joined with its measurement.

    ``net_bytes`` / ``flops`` are the planner's *estimated* Net/Com for the
    unit — the regressors.  Fitting against the estimates (rather than the
    measured counters) is deliberate: :meth:`KernelCalibration.predict_seconds`
    is applied at planning time, when only estimates exist, so train and
    predict must share a feature space — any systematic estimate bias is
    absorbed into the fitted rates, which is exactly what "effective
    throughput" means.  ``measured_net_bytes`` / ``measured_flops`` keep the
    unit's measured totals for accountability (how far the size estimates
    drifted), ``measured_seconds`` is the modeled execution seconds the
    simulator charged (the regression target), ``predicted_seconds`` what
    the planner claimed (``None`` for units that ran no parameter search),
    and ``wall_seconds`` the real wall-clock the unit's stages took
    (observability only — never a regression target, it depends on host
    load).
    """

    net_bytes: float
    flops: float
    measured_seconds: float
    predicted_seconds: Optional[float] = None
    measured_net_bytes: Optional[float] = None
    measured_flops: Optional[float] = None
    wall_seconds: Optional[float] = None
    num_stages: int = 0
    num_tasks: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "net_bytes": self.net_bytes,
            "flops": self.flops,
            "measured_seconds": self.measured_seconds,
            "predicted_seconds": _finite(self.predicted_seconds),
            "measured_net_bytes": _finite(self.measured_net_bytes),
            "measured_flops": _finite(self.measured_flops),
            "wall_seconds": _finite(self.wall_seconds),
            "num_stages": self.num_stages,
            "num_tasks": self.num_tasks,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "Observation":
        return cls(
            net_bytes=float(doc["net_bytes"]),
            flops=float(doc["flops"]),
            measured_seconds=float(doc["measured_seconds"]),
            predicted_seconds=_finite(doc.get("predicted_seconds")),
            measured_net_bytes=_finite(doc.get("measured_net_bytes")),
            measured_flops=_finite(doc.get("measured_flops")),
            wall_seconds=_finite(doc.get("wall_seconds")),
            num_stages=int(doc.get("num_stages", 0)),
            num_tasks=int(doc.get("num_tasks", 0)),
        )


@dataclass(frozen=True)
class KernelCalibration:
    """Fitted effective-throughput coefficients for one kernel class.

    ``predict_seconds`` is the calibrated Eq. 2 replacement the
    :class:`~repro.core.cost.CostModel` prices with; the two
    ``effective_*`` helpers express the same coefficients in the paper's
    vocabulary (aggregate cluster bandwidths) for reports.
    """

    kind: str
    bucket: str
    #: Seconds per byte of cluster-wide traffic (1 / (N * Bn_eff)).
    inv_net_rate: float
    #: Seconds per floating point operation (1 / (N * Bc_eff)).
    inv_com_rate: float
    #: Fixed seconds per unit (stage-launch waves, scheduling).
    overhead_seconds: float
    samples: int
    #: Mean abs relative residual of the fit on its own window.
    residual_error: float = 0.0
    #: Store generation this fit was produced at.
    generation: int = 0

    def predict_seconds(self, net_bytes: float, flops: float) -> float:
        """Calibrated modeled seconds for a unit moving *net_bytes* and
        computing *flops* cluster-wide."""
        return (
            net_bytes * self.inv_net_rate
            + flops * self.inv_com_rate
            + self.overhead_seconds
        )

    def effective_network_bandwidth(self) -> float:
        """Aggregate effective ``N * Bn`` in bytes/second (inf if the fit
        attributes nothing to the network)."""
        return 1.0 / self.inv_net_rate if self.inv_net_rate > 0 else math.inf

    def effective_compute_bandwidth(self) -> float:
        """Aggregate effective ``N * Bc`` in flops/second."""
        return 1.0 / self.inv_com_rate if self.inv_com_rate > 0 else math.inf

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "bucket": self.bucket,
            "inv_net_rate": self.inv_net_rate,
            "inv_com_rate": self.inv_com_rate,
            "overhead_seconds": self.overhead_seconds,
            "samples": self.samples,
            "residual_error": self.residual_error,
            "generation": self.generation,
        }


def _solve_nonneg(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Least squares with non-negative coefficients (tiny active-set).

    Columns are equilibrated before solving (bytes, flops and the constant
    differ by many orders of magnitude); a negative coefficient is dropped
    (clamped to zero) and the remaining columns refit, at most once per
    column — three columns, so the loop is bounded and deterministic.
    """
    n_cols = X.shape[1]
    active = list(range(n_cols))
    coef = np.zeros(n_cols)
    while active:
        sub = X[:, active]
        scale = np.max(np.abs(sub), axis=0)
        scale[scale == 0.0] = 1.0
        solution, *_ = np.linalg.lstsq(sub / scale, y, rcond=None)
        solution = solution / scale
        negative = [i for i, value in zip(active, solution) if value < 0.0]
        if not negative:
            coef[:] = 0.0
            for i, value in zip(active, solution):
                coef[i] = value
            return coef
        active = [i for i in active if i not in negative]
    return coef


def fit_throughput(
    observations: Sequence[Observation],
) -> Tuple[float, float, float, float]:
    """Fit ``(inv_net_rate, inv_com_rate, overhead, residual_error)`` to
    *observations* by robust non-negative least squares.

    Deterministic: one OLS pass, one MAD outlier-rejection pass (keeping at
    least half the window so a bimodal window cannot empty itself), one
    refit.  ``residual_error`` is the mean abs relative error of the final
    fit over the *full* window (outliers included — honesty about how well
    the model explains what actually happened).
    """
    rows = [
        obs for obs in observations
        if math.isfinite(obs.measured_seconds) and obs.measured_seconds > 0.0
        and math.isfinite(obs.net_bytes) and math.isfinite(obs.flops)
    ]
    if not rows:
        return 0.0, 0.0, 0.0, 0.0
    X = np.array([[obs.net_bytes, obs.flops, 1.0] for obs in rows])
    y = np.array([obs.measured_seconds for obs in rows])

    coef = _solve_nonneg(X, y)
    residuals = y - X @ coef
    if len(rows) >= 4:
        median = float(np.median(residuals))
        mad = float(np.median(np.abs(residuals - median)))
        tolerance = 3.5 * 1.4826 * mad + 1e-12
        keep = np.abs(residuals - median) <= tolerance
        if keep.sum() >= max(3, len(rows) // 2) and not keep.all():
            coef = _solve_nonneg(X[keep], y[keep])

    predicted = X @ coef
    residual_error = float(np.mean(np.abs(predicted - y) / y))
    return float(coef[0]), float(coef[1]), float(coef[2]), residual_error


class CalibrationStore:
    """Accumulates per-kernel observations and serves fitted coefficients.

    One store per engine (the serving layer's tenants all execute through
    one engine, so they share it).  ``observe`` appends, ``commit`` closes
    an observation batch — bumping :attr:`generation` exactly when new data
    arrived, which is what the plan cache's error-triggered invalidation
    compares against (re-planning is pointless unless the fit could have
    moved).  Fits are computed lazily per key and cached until new
    observations dirty them.

    Thread-safe: every public method takes the store lock; fitting a
    window of <= ``window`` rows of 3 columns is microseconds, so holding
    the lock through a fit is fine even under the serving layer.
    """

    def __init__(self, window: int = 256, min_samples: int = 3):
        if window <= 0:
            raise ValueError("calibration window must be positive")
        if min_samples < 2:
            raise ValueError("calibration min_samples must be at least 2")
        self.window = window
        self.min_samples = min_samples
        self._lock = threading.RLock()
        self._observations: Dict[KernelKey, Deque[Observation]] = {}
        self._fits: Dict[KernelKey, Optional[KernelCalibration]] = {}
        self._generation = 0
        self._pending = 0
        #: Names of the engines/replicas sharing this store (observability
        #: only — the replica pool registers each replica so a status page
        #: can show that N replicas plan off one set of fits).
        self._clients: set = set()

    def register_client(self, name: str) -> None:
        """Note that *name* (an engine replica, a replay run, ...) reads
        and feeds this store.  Purely observational; shows in stats()."""
        with self._lock:
            self._clients.add(str(name))

    # -- recording ---------------------------------------------------------

    def observe(
        self,
        kind: str,
        bucket: str,
        *,
        net_bytes: float,
        flops: float,
        measured_seconds: float,
        predicted_seconds: Optional[float] = None,
        measured_net_bytes: Optional[float] = None,
        measured_flops: Optional[float] = None,
        wall_seconds: Optional[float] = None,
        num_stages: int = 0,
        num_tasks: int = 0,
    ) -> bool:
        """Record one unit's measurement; returns False when the row is
        unusable (nothing measured, or non-finite garbage) — calibration
        must be able to trust every row it fits."""
        measured = _finite(measured_seconds)
        net = _finite(net_bytes)
        ops = _finite(flops)
        if measured is None or measured <= 0.0 or net is None or ops is None:
            return False
        obs = Observation(
            net_bytes=net,
            flops=ops,
            measured_seconds=measured,
            predicted_seconds=_finite(predicted_seconds),
            measured_net_bytes=_finite(measured_net_bytes),
            measured_flops=_finite(measured_flops),
            wall_seconds=_finite(wall_seconds),
            num_stages=num_stages,
            num_tasks=num_tasks,
        )
        with self._lock:
            self._window_for((kind, bucket)).append(obs)
            self._fits.pop((kind, bucket), None)
            self._fits.pop((kind, ANY_BUCKET), None)
            self._pending += 1
        return True

    def commit(self) -> int:
        """Close the current observation batch; returns the (possibly
        advanced) generation.  One engine execute = one batch."""
        with self._lock:
            if self._pending:
                self._pending = 0
                self._generation += 1
            return self._generation

    def _window_for(self, key: KernelKey) -> Deque[Observation]:
        window = self._observations.get(key)
        if window is None:
            window = deque(maxlen=self.window)
            self._observations[key] = window
        return window

    @property
    def generation(self) -> int:
        """Monotone counter advanced by each committed observation batch."""
        with self._lock:
            return self._generation

    @property
    def num_observations(self) -> int:
        with self._lock:
            return sum(len(w) for w in self._observations.values())

    # -- fitting -----------------------------------------------------------

    def coefficients(self, kind: str, bucket: str) -> Optional[KernelCalibration]:
        """The fitted coefficients for ``(kind, bucket)``.

        Falls back to the pooled kind-wide fit when the exact bucket has
        too few samples; ``None`` when the kind as a whole does (the cost
        model then prices with the paper constants — calibration never
        guesses).
        """
        with self._lock:
            exact = self._observations.get((kind, bucket))
            if exact is not None and len(exact) >= self.min_samples:
                return self._fit((kind, bucket), list(exact))
            pooled: List[Observation] = []
            for (k, _), window in self._observations.items():
                if k == kind:
                    pooled.extend(window)
            if len(pooled) >= self.min_samples:
                return self._fit((kind, ANY_BUCKET), pooled)
            return None

    def _fit(
        self, key: KernelKey, rows: List[Observation]
    ) -> Optional[KernelCalibration]:
        cached = self._fits.get(key)
        if cached is not None and cached.samples == len(rows):
            return cached
        inv_net, inv_com, overhead, residual = fit_throughput(rows)
        if inv_net == 0.0 and inv_com == 0.0 and overhead == 0.0:
            return None
        fit = KernelCalibration(
            kind=key[0],
            bucket=key[1],
            inv_net_rate=inv_net,
            inv_com_rate=inv_com,
            overhead_seconds=overhead,
            samples=len(rows),
            residual_error=residual,
            generation=self._generation,
        )
        self._fits[key] = fit
        return fit

    def predict(
        self, kind: str, bucket: str, net_bytes: float, flops: float
    ) -> Optional[float]:
        """Calibrated seconds for a prospective unit, ``None`` when the
        kernel class has no usable fit yet."""
        fit = self.coefficients(kind, bucket)
        if fit is None:
            return None
        return fit.predict_seconds(net_bytes, flops)

    # -- accountability ----------------------------------------------------

    def mean_abs_error(self) -> Optional[float]:
        """Mean abs relative error of the *planner's* predictions over every
        stored observation that carries one (the headline calibration-gap
        number; shrinks as calibrated plans replace paper-constant ones)."""
        errors: List[float] = []
        with self._lock:
            for window in self._observations.values():
                for obs in window:
                    if obs.predicted_seconds is None or obs.measured_seconds <= 0:
                        continue
                    errors.append(
                        abs(obs.predicted_seconds - obs.measured_seconds)
                        / obs.measured_seconds
                    )
        if not errors:
            return None
        return sum(errors) / len(errors)

    def stats(self) -> Dict[str, object]:
        """Calibration state as one plain dict (status pages, Prometheus)."""
        with self._lock:
            kernels: Dict[str, Dict[str, object]] = {}
            for (kind, bucket), window in sorted(self._observations.items()):
                fit = self._fit((kind, bucket), list(window)) if (
                    len(window) >= self.min_samples
                ) else None
                entry: Dict[str, object] = {"samples": len(window)}
                if fit is not None:
                    entry.update(
                        inv_net_rate=fit.inv_net_rate,
                        inv_com_rate=fit.inv_com_rate,
                        overhead_seconds=fit.overhead_seconds,
                        residual_error=fit.residual_error,
                    )
                kernels[f"{kind}/{bucket}"] = entry
            return {
                "generation": self._generation,
                "observations": sum(
                    len(w) for w in self._observations.values()
                ),
                "mean_abs_seconds_error": self.mean_abs_error(),
                "clients": sorted(self._clients),
                "kernels": kernels,
            }

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "version": 1,
                "window": self.window,
                "min_samples": self.min_samples,
                "generation": self._generation,
                "observations": {
                    f"{kind}\t{bucket}": [obs.to_dict() for obs in window]
                    for (kind, bucket), window in sorted(
                        self._observations.items()
                    )
                },
            }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "CalibrationStore":
        store = cls(
            window=int(doc.get("window", 256)),
            min_samples=int(doc.get("min_samples", 3)),
        )
        store._generation = int(doc.get("generation", 0))
        for key, rows in doc.get("observations", {}).items():
            kind, _, bucket = key.partition("\t")
            window = store._window_for((kind, bucket))
            for row in rows:
                window.append(Observation.from_dict(row))
        return store

    def save(self, path: str) -> None:
        """Write the store (observations + settings) as strict JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, allow_nan=False)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "CalibrationStore":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def merge(self, other: "CalibrationStore") -> None:
        """Fold *other*'s observations into this store (calibration files
        from several replay runs compose)."""
        with other._lock:
            snapshot = {
                key: list(window)
                for key, window in other._observations.items()
            }
        with self._lock:
            for key, rows in snapshot.items():
                window = self._window_for(key)
                window.extend(rows)
                self._fits.pop(key, None)
                self._fits.pop((key[0], ANY_BUCKET), None)
            self._generation += 1

    def clear(self) -> None:
        with self._lock:
            self._observations.clear()
            self._fits.clear()
            self._pending = 0

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"CalibrationStore(kernels={len(self._observations)}, "
                f"observations={self.num_observations}, "
                f"generation={self._generation})"
            )
