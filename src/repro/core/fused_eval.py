"""Fused local evaluation of a partial plan over per-task slices.

Every distributed fused operator (CFO, BFO, RFO) ultimately runs the same
thing inside a task: the partial plan's operator chain applied to *slices* of
the input matrices, with no intermediate materialization between operators.
This module implements that local execution once, on :class:`Block` payloads
(so dense/sparse dispatch and flop counting stay consistent with the rest of
the library), plus the masked (SDDMM) evaluation path that realises the
paper's sparsity exploitation: when a sparse element-wise multiplication
masks the main product, only the masked cells are ever computed, as 1-D
gathered vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.blocks import (
    Block,
    aggregate,
    binary,
    binary_flops,
    matmul,
    matmul_flops,
    sddmm,
    sddmm_flops,
    unary,
    unary_flops,
)
from repro.blocks.kernels import (
    BINARY_KERNELS,
    UNARY_KERNELS,
    aggregate_flops,
)
from repro.core.plan import PartialFusionPlan
from repro.core.spaces import SparsityMask
from repro.errors import ExecutionError, PlanError
from repro.lang.dag import (
    AggNode,
    BinaryNode,
    MatMulNode,
    Node,
    TransposeNode,
    UnaryNode,
)

#: A frontier consumption point bound to this task's slice of the input.
Edge = Tuple[Node, int]


@dataclass
class SliceEnv:
    """Per-task bindings: frontier edges to block slices, plus an optional
    pre-computed value for one plan node (the aggregated main product)."""

    frontier: Dict[Edge, Block]
    bound_nodes: Dict[int, Block] = field(default_factory=dict)
    flops: int = 0

    def bind_node(self, node: Node, value: Block) -> None:
        self.bound_nodes[node.node_id] = value


def evaluate_slice(
    plan: PartialFusionPlan,
    env: SliceEnv,
    root: Optional[Node] = None,
) -> Block:
    """Evaluate the plan (or the sub-plan rooted at *root*) on slice bindings.

    Intermediates flow operator-to-operator as in-memory blocks and are never
    "materialized" in the distributed sense.  Flops accumulate on *env*.
    """
    root = root if root is not None else plan.root
    memo: Dict[int, Block] = {}

    def rec(node: Node) -> Block:
        bound = env.bound_nodes.get(node.node_id)
        if bound is not None:
            return bound
        cached = memo.get(node.node_id)
        if cached is not None:
            return cached
        if node not in plan.nodes:
            raise PlanError(
                f"unbound frontier node {node!r} reached without an edge lookup"
            )
        operands: list[Block] = []
        for idx, child in enumerate(node.inputs):
            child_bound = env.bound_nodes.get(child.node_id)
            if child_bound is not None:
                operands.append(child_bound)
            elif child in plan.nodes:
                operands.append(rec(child))
            else:
                try:
                    operands.append(env.frontier[(node, idx)])
                except KeyError:
                    raise ExecutionError(
                        f"no slice bound for operand {idx} of {node!r}"
                    ) from None
        result = _apply(node, operands, env)
        memo[node.node_id] = result
        return result

    return rec(root)


def _apply(node: Node, operands: list[Block], env: SliceEnv) -> Block:
    if isinstance(node, UnaryNode):
        env.flops += unary_flops(node.kernel, operands[0])
        return unary(node.kernel, operands[0])
    if isinstance(node, BinaryNode):
        if node.has_scalar:
            if node.scalar_on_left:
                env.flops += binary_flops(node.kernel, node.scalar, operands[0])
                return binary(node.kernel, node.scalar, operands[0])
            env.flops += binary_flops(node.kernel, operands[0], node.scalar)
            return binary(node.kernel, operands[0], node.scalar)
        env.flops += binary_flops(node.kernel, operands[0], operands[1])
        return binary(node.kernel, operands[0], operands[1])
    if isinstance(node, MatMulNode):
        env.flops += matmul_flops(operands[0], operands[1])
        return matmul(operands[0], operands[1])
    if isinstance(node, TransposeNode):
        env.flops += operands[0].nnz if operands[0].is_sparse else (
            operands[0].shape[0] * operands[0].shape[1]
        )
        return operands[0].transpose()
    if isinstance(node, AggNode):
        env.flops += aggregate_flops(node.kernel, operands[0])
        return aggregate(node.kernel, operands[0])
    raise PlanError(f"cannot evaluate node type {type(node).__name__}")


# ---------------------------------------------------------------------------
# masked (SDDMM) evaluation — sparsity exploitation
# ---------------------------------------------------------------------------


@dataclass
class MaskedResult:
    """Outcome of one masked evaluation over a task's tile."""

    value: Block
    positions: int


def mask_positions(
    plan: PartialFusionPlan, env: SliceEnv, mask: SparsityMask
) -> tuple[np.ndarray, np.ndarray]:
    """Non-zero positions of the mask-side expression on this task's slices.

    These are the only output cells of the main product that can survive the
    masking multiplication — everything else is skipped entirely.
    """
    mask_block = _eval_operand(plan, env, mask.mask_mul, mask.mask_operand_index)
    mask_csr = mask_block.to_sparse().data
    return mask_csr.nonzero()


def masked_product(
    plan: PartialFusionPlan,
    env: SliceEnv,
    mm: MatMulNode,
    rows: np.ndarray,
    cols: np.ndarray,
) -> Block:
    """The main product computed only at the masked cells, via SDDMM.

    L- and R-space (everything under ``mm``) evaluate as usual on this task's
    slices; the multiplication itself touches only ``len(rows)`` cells.
    """
    left = _eval_operand(plan, env, mm, 0)
    right = _eval_operand(plan, env, mm, 1)
    shape = (left.shape[0], right.shape[1])
    if rows.size == 0:
        return Block(sp.csr_matrix(shape))
    pattern = Block(sp.csr_matrix((np.ones(rows.size), (rows, cols)), shape=shape))
    env.flops += sddmm_flops(pattern, left, right)
    return sddmm(pattern, left, right)


def finish_masked(
    plan: PartialFusionPlan,
    env: SliceEnv,
    mm: MatMulNode,
    mask: SparsityMask,
    product: Block,
    tile_shape: tuple[int, int],
    positions: Optional[tuple[np.ndarray, np.ndarray]] = None,
) -> Block:
    """Apply the O-space operator chain at the masked cells only.

    ``product`` is the (possibly k-aggregated) masked main product.  Values
    are gathered to 1-D vectors at the mask positions, the element-wise
    O-space chain runs positionally, and the result scatters into a sparse
    output tile (or aggregates, when the plan root is an aggregation).
    """
    rows, cols = positions if positions is not None else mask_positions(plan, env, mask)
    if rows.size == 0:
        empty = Block(sp.csr_matrix(tile_shape))
        if isinstance(plan.root, AggNode):
            return aggregate(plan.root.kernel, empty)
        return empty
    product_vals = np.asarray(product.to_sparse().data[rows, cols]).ravel()
    gathered = _GatheredEvaluator(plan, env, mm, rows, cols, product_vals)
    out_vals = gathered.evaluate(plan.root, stop_before_agg=True)
    result = sp.csr_matrix((out_vals, (rows, cols)), shape=tile_shape)
    result.eliminate_zeros()
    if isinstance(plan.root, AggNode):
        env.flops += rows.size
        return aggregate(plan.root.kernel, Block(result))
    return Block(result)


def evaluate_masked_slice(
    plan: PartialFusionPlan,
    env: SliceEnv,
    mm: MatMulNode,
    mask: SparsityMask,
    tile_shape: tuple[int, int],
) -> Block:
    """Single-pass sparsity-exploiting evaluation (used when ``R == 1``)."""
    rows, cols = mask_positions(plan, env, mask)
    product = masked_product(plan, env, mm, rows, cols)
    return finish_masked(
        plan, env, mm, mask, product, tile_shape, positions=(rows, cols)
    )


def _eval_operand(
    plan: PartialFusionPlan, env: SliceEnv, consumer: Node, index: int
) -> Block:
    child = consumer.inputs[index]
    if child in plan.nodes:
        return evaluate_slice(plan, env, root=child)
    bound = env.bound_nodes.get(child.node_id)
    if bound is not None:
        return bound
    return env.frontier[(consumer, index)]


class _GatheredEvaluator:
    """Evaluates O-space operators on 1-D vectors gathered at mask positions.

    Element-wise operators apply positionally; transposes are identities
    because orientation was already resolved when the slice was gathered
    through its axis tag; the main product is pre-bound to the SDDMM values.
    """

    def __init__(
        self,
        plan: PartialFusionPlan,
        env: SliceEnv,
        mm: MatMulNode,
        rows: np.ndarray,
        cols: np.ndarray,
        product_vals: np.ndarray,
    ):
        self.plan = plan
        self.env = env
        self.mm = mm
        self.rows = rows
        self.cols = cols
        self.product_vals = product_vals
        self._memo: Dict[int, np.ndarray] = {}

    def evaluate(self, node: Node, stop_before_agg: bool = False) -> np.ndarray:
        if isinstance(node, AggNode) and stop_before_agg:
            return self._rec_edge(node, 0)
        return self._rec(node)

    def _rec(self, node: Node) -> np.ndarray:
        if node is self.mm:
            return self.product_vals
        cached = self._memo.get(node.node_id)
        if cached is not None:
            return cached
        result = self._apply(node)
        self._memo[node.node_id] = result
        return result

    def _rec_edge(self, consumer: Node, index: int) -> np.ndarray:
        """Value of one operand, gathered to the mask positions."""
        child = consumer.inputs[index]
        if child is self.mm:
            return self.product_vals
        if child in self.plan.nodes:
            return self._rec(child)
        block = self.env.frontier[(consumer, index)]
        return self._gather(block)

    def _gather(self, block: Block) -> np.ndarray:
        if block.is_sparse:
            return np.asarray(block.data[self.rows, self.cols]).ravel()
        return block.data[self.rows, self.cols]

    def _apply(self, node: Node) -> np.ndarray:
        self.env.flops += self.rows.size
        if isinstance(node, UnaryNode):
            arg = self._rec_edge(node, 0)
            with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                return UNARY_KERNELS[node.kernel].fn(arg)
        if isinstance(node, BinaryNode):
            fn = BINARY_KERNELS[node.kernel].fn
            with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                if node.has_scalar:
                    arg = self._rec_edge(node, 0)
                    if node.scalar_on_left:
                        return fn(node.scalar, arg)
                    return fn(arg, node.scalar)
                return fn(self._rec_edge(node, 0), self._rec_edge(node, 1))
        raise PlanError(
            f"masked evaluation cannot handle {type(node).__name__} in O-space"
        )
