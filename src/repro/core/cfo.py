"""The Cuboid-based Fused Operator (Section 3.2).

A CFO executes one partial fusion plan end-to-end on the simulated cluster:

1. **Matrix consolidation** — the MM-space is cut into ``P*Q*R`` cuboids;
   every task receives slices of the frontier matrices selected by their axis
   tags (L-space inputs replicated ``Q`` times, R-space ``P`` times, O-space
   ``R`` times — Eq. 4's traffic emerges from the slicing itself).
2. **Local operation** — each task evaluates the fused operator chain on its
   slices with no intermediate materialization; when a sparse mask covers the
   main product (Outer-style fusion) only the masked cells are computed.
3. **Matrix aggregation** — when ``R > 1``, partial products shuffle along
   the k-axis to the owner task ``(p, q, 0)``, which finishes the (possibly
   non-linear) O-space chain after summation.  When ``R == 1`` this step
   vanishes, exactly as in CuboidMM.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional


from repro.blocks import Block
from repro.blocks.kernels import AGGREGATION_KERNELS, aggregate_combine
from repro.cluster.executor import SimulatedCluster
from repro.cluster.parallel import parallel_map
from repro.cluster.slice_cache import SliceCache
from repro.cluster.task import TaskContext, TransferKind
from repro.config import EngineConfig
from repro.core.cuboid import CuboidPartitioning
from repro.core.fused_eval import (
    SliceEnv,
    evaluate_masked_slice,
    evaluate_slice,
    finish_masked,
    mask_positions,
    masked_product,
)
from repro.core.optimizer import OptimizerResult, optimize_parameters
from repro.core.physical import env_key_of
from repro.core.plan import PartialFusionPlan
from repro.core.spaces import (
    Axis,
    AxisKind,
    SparsityMask,
    find_sparsity_mask,
    plan_layout,
)
from repro.errors import BlockLayoutError, ExecutionError, PlanError
from repro.lang.dag import AggNode, InputNode, Node
from repro.matrix.distributed import BlockedMatrix

#: Engine-level environment: materialized values by node id or input name.
Env = Mapping[object, BlockedMatrix]


class CuboidFusedOperator:
    """Physical operator executing one partial fusion plan as a CFO."""

    def __init__(
        self,
        plan: PartialFusionPlan,
        config: EngineConfig,
        pqr: Optional[tuple[int, int, int]] = None,
        optimizer_method: str = "pruned",
    ):
        self.plan = plan
        self.config = config
        layout = plan_layout(plan)
        self.tree = layout.tree
        self.mm = layout.mm
        self.tags = layout.tags
        self.optimizer_result: Optional[OptimizerResult] = None
        if pqr is None:
            self.optimizer_result = optimize_parameters(
                plan, config, tree=self.tree, method=optimizer_method
            )
            pqr = self.optimizer_result.pqr
        extent_i, extent_j, extent_k = self.mm.mm_dims()
        self.partitioning = CuboidPartitioning(
            extent_i, extent_j, extent_k, *pqr
        )
        self.mask: Optional[SparsityMask] = None
        if config.sparsity_exploitation:
            self.mask = find_sparsity_mask(plan, self.mm, self.tree)
        # bound to the cluster's per-execute cache in execute(); the default
        # keeps standalone operator use (tests constructing a CFO directly)
        # working with fresh copies
        self._slices = SliceCache(enabled=False)
        # env keys whose consolidation an earlier consumer already paid
        # (graph-pass annotation); captured from the cluster in execute()
        self._shared_inputs: frozenset = frozenset()

    # -- public API -------------------------------------------------------------

    @property
    def pqr(self) -> tuple[int, int, int]:
        return self.partitioning.pqr

    def execute(self, cluster: SimulatedCluster, env: Env) -> BlockedMatrix:
        """Run the CFO and return the materialized plan output."""
        self._slices = cluster.slice_cache
        # captured once on the driver thread — task closures run on pool
        # threads where the cluster's thread-local scope is unset
        self._shared_inputs = cluster.shared_inputs
        values = self._resolve_frontier(env)
        if self.partitioning.r == 1:
            tiles = self._run_single_pass(cluster, values)
        else:
            tiles = self._run_with_aggregation(cluster, values)
        if isinstance(self.plan.root, AggNode):
            return self._combine_aggregates(cluster, tiles)
        return self._assemble_output(tiles)

    # -- frontier resolution -------------------------------------------------------

    def _resolve_frontier(self, env: Env) -> Dict[Node, BlockedMatrix]:
        values: Dict[Node, BlockedMatrix] = {}
        for node in self.plan.frontier():
            value = env.get(node.node_id)
            if value is None and isinstance(node, InputNode):
                value = env.get(node.name)
            if value is None:
                raise ExecutionError(f"no binding for frontier node {node!r}")
            if value.shape != node.meta.shape:
                raise BlockLayoutError(
                    f"binding for {node!r} has shape {value.shape}, "
                    f"expected {node.meta.shape}"
                )
            if value.block_size != node.meta.block_size:
                raise BlockLayoutError(
                    f"binding for {node!r} uses block size {value.block_size}, "
                    f"expected {node.meta.block_size}"
                )
            values[node] = value
        return values

    # -- slicing ------------------------------------------------------------------------

    def _axis_block_range(
        self, axis: Axis, p: int, q: int, r: int, grid_extent: int
    ) -> tuple[int, int]:
        if axis.kind is AxisKind.I:
            return self.partitioning.i_ranges()[p]
        if axis.kind is AxisKind.J:
            return self.partitioning.j_ranges()[q]
        if axis.kind is AxisKind.K:
            return self.partitioning.k_ranges()[r]
        return (0, grid_extent)

    def _bind_slices(
        self,
        values: Dict[Node, BlockedMatrix],
        task: TaskContext,
        p: int,
        q: int,
        r: int,
        charge_network: bool = True,
    ) -> SliceEnv:
        """Consolidate every frontier slice this cuboid's task needs.

        Materialized slabs come from the cluster's per-execute
        :class:`~repro.cluster.slice_cache.SliceCache` — tasks sharing a
        slab share one real copy.  The per-task ``received`` dedupe is about
        *charging*: a task consuming the same slab through several frontier
        edges declares the transfer once, exactly as before.
        """
        frontier: Dict[tuple[Node, int], Block] = {}
        received: Dict[tuple[Node, tuple], Block] = {}
        for edge, tag in self.tags.frontier_tags.items():
            consumer, index = edge
            source = consumer.inputs[index]
            matrix = values[source]
            grid_rows, grid_cols = matrix.block_grid
            row_range = self._axis_block_range(tag[0], p, q, r, grid_rows)
            col_range = self._axis_block_range(tag[1], p, q, r, grid_cols)
            cache_key = (source, (row_range, col_range))
            cached = received.get(cache_key)
            if cached is not None:
                frontier[edge] = cached
                continue
            block = self._slices.get(matrix, row_range, col_range)
            if charge_network and env_key_of(source) not in self._shared_inputs:
                task.receive(block)
            else:
                task.receive_local(block)
            received[cache_key] = block
            frontier[edge] = block
        return SliceEnv(frontier=frontier)

    # -- execution: R == 1 ---------------------------------------------------------------

    def _run_single_pass(
        self, cluster: SimulatedCluster, values: Dict[Node, BlockedMatrix]
    ) -> Dict[tuple[int, int], Block]:
        tiles: Dict[tuple[int, int], Block] = {}
        with cluster.stage(f"cfo[{self.pqr}]:compute") as stage:
            # tasks are allocated serially (stable ids), evaluated possibly
            # in parallel, and results collected in cuboid order — tile
            # placement is identical at any parallelism level
            cuboids = list(self.partitioning.cuboids())
            work = [((p, q, r), stage.task()) for p, q, r in cuboids]

            def run_cuboid(item: tuple[tuple[int, int, int], TaskContext]) -> Block:
                (p, q, r), task = item
                env = self._bind_slices(values, task, p, q, r)
                if self.mask is not None:
                    tile = evaluate_masked_slice(
                        self.plan, env, self.mm, self.mask,
                        self._tile_shape(p, q),
                    )
                else:
                    tile = evaluate_slice(self.plan, env)
                task.add_flops(env.flops)
                task.hold_output(tile)
                return tile

            results = parallel_map(
                run_cuboid, work, self.config.local_parallelism,
                metrics=cluster.metrics,
            )
            for (p, q, _), tile in zip(cuboids, results):
                tiles[(p, q)] = tile
        return tiles

    # -- execution: R > 1 ------------------------------------------------------------------

    def _run_with_aggregation(
        self, cluster: SimulatedCluster, values: Dict[Node, BlockedMatrix]
    ) -> Dict[tuple[int, int], Block]:
        partials: Dict[tuple[int, int], list[Block]] = {}
        with cluster.stage(f"cfo[{self.pqr}]:compute") as stage:
            cuboids = list(self.partitioning.cuboids())
            work = [((p, q, r), stage.task()) for p, q, r in cuboids]

            def run_cuboid(item: tuple[tuple[int, int, int], TaskContext]) -> Block:
                (p, q, r), task = item
                env = self._bind_slices(values, task, p, q, r)
                if self.mask is not None:
                    rows, cols = mask_positions(self.plan, env, self.mask)
                    partial = masked_product(self.plan, env, self.mm, rows, cols)
                else:
                    partial = evaluate_slice(self.plan, env, root=self.mm)
                task.add_flops(env.flops)
                task.hold_output(partial)
                return partial

            results = parallel_map(
                run_cuboid, work, self.config.local_parallelism,
                metrics=cluster.metrics,
            )
            # grouped in cuboid order, so each (p, q) list is in r-order —
            # the same merge order the serial loop produced
            for (p, q, _), partial in zip(cuboids, results):
                partials.setdefault((p, q), []).append(partial)

        tiles: Dict[tuple[int, int], Block] = {}
        with cluster.stage(f"cfo[{self.pqr}]:aggregate") as stage:
            owners = [
                (p, q)
                for p in range(self.partitioning.p)
                for q in range(self.partitioning.q)
            ]
            work = [((p, q), stage.task()) for p, q in owners]

            def run_owner(item: tuple[tuple[int, int], TaskContext]) -> Block:
                (p, q), task = item
                parts = partials[(p, q)]
                # the owner task (p, q, 0) holds its own partial; others
                # shuffle theirs over (the matrix aggregation step)
                task.receive_local(parts[0])
                summed = parts[0]
                for part in parts[1:]:
                    task.receive(part, kind=TransferKind.AGGREGATION)
                    merged = _add_blocks(summed, part)
                    task.add_flops(part.nnz if part.is_sparse else
                                   part.shape[0] * part.shape[1])
                    # partials merge as they stream in; the consumed
                    # tiles leave the ledger (only the running sum stays)
                    task.release(part)
                    task.release(summed)
                    task.receive_local(merged)
                    summed = merged
                env = self._bind_slices(
                    values, task, p, q, 0, charge_network=False
                )
                env.bind_node(self.mm, summed)
                if self.mask is not None:
                    tile = finish_masked(
                        self.plan, env, self.mm, self.mask, summed,
                        self._tile_shape(p, q),
                    )
                else:
                    tile = evaluate_slice(self.plan, env)
                task.add_flops(env.flops)
                task.hold_output(tile)
                return tile

            results = parallel_map(
                run_owner, work, self.config.local_parallelism,
                metrics=cluster.metrics,
            )
            for (p, q), tile in zip(owners, results):
                tiles[(p, q)] = tile
        return tiles

    # -- output handling --------------------------------------------------------------------

    def _axis_element_extent(self, axis: Axis) -> int:
        if axis.kind is AxisKind.I:
            return self.mm.inputs[0].meta.rows
        if axis.kind is AxisKind.J:
            return self.mm.inputs[1].meta.cols
        if axis.kind is AxisKind.K:
            return self.mm.common_dim
        raise PlanError("plan output cannot live on a private axis")

    def _axis_element_range(self, axis: Axis, p: int, q: int) -> tuple[int, int]:
        block_size = self.plan.root.meta.block_size
        if axis.kind is AxisKind.I:
            b0, b1 = self.partitioning.i_ranges()[p]
        elif axis.kind is AxisKind.J:
            b0, b1 = self.partitioning.j_ranges()[q]
        else:
            raise PlanError("plan output cannot span the k axis")
        extent = self._axis_element_extent(axis)
        return (b0 * block_size, min(b1 * block_size, extent))

    def _root_tag(self) -> tuple[Axis, Axis]:
        root = self.plan.root
        if isinstance(root, AggNode):
            return self.tags.tag_of_operand(root, 0)
        return self.tags.operator_tags[root]

    def _tile_shape(self, p: int, q: int) -> tuple[int, int]:
        tag = self._root_tag()
        r0, r1 = self._axis_element_range(tag[0], p, q)
        c0, c1 = self._axis_element_range(tag[1], p, q)
        return (r1 - r0, c1 - c0)

    def _assemble_output(self, tiles: Dict[tuple[int, int], Block]) -> BlockedMatrix:
        meta = self.plan.root.meta
        result = BlockedMatrix(meta)
        tag = self._root_tag()
        for (p, q), tile in tiles.items():
            r0, _ = self._axis_element_range(tag[0], p, q)
            c0, _ = self._axis_element_range(tag[1], p, q)
            _scatter_tile(result, tile, r0, c0)
        refreshed = result.refreshed_meta()
        return BlockedMatrix(refreshed, result.blocks)

    def _combine_aggregates(
        self, cluster: SimulatedCluster, tiles: Dict[tuple[int, int], Block]
    ) -> BlockedMatrix:
        """Final shuffle combining per-task aggregation partials."""
        root = self.plan.root
        assert isinstance(root, AggNode)
        kernel = AGGREGATION_KERNELS[root.kernel]
        child_tag = self.tags.tag_of_operand(root, 0)
        meta = root.meta
        result = BlockedMatrix(meta)
        with cluster.stage(f"cfo[{self.pqr}]:final-agg") as stage:
            task = stage.task()
            groups: Dict[tuple[int, int], Block] = {}
            for (p, q), tile in sorted(tiles.items()):
                task.receive(tile, kind=TransferKind.AGGREGATION)
                key = self._agg_group(kernel.axis, child_tag, p, q)
                if key in groups:
                    groups[key] = aggregate_combine(root.kernel, groups[key], tile)
                    task.add_flops(tile.shape[0] * tile.shape[1])
                else:
                    groups[key] = tile
            for (r_off, c_off), tile in groups.items():
                task.hold_output(tile)
                _scatter_tile(result, tile, r_off, c_off)
        refreshed = result.refreshed_meta()
        return BlockedMatrix(refreshed, result.blocks)

    def _agg_group(
        self, axis: str, child_tag: tuple[Axis, Axis], p: int, q: int
    ) -> tuple[int, int]:
        """Output element offsets a partial aggregate lands at."""
        if axis == "all":
            return (0, 0)
        if axis == "row":
            r0, _ = self._axis_element_range(child_tag[0], p, q)
            return (r0, 0)
        # axis == "col"
        c0, _ = self._axis_element_range(child_tag[1], p, q)
        return (0, c0)


def _add_blocks(a: Block, b: Block) -> Block:
    """Sum two partial-product tiles (sparse-friendly)."""
    if a.is_sparse and b.is_sparse:
        return Block((a.data + b.data).tocsr())
    return Block(a.to_numpy() + b.to_numpy())


def _scatter_tile(result: BlockedMatrix, tile: Block, row_off: int, col_off: int) -> None:
    """Split a task's output tile back into grid blocks of *result*."""
    meta = result.meta
    block_size = meta.block_size
    tile_rows, tile_cols = tile.shape
    if row_off % block_size or col_off % block_size:
        raise BlockLayoutError(
            f"tile offset ({row_off}, {col_off}) not block aligned"
        )
    bi0 = row_off // block_size
    bj0 = col_off // block_size
    n_bi = -(-tile_rows // block_size)
    n_bj = -(-tile_cols // block_size)
    for di in range(n_bi):
        r0 = di * block_size
        r1 = min(r0 + block_size, tile_rows)
        for dj in range(n_bj):
            c0 = dj * block_size
            c1 = min(c0 + block_size, tile_cols)
            piece = tile.slice(slice(r0, r1), slice(c0, c1))
            if piece.nnz == 0:
                continue
            key = (bi0 + di, bj0 + dj)
            if key in result.blocks:
                result.blocks[key] = _add_blocks(result.blocks[key], piece)
            else:
                result.set_block(key[0], key[1], piece)
