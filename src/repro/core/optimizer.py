"""Finding the optimal ``(P*, Q*, R*)`` (Section 3.3).

Two search strategies are provided:

* ``exhaustive`` — evaluates every ``(P, Q, R)`` in ``[1,I] x [1,J] x [1,K]``
  (the DistME approach the paper compares against in Figure 13(d));
* ``pruned`` — the paper's method: candidates that cannot exploit the
  cluster's parallelism (``P*Q*R < N*Tc``) are skipped, and monotonicity of
  Net/Com in each parameter prunes dominated regions.  For a fixed ``(Q, R)``
  the cost grows with ``P`` while memory shrinks, so the best ``P`` is the
  smallest feasible one — found by binary search; lower bounds on the cost of
  a whole ``(Q, R)`` or ``R`` slab abandon it without enumeration.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Literal, Optional

from repro.config import EngineConfig
from repro.core.calibration import KernelCalibration
from repro.core.cost import CostModel, PlanCost
from repro.core.plan import PartialFusionPlan
from repro.core.spaces import SpaceTree, plan_layout
from repro.errors import OptimizerError

SearchMethod = Literal["pruned", "exhaustive"]


@dataclass(frozen=True)
class OptimizerResult:
    """Outcome of one parameter search."""

    pqr: tuple[int, int, int]
    cost: PlanCost
    evaluations: int
    elapsed_seconds: float
    method: SearchMethod
    #: Size of the full ``(P, Q, R)`` candidate space (``I * J * K``).
    candidates: int = 0
    #: Cost-model memo hits/misses during this search (wall-clock telemetry
    #: only; evaluation counts are tallied by the search itself).
    memo_hits: int = 0
    memo_misses: int = 0
    #: When the search priced with fitted throughputs: the *same* chosen
    #: ``pqr`` evaluated with the paper constants, so EXPLAIN can render
    #: calibrated vs paper cost side by side.  ``None`` for uncalibrated
    #: searches (the seed path allocates nothing extra).
    paper_cost: Optional[PlanCost] = None

    @property
    def feasible(self) -> bool:
        return self.cost.feasible

    @property
    def pruned(self) -> int:
        """Candidates the search never had to evaluate."""
        return max(0, self.candidates - self.evaluations)


def optimize_parameters(
    plan: PartialFusionPlan,
    config: EngineConfig,
    tree: Optional[SpaceTree] = None,
    method: SearchMethod = "pruned",
    calibration: Optional[KernelCalibration] = None,
    free_sources=None,
) -> OptimizerResult:
    """Find ``(P*, Q*, R*)`` for *plan*.

    When no feasible parameters exist (the plan cannot fit the per-task
    budget even fully partitioned), the result carries the maximal
    partitioning ``(I, J, K)`` with an infinite cost — Algorithm 3 treats
    this as "must split".

    With *calibration* (fitted coefficients for this plan's kernel class)
    every candidate is priced with the machine's measured effective
    throughputs; the search structure and feasibility are unchanged.

    *free_sources* (environment keys) marks frontier matrices whose
    consolidation is already paid by another unit — their Eq. 4 traffic
    is discounted.  Used by the unit-merging graph pass to cost merge
    candidates; the seed path never passes it.
    """
    if tree is None:
        tree = plan_layout(plan).tree
    extent_i, extent_j, extent_k = tree.mm.mm_dims()
    model = CostModel(config, calibration=calibration, free_sources=free_sources)
    started = time.perf_counter()

    if method == "exhaustive":
        best, evaluations = _exhaustive(
            plan, tree, model, extent_i, extent_j, extent_k, config
        )
    elif method == "pruned":
        best, evaluations = _pruned(
            plan, tree, model, extent_i, extent_j, extent_k, config
        )
    else:
        raise OptimizerError(f"unknown search method {method!r}")

    elapsed = time.perf_counter() - started
    if best is None:
        # infeasible even at full partitioning: report (I, J, K) with inf cost
        best = model.evaluate(plan, tree, (extent_i, extent_j, extent_k))
    paper_cost = None
    if calibration is not None:
        paper_cost = CostModel(
            config, free_sources=free_sources
        ).evaluate(plan, tree, best.pqr)
    return OptimizerResult(
        pqr=best.pqr,
        cost=best,
        evaluations=evaluations,
        elapsed_seconds=elapsed,
        method=method,
        candidates=extent_i * extent_j * extent_k,
        memo_hits=model.memo_hits,
        memo_misses=model.memo_misses,
        paper_cost=paper_cost,
    )


def _exhaustive(
    plan: PartialFusionPlan,
    tree: SpaceTree,
    model: CostModel,
    extent_i: int,
    extent_j: int,
    extent_k: int,
    config: EngineConfig,
) -> tuple[Optional[PlanCost], int]:
    # The parallelism constraint P*Q*R >= N*Tc is part of the search space
    # for both methods (a stage with fewer tasks cannot use the cluster).
    min_tasks = min(config.cluster.total_tasks, extent_i * extent_j * extent_k)
    best: Optional[PlanCost] = None
    evaluations = 0
    for p in range(1, extent_i + 1):
        for q in range(1, extent_j + 1):
            for r in range(1, extent_k + 1):
                evaluations += 1
                if p * q * r < min_tasks:
                    continue
                cost = model.evaluate(plan, tree, (p, q, r))
                if cost.feasible and (best is None or cost < best):
                    best = cost
    return best, evaluations


def _pruned(
    plan: PartialFusionPlan,
    tree: SpaceTree,
    model: CostModel,
    extent_i: int,
    extent_j: int,
    extent_k: int,
    config: EngineConfig,
) -> tuple[Optional[PlanCost], int]:
    slots = config.cluster.total_tasks
    voxels = extent_i * extent_j * extent_k
    evaluations = 0

    if voxels < slots:
        # Cannot exploit full parallelism anyway: use the maximal parameters
        # (the paper: "we set the parameters to the ones as large as possible").
        cost = model.evaluate(plan, tree, (extent_i, extent_j, extent_k))
        return (cost if cost.feasible else None), 1

    best: Optional[PlanCost] = None
    for r in range(1, extent_k + 1):
        # lower bound for this whole r-slab: the cheapest conceivable (p=1,q=1)
        bound = _raw_cost(model, tree, (1, 1, r))
        evaluations += 1
        if best is not None and bound >= best.cost_seconds:
            break  # Net/Com grow with r; later slabs only get worse
        for q in range(1, extent_j + 1):
            qr_bound = _raw_cost(model, tree, (1, q, r))
            evaluations += 1
            if best is not None and qr_bound >= best.cost_seconds:
                break  # cost grows with q at fixed r
            p_floor = max(1, math.ceil(slots / (q * r)))
            if p_floor > extent_i:
                continue
            p_best = _smallest_feasible_p(
                plan, tree, model, p_floor, extent_i, q, r
            )
            if p_best is None:
                continue
            cost = model.evaluate(plan, tree, (p_best, q, r))
            evaluations += 2 + int(math.log2(max(1, extent_i - p_floor + 1)))
            if cost.feasible and (best is None or cost < best):
                best = cost
    return best, evaluations


def _raw_cost(model: CostModel, tree: SpaceTree, pqr: tuple[int, int, int]) -> float:
    """Cost ignoring memory feasibility (used for pruning bounds) — Eq. 2
    with the paper constants, or the fitted throughputs when the model
    carries a calibration."""
    return model.raw_seconds(tree, pqr)


def _smallest_feasible_p(
    plan: PartialFusionPlan,
    tree: SpaceTree,
    model: CostModel,
    p_floor: int,
    p_ceil: int,
    q: int,
    r: int,
) -> Optional[int]:
    """Binary search the smallest memory-feasible P in ``[p_floor, p_ceil]``.

    Per-task memory is non-increasing in P (Eq. 3 divides by ``P*R`` and
    ``P*Q``), while Net/Com are non-decreasing (Eq. 4-5 multiply R-space
    contributions by P), so the smallest feasible P is optimal for a fixed
    ``(Q, R)``.
    """
    budget = model.config.cluster.task_memory_budget
    if model.mem_est(plan, tree, (p_ceil, q, r)) > budget:
        return None
    lo, hi = p_floor, p_ceil
    while lo < hi:
        mid = (lo + hi) // 2
        if model.mem_est(plan, tree, (mid, q, r)) <= budget:
            hi = mid
        else:
            lo = mid + 1
    return lo
