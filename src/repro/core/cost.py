"""The CFO cost model: ``MemEst``, ``NetEst``, ``ComEst`` and ``Cost``.

Implements Section 3.3 faithfully:

* Eq. 3 — per-task memory of a materialized matrix ``v``: its size divided by
  the number of partitions of the space it lives in (``P*R`` for L-space,
  ``Q*R`` for R-space, ``P*Q`` for O-space).
* Eq. 4 — network traffic: ``Q * size(v)`` for L-space members (each L slab
  is replicated to the ``Q`` tasks sharing its ``(p, r)`` indices), ``P *
  size(v)`` for R-space, ``R * size(v)`` for O-space.
* Eq. 5 — computation: operators in L-, R-, O-space are recomputed ``Q``,
  ``P``, ``R`` times respectively; the main multiplication exactly once.
* Eq. 2 — ``Cost = max(NetEst / (N*Bn), ComEst / (N*Bc))``, communication and
  computation overlapping at block granularity.
* Algorithm 1 — nested multiplications recurse with the confined parameters
  ``(P,1,R)`` / ``(1,Q,R)`` / ``(P,Q,1)``; their network and computation
  contributions additionally scale with the replication factor of the space
  containing them (the paper's Figure 11 walk-through: the farther a nested
  multiplication sits from the main one, the larger its accumulated factor —
  which is exactly why Algorithm 3 splits distant multiplications first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import EngineConfig
from repro.core.calibration import KernelCalibration
from repro.core.plan import PartialFusionPlan
from repro.core.spaces import SpaceKind, SpaceTree
from repro.lang.dag import InputNode


def _env_key(node):
    """The runtime environment key of a frontier matrix (mirrors
    ``repro.core.physical.env_key_of``, duplicated to avoid an import
    cycle through the optimizer)."""
    return node.name if isinstance(node, InputNode) else node.node_id

#: Marker cost for an infeasible plan (cannot fit the memory budget).
INFEASIBLE = float("inf")


@dataclass(frozen=True)
class PlanCost:
    """Estimated cost of one ``(P, Q, R)`` choice for one partial plan."""

    pqr: tuple[int, int, int]
    mem_bytes_per_task: float
    net_bytes: float
    com_flops: float
    cost_seconds: float
    feasible: bool

    def __lt__(self, other: "PlanCost") -> bool:
        return self.cost_seconds < other.cost_seconds


class CostModel:
    """Evaluates Mem/Net/Com/Cost for a partial fusion plan's space tree.

    Each instance memoizes its estimates.  One parameter search evaluates
    hundreds of ``(P, Q, R)`` candidates against the *same* plan/tree, and
    the pruned search re-probes many of them for bounds
    (``_raw_cost(1, q, r)``) before the full evaluation — the memo collapses
    those repeats to dict lookups.  Keys use object identity for the
    plan/tree (they are fixed for the lifetime of a search) and the memo
    pins them so a recycled ``id()`` can never alias an entry.  Reported
    ``evaluations`` counts are tallied by the optimizer itself, so
    memoization changes no observable numbers — only wall-clock.

    With a *calibration* (a fitted :class:`~repro.core.calibration.
    KernelCalibration` for this plan's kernel class), ``cost_seconds``
    prices the same Net/Com estimates with the machine's measured effective
    throughputs instead of the paper constants — Mem/Net/Com themselves are
    untouched, so memory feasibility and the pruned search's monotone
    bounds are identical either way.
    """

    def __init__(
        self,
        config: EngineConfig,
        calibration: Optional[KernelCalibration] = None,
        free_sources=None,
    ):
        self.config = config
        self.calibration = calibration
        #: Environment keys whose consolidation is already paid elsewhere
        #: (graph-pass sharing): their Eq. 4 traffic is skipped, their
        #: Eq. 3 memory still charged (the slabs are resident either way).
        #: Fixed per instance, so the memo never needs it in its keys —
        #: merge candidates build a fresh model per evaluation.
        self.free_sources = frozenset(free_sources or ())
        self._memo: dict = {}
        self._pins: dict = {}
        #: Memo telemetry (surfaced through ``OptimizerResult``); purely
        #: observational, never part of a cost.
        self.memo_hits = 0
        self.memo_misses = 0

    def _pin(self, obj) -> int:
        key = id(obj)
        if key not in self._pins:
            self._pins[key] = obj
        return key

    def _memo_get(self, key):
        cached = self._memo.get(key)
        if cached is not None:
            self.memo_hits += 1
        else:
            self.memo_misses += 1
        return cached

    # -- public entry points ------------------------------------------------

    def evaluate(
        self,
        plan: PartialFusionPlan,
        tree: SpaceTree,
        pqr: tuple[int, int, int],
    ) -> PlanCost:
        """Full cost of executing *plan* with the given partitioning."""
        key = ("evaluate", self._pin(plan), self._pin(tree), pqr)
        cached = self._memo_get(key)
        if cached is not None:
            return cached
        result = self._evaluate(plan, tree, pqr)
        self._memo[key] = result
        return result

    def _evaluate(
        self,
        plan: PartialFusionPlan,
        tree: SpaceTree,
        pqr: tuple[int, int, int],
    ) -> PlanCost:
        mem = self.mem_est(plan, tree, pqr)
        net = self.net_est(
            tree, pqr,
            include_aggregation=True,
            outer_output_bytes=self._aggregated_tile_bytes(plan, tree),
        )
        com = self.com_est(tree, pqr)
        cluster = self.config.cluster
        seconds = self._price(net, com)
        feasible = mem <= cluster.task_memory_budget
        return PlanCost(
            pqr=pqr,
            mem_bytes_per_task=mem,
            net_bytes=net,
            com_flops=com,
            cost_seconds=seconds if feasible else INFEASIBLE,
            feasible=feasible,
        )

    def _price(self, net: float, com: float) -> float:
        """Seconds for cluster-wide *net* bytes and *com* flops — Eq. 2 with
        the paper constants, or the fitted throughputs when calibrated."""
        if self.calibration is not None:
            return self.calibration.predict_seconds(net, com)
        cluster = self.config.cluster
        net_time = net / (cluster.num_nodes * cluster.network_bandwidth)
        com_time = com / (cluster.num_nodes * cluster.compute_bandwidth)
        if self.config.overlap_comm_compute:
            return max(net_time, com_time)
        return net_time + com_time

    def raw_seconds(self, tree: SpaceTree, pqr: tuple[int, int, int]) -> float:
        """Cost ignoring memory feasibility (the pruned search's bounds).

        Consolidation traffic only (Eq. 4 exactly) — a *lower* bound on the
        full evaluation under either pricing, since both are non-decreasing
        in net and com.
        """
        return self._price(self.net_est(tree, pqr), self.com_est(tree, pqr))

    # -- MemEst (Algorithm 1) --------------------------------------------------

    def mem_est(
        self,
        plan: PartialFusionPlan,
        tree: SpaceTree,
        pqr: tuple[int, int, int],
    ) -> float:
        """Estimated memory per task, Algorithm 1 + the plan output tile."""
        key = ("mem", self._pin(plan), self._pin(tree), pqr)
        cached = self._memo_get(key)
        if cached is not None:
            return cached
        total = self._mem_tree(tree, pqr)
        if tree.produces_output:
            p, q, _ = pqr
            total += plan.root.meta.estimated_bytes / (p * q)
        self._memo[key] = total
        return total

    def _mem_tree(self, tree: SpaceTree, pqr: tuple[int, int, int]) -> float:
        p, q, r = pqr
        divisors = {SpaceKind.L: p * r, SpaceKind.R: q * r, SpaceKind.O: p * q}
        total = 0.0
        for kind, space in tree.spaces.items():
            divisor = divisors[kind]
            for consumer, index in space.materialized:
                size = consumer.inputs[index].meta.estimated_bytes
                total += size / divisor
            confined = self._confined(kind, pqr)
            for nested in space.nested:
                total += self._mem_tree(nested, confined)
        return total

    # -- NetEst (Eq. 4) ------------------------------------------------------------

    def net_est(
        self,
        tree: SpaceTree,
        pqr: tuple[int, int, int],
        include_aggregation: bool = False,
        outer_output_bytes: Optional[float] = None,
    ) -> float:
        """Estimated network traffic for the whole cluster.

        With ``include_aggregation=False`` this is exactly Eq. 4 / Table 1
        (consolidation only).  With ``True`` the matrix-aggregation shuffle
        is added: ``(R - 1)`` partial product tiles per output tile move to
        their owner task.  The optimizer uses the full estimate — it is what
        makes it "determine R as a value as small as possible" (Section 3.2)
        instead of collapsing parallelism into single-reducer shuffles.
        ``outer_output_bytes`` overrides the outer product's tile volume
        (used when a sparsity mask makes the partials sparse).
        """
        key = ("net", self._pin(tree), pqr, include_aggregation,
               outer_output_bytes)
        cached = self._memo_get(key)
        if cached is not None:
            return cached
        total = self._net_tree(tree, pqr, multiplier=1.0,
                               include_aggregation=include_aggregation,
                               output_bytes=outer_output_bytes)
        self._memo[key] = total
        return total

    def _aggregated_tile_bytes(
        self, plan: PartialFusionPlan, tree: SpaceTree
    ) -> float:
        """Total volume of the partial product tiles shuffled along k.

        When an Outer-style sparsity mask covers the main product, partials
        carry values only at the mask's non-zero cells.
        """
        from repro.core.spaces import find_sparsity_mask

        key = ("agg_tile", self._pin(plan), self._pin(tree))
        cached = self._memo_get(key)
        if cached is not None:
            return cached
        full = tree.mm.meta.estimated_bytes
        if self.config.sparsity_exploitation:
            mask = find_sparsity_mask(plan, tree.mm, tree)
            if mask is not None:
                driver = mask.mask_mul.inputs[mask.mask_operand_index]
                full = min(full, driver.meta.estimated_bytes)
        self._memo[key] = full
        return full

    def _net_tree(
        self,
        tree: SpaceTree,
        pqr: tuple[int, int, int],
        multiplier: float,
        include_aggregation: bool = False,
        output_bytes: Optional[float] = None,
    ) -> float:
        p, q, r = pqr
        factors = {SpaceKind.L: q, SpaceKind.R: p, SpaceKind.O: r}
        total = 0.0
        if include_aggregation and r > 1:
            tile_volume = (
                output_bytes if output_bytes is not None
                else tree.mm.meta.estimated_bytes
            )
            total += multiplier * (r - 1) * tile_volume
        for kind, space in tree.spaces.items():
            factor = factors[kind]
            for consumer, index in space.materialized:
                source = consumer.inputs[index]
                if self.free_sources and _env_key(source) in self.free_sources:
                    continue
                total += multiplier * factor * source.meta.estimated_bytes
            confined = self._confined(kind, pqr)
            for nested in space.nested:
                total += self._net_tree(
                    nested, confined, multiplier * factor,
                    include_aggregation=include_aggregation,
                )
        return total

    # -- ComEst (Eq. 5) --------------------------------------------------------------

    def com_est(self, tree: SpaceTree, pqr: tuple[int, int, int]) -> float:
        """Estimated floating point operations for the whole cluster."""
        key = ("com", self._pin(tree), pqr)
        cached = self._memo_get(key)
        if cached is not None:
            return cached
        total = self._com_tree(tree, pqr, multiplier=1.0)
        self._memo[key] = total
        return total

    def _com_tree(
        self, tree: SpaceTree, pqr: tuple[int, int, int], multiplier: float
    ) -> float:
        p, q, r = pqr
        factors = {SpaceKind.L: q, SpaceKind.R: p, SpaceKind.O: r}
        total = multiplier * tree.mm.estimated_flops()  # v_mm computed once
        for kind, space in tree.spaces.items():
            factor = factors[kind]
            for node in space.operators:
                total += multiplier * factor * node.estimated_flops()
            confined = self._confined(kind, pqr)
            for nested in space.nested:
                total += self._com_tree(nested, confined, multiplier * factor)
        return total

    # -- helpers -------------------------------------------------------------------------

    @staticmethod
    def _confined(kind: SpaceKind, pqr: tuple[int, int, int]) -> tuple[int, int, int]:
        """Algorithm 1 line 4: the partitioning a space passes to nested
        multiplications — ``(P,1,R)`` for L, ``(1,Q,R)`` for R, ``(P,Q,1)``
        for O."""
        p, q, r = pqr
        if kind is SpaceKind.L:
            return (p, 1, r)
        if kind is SpaceKind.R:
            return (1, q, r)
        return (p, q, 1)
