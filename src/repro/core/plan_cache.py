"""Fusion-plan caching: skip planning when the same query shape comes back.

Iterative workloads (GNMF, ALS, the autoencoder) re-execute a structurally
identical DAG every iteration: same operators, same shapes, same block sizes,
same densities — only the bound matrices' *values* change.  CFG plan
generation and the ``(P, Q, R)`` parameter search depend exclusively on that
structure (plus the planner-relevant config knobs), so iterations 2..N can
reuse iteration 1's :class:`~repro.core.plan.FusionPlan` wholesale.

:func:`dag_fingerprint` canonicalizes a DAG into a hashable tuple: nodes in
topological order, each reduced to its operator kind, kernel/scalar payload,
shape, block size, density, and child *ordinals* (positions in the topo
order, never the process-unique ``node_id``).  Two DAGs built independently
from the same program text therefore collide exactly when a fused execution
cannot tell them apart.  The engine pairs the fingerprint with its
:meth:`~repro.execution.Engine.planning_signature` — any config knob that
could steer planning (cluster shape, bandwidths, memory budget, sparsity
flags, optimizer method) — so a changed knob is a miss, never a wrong hit.

A cache *entry* keeps the planned DAG alongside the plan: plan units hold
identity-hashed nodes of the DAG they were planned against, so on a hit the
engine executes against the cached DAG (bindings resolve by input *name*,
which the fingerprint includes).  ``unit_hints`` carries each unit's
:class:`~repro.core.optimizer.OptimizerResult` so the per-unit ``(P, Q, R)``
search is skipped too.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

from repro.lang.dag import (
    AggNode,
    BinaryNode,
    DAG,
    InputNode,
    Node,
    UnaryNode,
)


def _node_payload(node: Node) -> tuple:
    """The operator-specific part of a node's fingerprint."""
    if isinstance(node, InputNode):
        return ("name", node.name)
    if isinstance(node, (UnaryNode, AggNode)):
        return ("kernel", node.kernel)
    if isinstance(node, BinaryNode):
        return ("kernel", node.kernel, node.scalar, node.scalar_on_left)
    return ()


def dag_fingerprint(dag: DAG) -> tuple:
    """A canonical, hashable description of the DAG's planning-relevant
    structure.  Node identity is positional (topological ordinals), so two
    independently built DAGs with the same shape fingerprint identically.
    Densities enter the key exactly: with ``refine_input_metas`` the measured
    densities drift between iterations and correctly force a re-plan.
    """
    ordinals: Dict[Node, int] = {}
    entries = []
    for ordinal, node in enumerate(dag.nodes()):
        ordinals[node] = ordinal
        meta = node.meta
        entries.append((
            type(node).__name__,
            node.op_type.name,
            tuple(ordinals[child] for child in node.inputs),
            meta.shape,
            meta.block_size,
            meta.density,
            _node_payload(node),
        ))
    roots = tuple(ordinals[root] for root in dag.roots)
    return (roots, tuple(entries))


@dataclass
class PlanCacheEntry:
    """One finished planning outcome, ready to re-execute.

    ``unit_hints`` maps unit index -> that unit's
    :class:`~repro.core.optimizer.OptimizerResult` (only units that ran a
    parameter search have one).  ``physical`` is the lowered
    :class:`~repro.core.physical.PhysicalPlan` — complete at planning time,
    so a hit skips planning, lowering *and* every parameter search.
    """

    dag: DAG
    fusion_plan: "FusionPlan"  # noqa: F821 - avoids an import cycle
    unit_hints: Dict[int, object] = field(default_factory=dict)
    physical: "Optional[PhysicalPlan]" = None  # noqa: F821 - import cycle
    #: Calibration-store generation this entry was planned at (``None`` when
    #: planned without calibration).  Adaptive re-planning evicts an entry
    #: only when its observed error crosses the threshold *and* the store
    #: has advanced past this generation — re-planning with the same
    #: coefficients would reproduce the same plan.
    fit_generation: Optional[int] = None


class PlanCache:
    """A small LRU of ``(planning signature, dag fingerprint) -> entry``.

    ``capacity=0`` disables the cache (every lookup misses and nothing is
    stored) — the ``EngineConfig(plan_cache_size=0)`` baseline mode.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("plan cache capacity cannot be negative")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._entries: "OrderedDict[Hashable, PlanCacheEntry]" = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def get(self, key: Hashable) -> Optional[PlanCacheEntry]:
        if not self.enabled:
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def peek(self, key: Hashable) -> Optional[PlanCacheEntry]:
        """Look up *key* without touching LRU order or hit/miss counters
        (calibration feedback inspects the entry it just executed)."""
        if not self.enabled:
            return None
        return self._entries.get(key)

    def invalidate(self, key: Hashable) -> bool:
        """Evict *key* (error-triggered re-planning); True when present."""
        if self._entries.pop(key, None) is None:
            return False
        self.invalidations += 1
        return True

    def put(self, key: Hashable, entry: PlanCacheEntry) -> None:
        if not self.enabled:
            return
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, object]:
        """Hit/miss counts and occupancy as a plain dict (for status pages)."""
        total = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "entries": self.num_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:
        return (
            f"PlanCache(capacity={self.capacity}, entries={self.num_entries}, "
            f"hits={self.hits}, misses={self.misses})"
        )
