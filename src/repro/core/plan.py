"""Fusion plan containers.

A *partial fusion plan* (Section 2.1) is a connected sub-DAG of the query plan
that one fused operator executes; the *fusion plan* is the whole query plan
with its partial plans marked.  Execution walks the fusion plan's units in
dependency order, materializing each unit's output; inside a unit nothing is
materialized — that is the entire point of fusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Sequence

from repro.errors import PlanError
from repro.lang.dag import DAG, AggNode, MatMulNode, Node


class PartialFusionPlan:
    """A sub-DAG executed as one fused operator.

    Parameters
    ----------
    nodes:
        The operator vertices fused together.  Must form a connected sub-DAG
        with a single top (root) operator.
    dag:
        The enclosing query DAG (used for consumer counts).
    """

    def __init__(self, nodes: Iterable[Node], dag: DAG):
        self.nodes: FrozenSet[Node] = frozenset(nodes)
        if not self.nodes:
            raise PlanError("a partial fusion plan cannot be empty")
        for node in self.nodes:
            if not node.is_operator:
                raise PlanError(f"{node!r} is not an operator")
        self.dag = dag
        self.root = self._find_root()

    def _find_root(self) -> Node:
        consumed_inside = {
            child for node in self.nodes for child in node.inputs if child in self.nodes
        }
        roots = [n for n in self.nodes if n not in consumed_inside]
        if len(roots) != 1:
            raise PlanError(
                f"a partial fusion plan must have exactly one root, found "
                f"{len(roots)}: {sorted(r.label() for r in roots)}"
            )
        return roots[0]

    # -- structure --------------------------------------------------------------

    def frontier(self) -> tuple[Node, ...]:
        """Nodes feeding the plan from outside (inputs to be consolidated).

        These are either :class:`InputNode` leaves or outputs of other plan
        units — in both cases materialized matrices.
        """
        seen: list[Node] = []
        for node in self.topo_nodes():
            for child in node.inputs:
                if child not in self.nodes and child not in seen:
                    seen.append(child)
        return tuple(seen)

    def topo_nodes(self) -> tuple[Node, ...]:
        """Plan operators in topological order (children first)."""
        return tuple(n for n in self.dag.nodes() if n in self.nodes)

    def matmuls(self) -> tuple[MatMulNode, ...]:
        return tuple(n for n in self.topo_nodes() if isinstance(n, MatMulNode))

    @property
    def contains_matmul(self) -> bool:
        return any(isinstance(n, MatMulNode) for n in self.nodes)

    def main_matmul(self) -> MatMulNode:
        """The plan's main ``ba(x)``: the one with the largest ``I*J*K``
        voxel volume (Algorithm 3, line 3)."""
        matmuls = self.matmuls()
        if not matmuls:
            raise PlanError("plan contains no matrix multiplication")
        return max(
            matmuls,
            key=lambda n: (
                n.inputs[0].meta.rows * n.inputs[1].meta.cols * n.common_dim,
                -n.node_id,
            ),
        )

    def descendants_within(self, node: Node) -> set[Node]:
        """Plan members at or below *node* (following edges inside the plan)."""
        if node not in self.nodes:
            raise PlanError(f"{node!r} is not in this plan")
        result: set[Node] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            for child in current.inputs:
                if child in self.nodes:
                    stack.append(child)
        return result

    def split(self, at: MatMulNode) -> tuple["PartialFusionPlan", "PartialFusionPlan"]:
        """Split off the sub-plan rooted at *at* (Algorithm 3, line 9).

        Returns ``(remainder, split_off)``; *at* and its in-plan descendants
        become the split plan, whose output will be materialized and fed to
        the remainder.
        """
        if at is self.root:
            raise PlanError("cannot split the plan at its own root")
        below = self.descendants_within(at)
        rest = self.nodes - below
        if not rest:
            raise PlanError("splitting would empty the plan")
        return (PartialFusionPlan(rest, self.dag), PartialFusionPlan(below, self.dag))

    # -- misc ------------------------------------------------------------------------

    def label(self) -> str:
        ops = ",".join(n.label() for n in self.topo_nodes())
        return f"F[{ops}]"

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self.nodes

    def __repr__(self) -> str:
        return f"PartialFusionPlan(root={self.root!r}, size={len(self.nodes)})"


class MultiAggPlan(PartialFusionPlan):
    """A Multi-aggregation fusion plan (Figure 2(d)).

    Several aggregation operators over shared inputs fuse into one operator
    with *multiple outputs*: the shared inputs are scanned once, every
    aggregation accumulates in the same pass.  Unlike a regular partial plan
    this one has several roots.
    """

    def __init__(self, nodes: Iterable[Node], dag: DAG):
        self.nodes = frozenset(nodes)
        if not self.nodes:
            raise PlanError("a multi-aggregation plan cannot be empty")
        for node in self.nodes:
            if not node.is_operator:
                raise PlanError(f"{node!r} is not an operator")
        self.dag = dag
        consumed_inside = {
            child for node in self.nodes for child in node.inputs
            if child in self.nodes
        }
        roots = tuple(
            n for n in self.topo_nodes() if n not in consumed_inside
        )
        if len(roots) < 2:
            raise PlanError("a multi-aggregation plan needs at least 2 roots")
        for root in roots:
            if not isinstance(root, AggNode):
                raise PlanError(
                    f"multi-aggregation roots must aggregate, got {root!r}"
                )
        self.roots = roots
        self.root = roots[0]

    def label(self) -> str:
        ops = ",".join(n.label() for n in self.topo_nodes())
        return f"MultiAgg[{ops}]"


@dataclass(frozen=True)
class PlanUnit:
    """One executable step of a fusion plan.

    Every unit wraps a partial fusion plan; a singleton plan is simply an
    unfused operator executed by a plain distributed operator.  A
    :class:`MultiAggPlan` unit materializes several outputs at once.
    """

    plan: PartialFusionPlan

    @property
    def output(self) -> Node:
        """The (first) node whose materialized value this unit produces."""
        return self.plan.root

    @property
    def outputs(self) -> tuple[Node, ...]:
        """All nodes this unit materializes."""
        if isinstance(self.plan, MultiAggPlan):
            return self.plan.roots
        return (self.plan.root,)

    @property
    def is_fused(self) -> bool:
        """Whether this unit actually fuses several operators."""
        return len(self.plan) > 1

    def dependencies(self) -> tuple[Node, ...]:
        """Materialized nodes this unit consumes."""
        return self.plan.frontier()

    def label(self) -> str:
        return self.plan.label()


class FusionPlan:
    """A whole query plan broken into executable units in dependency order."""

    def __init__(self, dag: DAG, units: Sequence[PlanUnit]):
        self.dag = dag
        self.units = tuple(units)
        self._validate()

    def _validate(self) -> None:
        covered: set[Node] = set()
        for unit in self.units:
            overlap = covered & unit.plan.nodes
            if overlap:
                raise PlanError(f"operators covered twice: {overlap}")
            covered |= unit.plan.nodes
        missing = [n for n in self.dag.nodes() if n.is_operator and n not in covered]
        if missing:
            raise PlanError(
                "fusion plan does not cover operators: "
                + ", ".join(repr(n) for n in missing)
            )
        produced: set[Node] = set()
        for unit in self.units:
            for dep in unit.dependencies():
                if dep.is_operator and dep not in produced:
                    raise PlanError(
                        f"unit {unit.label()} depends on unproduced {dep!r}"
                    )
            produced.update(unit.outputs)

    @property
    def fused_units(self) -> tuple[PlanUnit, ...]:
        return tuple(u for u in self.units if u.is_fused)

    def dump(self) -> str:
        lines = []
        for i, unit in enumerate(self.units):
            kind = "fused " if unit.is_fused else "single"
            lines.append(f"[{i}] {kind} {unit.label()} -> #{unit.output.node_id}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.units)

    def __iter__(self):
        return iter(self.units)
