"""The 3-D model space of Section 3.1.

A partial fusion plan containing matrix multiplication is laid out in a
3-dimensional ``(i, j, k)`` space: the main multiplication ``v_mm`` occupies
``MM``-space, everything feeding its left operand lives in ``L``-space
(the ``ik``-plane), everything feeding its right operand in ``R``-space
(the ``kj``-plane), and everything consuming its output in ``O``-space
(the ``ij``-plane).  Nested multiplications inside a space open their own
(recursive) model spaces, exactly as in Figure 11.

Two artifacts are produced here:

* **axis tags** — every plan node and every frontier edge is tagged with the
  model-space axis its rows and columns align to, which is what lets the CFO
  slice arbitrary fused plans by cuboid;
* **the space tree** — the recursive L/R/O/MM membership that the cost model
  (Algorithm 1) walks.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import PlanError
from repro.lang.dag import (
    AggNode,
    BinaryNode,
    MatMulNode,
    Node,
    TransposeNode,
    UnaryNode,
)
from repro.core.plan import PartialFusionPlan

_axis_counter = itertools.count()


class AxisKind(enum.Enum):
    """Which model-space axis a matrix dimension aligns to."""

    I = "i"
    J = "j"
    K = "k"
    #: A nested multiplication's private common dimension: never partitioned.
    PRIVATE = "private"


@dataclass(frozen=True)
class Axis:
    """One concrete axis instance (private axes are distinguished by id)."""

    kind: AxisKind
    uid: int = 0

    def __repr__(self) -> str:
        if self.kind is AxisKind.PRIVATE:
            return f"priv{self.uid}"
        return self.kind.value


AXIS_I = Axis(AxisKind.I)
AXIS_J = Axis(AxisKind.J)
AXIS_K = Axis(AxisKind.K)


def fresh_private_axis() -> Axis:
    return Axis(AxisKind.PRIVATE, next(_axis_counter))


#: ``(row_axis, col_axis)`` of a node's output matrix.
Tag = Tuple[Axis, Axis]

#: A frontier consumption point: (consumer node, operand index).
Edge = Tuple[Node, int]


@dataclass
class AxisTags:
    """Tags for plan operators (by node) and frontier inputs (by edge)."""

    operator_tags: Dict[Node, Tag]
    frontier_tags: Dict[Edge, Tag]

    def tag_of_operand(self, consumer: Node, index: int) -> Tag:
        """Tag of the *index*-th operand of *consumer* (plan op or frontier)."""
        child = consumer.inputs[index]
        if child in self.operator_tags:
            return self.operator_tags[child]
        return self.frontier_tags[(consumer, index)]


def assign_axis_tags(plan: PartialFusionPlan, mm: MatMulNode) -> AxisTags:
    """Tag every plan node / frontier edge with model-space axes.

    Starts at the main multiplication (``mm`` gets ``(i, j)``, its left
    operand ``(i, k)``, its right operand ``(k, j)``) and propagates down
    through operand subtrees and up through the O-space, spawning private
    axes at nested multiplications.
    """
    if mm not in plan.nodes:
        raise PlanError("main matmul must be part of the plan")
    operator_tags: Dict[Node, Tag] = {mm: (AXIS_I, AXIS_J)}
    frontier_tags: Dict[Edge, Tag] = {}

    def push_down(consumer: Node, index: int, tag: Tag) -> None:
        """Assign *tag* to the operand edge and recurse into plan subtrees."""
        child = consumer.inputs[index]
        if child not in plan.nodes:
            frontier_tags[(consumer, index)] = tag
            return
        existing = operator_tags.get(child)
        if existing is not None:
            if existing != tag:
                raise PlanError(
                    f"conflicting axis tags for {child!r}: {existing} vs {tag}"
                )
            return
        operator_tags[child] = tag
        _push_through(child, tag)

    def _push_through(node: Node, tag: Tag) -> None:
        """Propagate a node's output tag to its operand edges."""
        if isinstance(node, (UnaryNode, BinaryNode, AggNode)):
            for idx in range(len(node.inputs)):
                push_down(node, idx, tag)
        elif isinstance(node, TransposeNode):
            push_down(node, 0, (tag[1], tag[0]))
        elif isinstance(node, MatMulNode):
            private = fresh_private_axis()
            push_down(node, 0, (tag[0], private))
            push_down(node, 1, (private, tag[1]))
        else:
            raise PlanError(f"cannot tag through node type {type(node).__name__}")

    # downward: operand subtrees of the main multiplication
    push_down(mm, 0, (AXIS_I, AXIS_K))
    push_down(mm, 1, (AXIS_K, AXIS_J))

    # upward: O-space (ancestors of mm inside the plan and their side inputs).
    # A node's tag comes either from a tagged operand (inference) or from a
    # tagged consumer (push-down); iterate to a fixpoint since side subtrees
    # only become taggable after their consumer is.
    progressed = True
    while progressed:
        progressed = False
        for node in plan.topo_nodes():
            if node in operator_tags:
                continue
            inferred = _infer_from_children(node, operator_tags)
            if inferred is None:
                continue
            tag, operand_tags = inferred
            operator_tags[node] = tag
            progressed = True
            # tag side subtrees (operands not yet covered)
            for idx, child in enumerate(node.inputs):
                if child in operator_tags:
                    continue
                push_down(node, idx, operand_tags[idx])
    untagged = [n for n in plan.topo_nodes() if n not in operator_tags]
    if untagged:
        raise PlanError(
            f"cannot infer axis tags for {untagged!r}: plan is not connected "
            "through the main multiplication"
        )
    return AxisTags(operator_tags, frontier_tags)


def _infer_from_children(
    node: Node, tags: Dict[Node, Tag]
) -> Optional[tuple[Tag, Dict[int, Tag]]]:
    """Infer *node*'s output tag and the tags of all its operands from the
    first operand that already carries a tag.

    For matrix multiplication the contraction axis is shared between both
    operands: when the tagged operand is the left one, the right operand's
    rows align with the left operand's columns (and symmetrically), and the
    free output dimension gets a fresh private axis.
    """
    for idx, child in enumerate(node.inputs):
        child_tag = tags.get(child)
        if child_tag is None:
            continue
        if isinstance(node, (UnaryNode, BinaryNode, AggNode)):
            operands = {i: child_tag for i in range(len(node.inputs))}
            return child_tag, operands
        if isinstance(node, TransposeNode):
            return (child_tag[1], child_tag[0]), {0: child_tag}
        if isinstance(node, MatMulNode):
            fresh = fresh_private_axis()
            if idx == 0:
                contraction = child_tag[1]
                own = (child_tag[0], fresh)
                return own, {0: child_tag, 1: (contraction, fresh)}
            contraction = child_tag[0]
            own = (fresh, child_tag[1])
            return own, {0: (fresh, contraction), 1: child_tag}
    return None


# ---------------------------------------------------------------------------
# space tree
# ---------------------------------------------------------------------------


class SpaceKind(enum.Enum):
    L = "L"
    R = "R"
    O = "O"


@dataclass
class Space:
    """Members of one of the L-, R- or O-spaces of a model space."""

    kind: SpaceKind
    #: Non-matmul plan operators directly in this space (not under a nested mm).
    operators: list[Node] = field(default_factory=list)
    #: Frontier consumption edges directly in this space.
    materialized: list[Edge] = field(default_factory=list)
    #: Nested model spaces opened by matmuls inside this space.
    nested: list["SpaceTree"] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (self.operators or self.materialized or self.nested)


@dataclass
class SpaceTree:
    """The recursive L/R/O/MM-space assignment of a partial fusion plan."""

    mm: MatMulNode
    spaces: Dict[SpaceKind, Space]
    #: True when the plan's materialized output is produced by this tree's
    #: root (only set on the outermost tree).
    produces_output: bool = False

    def space(self, kind: SpaceKind) -> Space:
        return self.spaces[kind]

    def all_nested(self) -> list["SpaceTree"]:
        result = []
        for space in self.spaces.values():
            for tree in space.nested:
                result.append(tree)
                result.extend(tree.all_nested())
        return result


def build_space_tree(
    plan: PartialFusionPlan, mm: Optional[MatMulNode] = None
) -> SpaceTree:
    """Assign every plan member to L-, R-, O- or a nested space.

    ``mm`` defaults to the plan's main multiplication (largest voxel count).
    """
    if mm is None:
        mm = plan.main_matmul()
    return _build_tree(plan, plan.nodes - {mm} , mm, outermost=True)


@dataclass(frozen=True)
class PlanLayout:
    """A validated 3-D layout of a partial fusion plan.

    Bundles the chosen main multiplication, its space tree and the axis tags.
    The layout guarantees the plan's output is grounded on the ``(i, j)``
    plane, so the CFO can assemble result tiles.
    """

    mm: MatMulNode
    tree: "SpaceTree"
    tags: AxisTags


def plan_layout(plan: PartialFusionPlan) -> PlanLayout:
    """Choose a main multiplication that yields a valid 3-D layout.

    Candidates are tried in the paper's order — largest ``I*J*K`` voxel
    volume first (Algorithm 3, line 3) — but a candidate is rejected when it
    cannot tag the whole plan consistently or leaves the plan output on a
    private axis (which happens when another multiplication *contracts* the
    main product stream; such a plan cannot execute as one CFO and the plan
    generator splits it instead).
    """
    matmuls = sorted(
        plan.matmuls(),
        key=lambda n: (
            -(n.inputs[0].meta.rows * n.inputs[1].meta.cols * n.common_dim),
            n.node_id,
        ),
    )
    if not matmuls:
        raise PlanError("plan contains no matrix multiplication")
    last_error: Optional[PlanError] = None
    for mm in matmuls:
        try:
            tags = assign_axis_tags(plan, mm)
        except PlanError as exc:
            last_error = exc
            continue
        if not _root_grounded(plan, tags):
            last_error = PlanError(
                f"plan output not on the (i, j) plane with main {mm!r}"
            )
            continue
        tree = build_space_tree(plan, mm)
        return PlanLayout(mm=mm, tree=tree, tags=tags)
    raise last_error if last_error is not None else PlanError(
        "no valid main multiplication"
    )


def _root_grounded(plan: PartialFusionPlan, tags: AxisTags) -> bool:
    """Whether the plan output tile lies on model axes the CFO can assemble."""
    root = plan.root
    if isinstance(root, AggNode):
        tag = tags.tag_of_operand(root, 0)
    else:
        tag = tags.operator_tags[root]
    allowed = {AxisKind.I, AxisKind.J}
    return tag[0].kind in allowed and tag[1].kind in allowed


def _build_tree(
    plan: PartialFusionPlan,
    members: frozenset[Node] | set[Node],
    mm: MatMulNode,
    outermost: bool,
) -> SpaceTree:
    members = set(members)

    def in_plan_descendants(anchor: Node) -> set[Node]:
        """Members reachable strictly below *anchor* through member edges."""
        result: set[Node] = set()
        stack = [anchor]
        while stack:
            current = stack.pop()
            for child in current.inputs:
                if child in members and child not in result:
                    result.add(child)
                    stack.append(child)
        return result

    left_members = (
        in_plan_descendants(mm.inputs[0]) | ({mm.inputs[0]} & members)
    )
    right_members = (
        (in_plan_descendants(mm.inputs[1]) | ({mm.inputs[1]} & members))
        - left_members
    )
    out_members = members - left_members - right_members

    spaces = {
        SpaceKind.L: _build_space(plan, SpaceKind.L, left_members, anchors=(mm, 0)),
        SpaceKind.R: _build_space(plan, SpaceKind.R, right_members, anchors=(mm, 1)),
        SpaceKind.O: _build_space(plan, SpaceKind.O, out_members, anchors=None),
    }
    return SpaceTree(mm=mm, spaces=spaces, produces_output=outermost)


def _build_space(
    plan: PartialFusionPlan,
    kind: SpaceKind,
    members: set[Node],
    anchors: Optional[Edge],
) -> Space:
    """Split a member set into direct operators, frontier edges and nested
    model spaces."""
    space = Space(kind=kind)

    # frontier edge feeding this space directly at the mm operand
    if anchors is not None:
        consumer, index = anchors
        if consumer.inputs[index] not in plan.nodes:
            space.materialized.append(anchors)

    if not members:
        return space

    matmuls = [n for n in members if isinstance(n, MatMulNode)]
    # top-level nested matmuls: not below another member matmul
    nested_roots: list[MatMulNode] = []
    below_some: set[Node] = set()
    for m in matmuls:
        others = [x for x in matmuls if x is not m]
        if not any(m in plan.descendants_within(x) - {x} for x in others if x in members):
            nested_roots.append(m)
    for m in nested_roots:
        nested_members = (plan.descendants_within(m) - {m}) & members
        below_some |= nested_members | {m}
        space.nested.append(_build_tree(plan, nested_members, m, outermost=False))

    direct = members - below_some
    ordered = [n for n in plan.topo_nodes() if n in direct]
    space.operators.extend(ordered)

    # frontier edges consumed by direct members
    for node in ordered:
        for idx, child in enumerate(node.inputs):
            if child not in plan.nodes:
                space.materialized.append((node, idx))
    return space


# ---------------------------------------------------------------------------
# sparsity exploitation detection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SparsityMask:
    """A valid Outer-fusion masking opportunity.

    ``mask_mul`` is the element-wise multiplication whose sparse side
    restricts which output cells of the main multiplication ever need
    computing; ``mask_operand_index`` points at the sparse side.
    """

    mask_mul: BinaryNode
    mask_operand_index: int


def find_sparsity_mask(
    plan: PartialFusionPlan,
    mm: MatMulNode,
    tree: SpaceTree,
    density_threshold: float = 0.25,
) -> Optional[SparsityMask]:
    """Detect the paper's sparsity-exploitation pattern (Outer fusion).

    Conditions checked:

    * O-space contains an element-wise ``mul`` one of whose operand subtrees
      is estimated sparse and independent of ``mm``;
    * every path from ``mm`` to the plan root passes through that ``mul``
      (otherwise unmasked cells of the product would still be observable);
    * the O-space contains no nested multiplication (masked evaluation
      operates on gathered 1-D cell vectors, which only element-wise,
      transpose and aggregation operators support).
    """
    o_space = tree.space(SpaceKind.O)
    if o_space.nested:
        return None
    if any(isinstance(n, TransposeNode) for n in o_space.operators):
        # masked evaluation gathers 1-D cell vectors positionally; a
        # transpose in O-space would change cell orientation mid-chain
        return None

    if not (plan.root is mm or mm in plan.descendants_within(plan.root)):
        return None

    for node in o_space.operators:
        if not (isinstance(node, BinaryNode) and node.kernel == "mul" and not node.has_scalar):
            continue
        for idx in (0, 1):
            side = node.inputs[idx]
            other = node.inputs[1 - idx]
            if side.meta.density > density_threshold:
                continue
            if _depends_on(plan, side, mm):
                continue
            if not _depends_on_or_is(plan, other, mm):
                continue
            if _reaches_avoiding(plan, mm, plan.root, blocked=node):
                continue  # a path escapes the mask
            if not _zero_preserving_above(plan, node):
                continue  # e.g. "+ eps" above the mask would densify
            return SparsityMask(mask_mul=node, mask_operand_index=idx)
    return None


def _zero_preserving_above(plan: PartialFusionPlan, mask_mul: Node) -> bool:
    """Whether every operator between *mask_mul* and the plan root keeps the
    masked stream's zeros at zero.

    Cells outside the mask are never computed, so they materialize as zeros;
    any operator above the mask that maps 0 to something else (``+ eps``,
    ``log``, a subtraction with another matrix, ...) would make those zeros
    observable and the masked evaluation wrong.
    """
    from repro.blocks.kernels import UNARY_KERNELS

    current = mask_mul
    while current is not plan.root:
        parents = [p for p in plan.nodes if current in p.inputs]
        if len(parents) != 1:
            return False
        parent = parents[0]
        if isinstance(parent, AggNode):
            current = parent
            continue
        if isinstance(parent, UnaryNode):
            if not UNARY_KERNELS[parent.kernel].zero_preserving:
                return False
            current = parent
            continue
        if isinstance(parent, BinaryNode):
            if parent.has_scalar:
                # scalar on the other side: only mul keeps 0 -> 0 from
                # either side; div/pow only when the stream is the left
                if parent.kernel == "mul":
                    current = parent
                    continue
                if parent.kernel in ("div", "pow") and not parent.scalar_on_left:
                    current = parent
                    continue
                return False
            if parent.kernel == "mul":
                current = parent
                continue
            if parent.kernel == "div" and parent.inputs[0] is current:
                current = parent
                continue
            return False
        return False
    return True


def _depends_on(plan: PartialFusionPlan, node: Node, target: Node) -> bool:
    """Whether *node* (possibly a frontier node) depends on *target* within
    the plan."""
    if node is target:
        return True
    if node not in plan.nodes:
        return False
    return target in plan.descendants_within(node)


def _depends_on_or_is(plan: PartialFusionPlan, node: Node, target: Node) -> bool:
    return node is target or _depends_on(plan, node, target)


def _reaches_avoiding(
    plan: PartialFusionPlan, source: Node, target: Node, blocked: Node
) -> bool:
    """Whether *target* is reachable upward from *source* without passing
    through *blocked*."""
    frontier = {source}
    visited: set[Node] = set()
    while frontier:
        current = frontier.pop()
        if current is target:
            return True
        if current in visited or current is blocked:
            continue
        visited.add(current)
        for parent in plan.nodes:
            if current in parent.inputs and parent is not blocked:
                if parent is target:
                    return True
                frontier.add(parent)
    return False
