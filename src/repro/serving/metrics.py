"""Service observability: per-tenant counters and latency histograms.

Everything the operator of a long-lived service wants on one status page:
how many queries each tenant submitted / was served / had shed, how deep
the queue is, how long queries wait and run (p50/p95/p99), and how often
the three cache layers hit.  All of it is *observability only* — nothing
here feeds the modeled numbers, mirroring the counters convention of
:class:`~repro.cluster.metrics.MetricsCollector`.

Latencies are recorded into fixed geometric buckets (factor-2 bounds from
~1 microsecond to ~1.1 hours), so percentile snapshots are O(1) memory,
deterministic, and safe to take at any time; a percentile resolves to its
bucket's upper bound clamped to the observed maximum.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict

#: Geometric bucket upper bounds: 2^-20 s (~1 us) .. 2^12 s (~1.1 h).
_BUCKET_BOUNDS = tuple(2.0 ** e for e in range(-20, 13))


class LatencyHistogram:
    """Fixed-bucket latency histogram with deterministic percentiles.

    Not internally locked — callers (:class:`ServiceMetrics`) synchronize.
    """

    def __init__(self) -> None:
        self._counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def record(self, seconds: float) -> None:
        seconds = max(0.0, seconds)
        self._counts[bisect_left(_BUCKET_BOUNDS, seconds)] += 1
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    def percentile(self, q: float) -> float:
        """The smallest bucket bound covering fraction *q* of the samples."""
        if self.count == 0:
            return 0.0
        rank = min(self.count, max(1, math.ceil(q * self.count)))
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(_BUCKET_BOUNDS):
                    return min(_BUCKET_BOUNDS[index], self.max)
                return self.max
        return self.max

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.total / self.count if self.count else 0.0,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


@dataclass
class TenantStats:
    """Lifetime counters for one tenant."""

    submitted: int = 0
    served: int = 0
    cache_hits: int = 0
    shed: int = 0
    timed_out: int = 0
    failed: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "served": self.served,
            "cache_hits": self.cache_hits,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "failed": self.failed,
        }


class ServiceMetrics:
    """Thread-safe roll-up of everything the service observes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantStats] = {}
        #: Per-tenant end-to-end latency (fair-sharing visibility: a noisy
        #: neighbour shows up in *other* tenants' percentiles).
        self._tenant_latency: Dict[str, LatencyHistogram] = {}
        #: Wall-clock seconds queries spent waiting for admission.
        self.queue_wait = LatencyHistogram()
        #: Wall-clock seconds from submit to completion (queue + run).
        self.latency = LatencyHistogram()
        #: Completed queries (served + timed out + failed) — log cadence.
        self.completed = 0

    def _tenant(self, tenant: str) -> TenantStats:
        stats = self._tenants.get(tenant)
        if stats is None:
            stats = self._tenants[tenant] = TenantStats()
        return stats

    def _tenant_hist(self, tenant: str) -> LatencyHistogram:
        hist = self._tenant_latency.get(tenant)
        if hist is None:
            hist = self._tenant_latency[tenant] = LatencyHistogram()
        return hist

    # -- recording --------------------------------------------------------

    def record_submitted(self, tenant: str) -> None:
        with self._lock:
            self._tenant(tenant).submitted += 1

    def record_served(
        self,
        tenant: str,
        from_cache: bool,
        queue_seconds: float,
        total_seconds: float,
    ) -> None:
        with self._lock:
            stats = self._tenant(tenant)
            stats.served += 1
            if from_cache:
                stats.cache_hits += 1
            self.queue_wait.record(queue_seconds)
            self.latency.record(total_seconds)
            self._tenant_hist(tenant).record(total_seconds)
            self.completed += 1

    def record_shed(self, tenant: str) -> None:
        with self._lock:
            self._tenant(tenant).shed += 1

    def record_timed_out(self, tenant: str) -> None:
        with self._lock:
            self._tenant(tenant).timed_out += 1
            self.completed += 1

    def record_failed(self, tenant: str) -> None:
        with self._lock:
            self._tenant(tenant).failed += 1
            self.completed += 1

    # -- reading ----------------------------------------------------------

    def totals(self) -> Dict[str, int]:
        """Counters summed across tenants (call under no particular lock)."""
        with self._lock:
            tenants = list(self._tenants.values())
        result = {
            "submitted": 0, "served": 0, "cache_hits": 0,
            "shed": 0, "timed_out": 0, "failed": 0,
        }
        for stats in tenants:
            for name, value in stats.snapshot().items():
                result[name] += value
        return result

    def snapshot(self) -> Dict[str, object]:
        """Everything observed, as one plain dict."""
        with self._lock:
            tenants: Dict[str, Dict[str, object]] = {}
            for name, stats in sorted(self._tenants.items()):
                tenant_snap: Dict[str, object] = dict(stats.snapshot())
                hist = self._tenant_latency.get(name)
                if hist is not None:
                    tenant_snap["latency"] = hist.snapshot()
                tenants[name] = tenant_snap
            queue_wait = self.queue_wait.snapshot()
            latency = self.latency.snapshot()
            completed = self.completed
        snap: Dict[str, object] = {
            "tenants": tenants,
            "queue_wait": queue_wait,
            "latency": latency,
            "completed": completed,
        }
        snap.update(self.totals())
        return snap

    def log_line(self, queue_depth: int, running: int) -> str:
        """One-line service summary for the periodic log."""
        totals = self.totals()
        with self._lock:
            p50 = self.latency.percentile(0.50)
            p95 = self.latency.percentile(0.95)
        served = totals["served"]
        hit_rate = totals["cache_hits"] / served if served else 0.0
        return (
            f"serving: served={served} shed={totals['shed']} "
            f"timed_out={totals['timed_out']} failed={totals['failed']} "
            f"queued={queue_depth} running={running} "
            f"p50={p50 * 1e3:.1f}ms p95={p95 * 1e3:.1f}ms "
            f"result_cache_hit_rate={hit_rate:.2f}"
        )
