"""Admission control: bounded queueing, fair scheduling, load shedding.

The service never starts a query the cluster cannot hold: every submitted
query carries a footprint estimate (:func:`estimate_query_bytes`), and the
:class:`AdmissionController` only releases *waves* of queries whose summed
estimates fit the service memory budget and whose count fits the configured
``max_concurrency``.  Everything else waits in a bounded per-tenant queue:

* **bounded** — once ``max_queue_depth`` queries are waiting, further
  submits are shed with :class:`~repro.errors.ServiceOverloadedError`
  instead of queueing unboundedly; a single query whose estimate exceeds
  the whole budget is shed immediately (it could never start without
  O.O.M.-ing mid-flight);
* **priority** — within one tenant, higher-priority queries dequeue first
  (FIFO among equals);
* **fair** — across tenants, waves are filled by *deficit round-robin*:
  each tenant banks ``drr_quantum_bytes`` of credit per scheduling round
  and admits queued queries while its credit covers their estimated cost,
  so one chatty tenant cannot starve the others no matter how fast it
  submits;
* **impatient** — a queued query that waits longer than the configured
  queue timeout is failed with :class:`~repro.errors.QueryTimeoutError`
  the next time the dispatcher looks at the queue.

The controller is *not* thread-safe on its own: the owning
:class:`~repro.serving.service.MatrixService` calls every method under its
dispatch lock.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Dict, List, Mapping, Tuple

from repro.config import ELEMENT_BYTES, ServiceConfig
from repro.errors import ServiceOverloadedError

if TYPE_CHECKING:
    from repro.lang.dag import DAG
    from repro.matrix.distributed import BlockedMatrix
    from repro.serving.service import QueryTicket

#: One queued item: (negated priority, admission sequence, ticket) — the
#: heap pops the highest priority first, FIFO among equals.
_Item = Tuple[int, int, "QueryTicket"]


def estimate_query_bytes(
    dag: "DAG", bound: Mapping[str, "BlockedMatrix"]
) -> int:
    """Upper-bound memory footprint of running *dag* on *bound* inputs.

    The sum of the distinct bound input matrices' stored bytes (a matrix
    bound under two names counts once) plus a dense upper bound for every
    root's materialized output.  Deliberately conservative and cheap: the
    estimate gates *admission*, the per-task ledger inside the cluster
    still enforces ``theta_t`` exactly.
    """
    seen = set()
    total = 0
    for leaf in dag.inputs():
        matrix = bound.get(leaf.name)
        if matrix is None or id(matrix) in seen:
            continue
        seen.add(id(matrix))
        total += matrix.nbytes
    for root in dag.roots:
        rows, cols = root.meta.shape
        total += rows * cols * ELEMENT_BYTES
    return total


class AdmissionController:
    """Bounded multi-tenant priority queues drained by deficit round-robin."""

    def __init__(self, config: ServiceConfig, memory_budget: int):
        if memory_budget <= 0:
            raise ValueError("memory_budget must be positive")
        self.config = config
        self.memory_budget = memory_budget
        self._queues: Dict[str, List[_Item]] = {}
        self._deficits: Dict[str, float] = {}
        #: Tenants with queued work, in round-robin order.
        self._active: deque = deque()
        self._seq = 0
        self._depth = 0
        self.num_shed = 0
        self.num_expired = 0

    @property
    def depth(self) -> int:
        """Total queued queries across all tenants."""
        return self._depth

    # -- enqueue ----------------------------------------------------------

    def offer(self, ticket: "QueryTicket") -> None:
        """Queue *ticket* or shed it (raises ServiceOverloadedError)."""
        if ticket.cost > self.memory_budget:
            self.num_shed += 1
            raise ServiceOverloadedError(
                f"query {ticket.query_id} needs an estimated {ticket.cost} "
                f"bytes, above the service memory budget of "
                f"{self.memory_budget} bytes — it could never be admitted"
            )
        if self._depth >= self.config.max_queue_depth:
            self.num_shed += 1
            raise ServiceOverloadedError(
                f"admission queue is full ({self._depth} queued, "
                f"max_queue_depth={self.config.max_queue_depth})"
            )
        queue = self._queues.get(ticket.tenant)
        if queue is None:
            queue = self._queues[ticket.tenant] = []
        if not queue:
            if ticket.tenant not in self._active:
                self._active.append(ticket.tenant)
        self._seq += 1
        heapq.heappush(queue, (-ticket.priority, self._seq, ticket))
        self._depth += 1

    # -- dequeue ----------------------------------------------------------

    def expire(self, now: float) -> List["QueryTicket"]:
        """Remove and return every queued ticket past the queue timeout."""
        timeout = self.config.queue_timeout_seconds
        if timeout is None or self._depth == 0:
            return []
        expired: List["QueryTicket"] = []
        for tenant in list(self._queues):
            queue = self._queues[tenant]
            keep = [
                item for item in queue
                if now - item[2].enqueued_at <= timeout
            ]
            if len(keep) == len(queue):
                continue
            expired.extend(
                item[2] for item in queue
                if now - item[2].enqueued_at > timeout
            )
            self._depth -= len(queue) - len(keep)
            if keep:
                heapq.heapify(keep)
                self._queues[tenant] = keep
            else:
                self._retire(tenant)
        self.num_expired += len(expired)
        return expired

    def next_wave(self) -> List["QueryTicket"]:
        """Admit the next wave of queries under both resource constraints.

        Deficit round-robin across tenants: each tenant visited in a round
        banks one quantum of credit (capped at one quantum beyond its head
        query, so idle tenants cannot hoard unbounded credit) and admits
        queued queries while the credit covers their cost.  The wave stops
        at ``max_concurrency`` queries or when the next candidate would
        push the summed estimates past the memory budget.
        """
        wave: List["QueryTicket"] = []
        wave_bytes = 0
        quantum = self.config.drr_quantum_bytes
        limit = self.config.max_concurrency
        while self._active and len(wave) < limit:
            took_any = False
            deficit_blocked = False
            visited = set()
            for _ in range(len(self._active)):
                if len(wave) >= limit or not self._active:
                    break
                tenant = self._active[0]
                if tenant in visited:
                    break
                visited.add(tenant)
                self._active.rotate(-1)
                queue = self._queues[tenant]
                head_cost = queue[0][2].cost
                deficit = min(
                    self._deficits.get(tenant, 0.0) + quantum,
                    max(quantum, head_cost) + quantum,
                )
                while queue and len(wave) < limit:
                    head = queue[0][2]
                    if wave_bytes + head.cost > self.memory_budget:
                        # memory-blocked: more credit cannot help this wave
                        break
                    if head.cost > deficit:
                        deficit_blocked = True
                        break
                    heapq.heappop(queue)
                    self._depth -= 1
                    deficit -= head.cost
                    wave.append(head)
                    wave_bytes += head.cost
                    took_any = True
                if queue:
                    self._deficits[tenant] = deficit
                else:
                    self._retire(tenant)
            if not took_any:
                if deficit_blocked and not wave:
                    # every head is waiting on credit; credit grows each
                    # round, so keep cycling until one is affordable
                    continue
                break
        return wave

    def drain(self) -> List["QueryTicket"]:
        """Remove and return everything queued (non-draining shutdown)."""
        leftovers: List["QueryTicket"] = []
        for tenant in list(self._queues):
            leftovers.extend(item[2] for item in self._queues[tenant])
            self._retire(tenant)
        self._depth = 0
        return leftovers

    def _retire(self, tenant: str) -> None:
        """Forget a tenant whose queue emptied (credit does not persist)."""
        self._queues.pop(tenant, None)
        self._deficits.pop(tenant, None)
        try:
            self._active.remove(tenant)
        except ValueError:
            pass

    def __repr__(self) -> str:
        return (
            f"AdmissionController(depth={self._depth}, "
            f"tenants={len(self._queues)}, budget={self.memory_budget})"
        )
