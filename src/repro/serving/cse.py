"""Cross-query common-subexpression elimination for the serving layer.

The result cache already deduplicates *completed* work: a query whose
``(planning signature, DAG fingerprint, bound-input versions)`` key was
filled earlier is answered without executing.  What it cannot deduplicate
is *in-flight* work — two tenants submitting the same subgraph at the same
moment (a shared dashboard refresh, replicated retraining jobs) both miss
the cache and both execute.

:class:`SubplanIndex` closes that window.  It is one service-wide registry
of executing result keys: the first query to lease a key becomes its
**owner** and executes normally; every concurrent query with the same key
becomes a **waiter** that blocks until the owner publishes its
:class:`~repro.execution.ExecutionResult` and adopts it verbatim.  Because
engine execution is deterministic, the adopted result is bit-identical to
what the waiter would have computed — the same contract the shared result
cache already relies on across replicas.

Deadlock freedom: a waiter only ever blocks on a key whose owner is
already past the lease (mid-execution on another dispatch thread), and
owners never wait on anything in this module — the wait graph is a star,
never a cycle.  If the owner's execution *fails*, waiters are woken with
no result and fall back to executing themselves, so one tenant's poisoned
binding can never fail another tenant's query.

Entries are removed the moment the owner completes or fails; later
arrivals are served by the result cache instead.  Disabled (the
``ServiceConfig.cross_query_cse`` default — adoption trades the
per-query-deltas-sum-to-cluster-totals invariant for throughput), every
lease reports ownership and the index keeps no state — the dispatch path
is byte-for-byte the pre-CSE one.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional


class _Inflight:
    """One executing result key: the owner's promise to its waiters."""

    __slots__ = (
        "cond", "done", "failed", "result", "waiters",
        "owner_tenant", "usage",
    )

    def __init__(self, lock: threading.Lock, owner_tenant: Optional[str] = None):
        self.cond = threading.Condition(lock)
        self.done = False
        self.failed = False
        self.result: object = None
        self.waiters = 0
        #: Accounting: which tenant's execution waiters adopt, and the
        #: resource usage the owner published with the result (for CSE
        #: cost-share transfers in the tenant ledgers).
        self.owner_tenant = owner_tenant
        self.usage: object = None


class SubplanLease:
    """What :meth:`SubplanIndex.lease` hands back.

    ``owner=True``: execute, then call ``complete``/``fail`` on the index.
    ``owner=False``: call :meth:`wait`; ``None`` means the owner failed
    and this query should execute on its own.
    """

    __slots__ = ("owner", "_entry")

    def __init__(self, owner: bool, entry: Optional[_Inflight]):
        self.owner = owner
        self._entry = entry

    @property
    def owner_tenant(self) -> Optional[str]:
        """Tenant whose execution this lease waits on (``None`` as owner)."""
        entry = self._entry
        return entry.owner_tenant if entry is not None else None

    @property
    def usage(self) -> object:
        """Resource usage the owner published with its result (read after
        a successful :meth:`wait`; feeds CSE cost-share accounting)."""
        entry = self._entry
        return entry.usage if entry is not None else None

    def wait(self, timeout: Optional[float] = None) -> Optional[object]:
        """Block until the owner publishes; the adopted result, or ``None``
        when the owner failed (or *timeout* expired) — then execute."""
        entry = self._entry
        assert entry is not None and not self.owner
        with entry.cond:
            if timeout is None:
                while not entry.done:
                    entry.cond.wait()
            elif not entry.done:
                # a spurious wake just demotes to solo execution — safe
                entry.cond.wait(timeout)
            if entry.done and not entry.failed:
                return entry.result
            return None


class SubplanIndex:
    """Service-wide registry of in-flight result keys (thread-safe)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._inflight: Dict[object, _Inflight] = {}
        # counters (monotonic, surfaced via stats())
        self._hits = 0        # waiters that adopted an owner's result
        self._executed = 0    # leases granted ownership
        self._failures = 0    # owner executions that failed
        self._fallbacks = 0   # waiters woken without a result

    # -- dispatch-path API -------------------------------------------------

    def lease(self, key: object, tenant: Optional[str] = None) -> SubplanLease:
        """Claim *key*: ownership when nobody is executing it, a waiter
        handle otherwise.  *tenant* labels the owning execution so
        adopters can be cost-shared against the right ledger."""
        if not self.enabled:
            return SubplanLease(True, None)
        with self._lock:
            entry = self._inflight.get(key)
            if entry is None:
                entry = _Inflight(self._lock, owner_tenant=tenant)
                self._inflight[key] = entry
                self._executed += 1
                return SubplanLease(True, entry)
            entry.waiters += 1
            return SubplanLease(False, entry)

    def complete(
        self, key: object, result: object, usage: object = None
    ) -> None:
        """Owner succeeded: publish *result* (and optionally its resource
        *usage*, for accounting) to waiters, retire the entry."""
        if not self.enabled:
            return
        with self._lock:
            entry = self._inflight.pop(key, None)
            if entry is None:
                return
            entry.done = True
            entry.result = result
            entry.usage = usage
            self._hits += entry.waiters
            entry.cond.notify_all()

    def fail(self, key: object) -> None:
        """Owner failed: wake waiters empty-handed (they execute solo)."""
        if not self.enabled:
            return
        with self._lock:
            entry = self._inflight.pop(key, None)
            if entry is None:
                return
            entry.done = True
            entry.failed = True
            self._failures += 1
            self._fallbacks += entry.waiters
            entry.cond.notify_all()

    # -- observability -----------------------------------------------------

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "hits": self._hits,
                "executed": self._executed,
                "failures": self._failures,
                "fallbacks": self._fallbacks,
                "inflight": len(self._inflight),
            }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"SubplanIndex(enabled={stats['enabled']}, "
            f"hits={stats['hits']}, inflight={stats['inflight']})"
        )
