"""Query tickets and served results: the service's future-like handles.

These used to live inside :mod:`repro.serving.service`; they moved here so
both the single-front-end :class:`~repro.serving.service.MatrixService`
and the replica machinery (:mod:`repro.serving.pool`) can share them
without an import cycle.  A :class:`QueryTicket` is resolved exactly once
— by a replica's dispatcher thread, or synchronously on a result-cache
hit — and supports thread-safe completion callbacks, which is how the
asyncio front end (:mod:`repro.serving.async_service`) bridges dispatcher
threads back into an event loop without polling.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:
    from repro.execution import ExecutionResult
    from repro.matrix.distributed import BlockedMatrix

logger = logging.getLogger("repro.serving")


@dataclass(frozen=True)
class ServedResult:
    """What a finished query hands back to its tenant."""

    query_id: str
    tenant: str
    #: The underlying execution (or the cached one, on a result-cache hit).
    result: "ExecutionResult"
    #: True when the result cache answered without re-execution.
    from_cache: bool
    #: Wall-clock seconds spent queued before execution started.
    queue_seconds: float
    #: Wall-clock seconds from submission to completion.
    service_seconds: float
    #: Name of the engine replica that served the query (None on a
    #: result-cache hit answered at submit time, before routing).
    replica: Optional[str] = None

    def output(self, index: int = 0) -> "BlockedMatrix":
        return self.result.output(index)

    @property
    def outputs(self):
        return self.result.outputs

    @property
    def metrics(self):
        """This query's own modeled metrics delta."""
        return self.result.metrics


class QueryTicket:
    """Future-like handle for one submitted query."""

    def __init__(
        self,
        query_id: str,
        tenant: str,
        dag,
        bound: Dict[str, "BlockedMatrix"],
        cost: int,
        priority: int,
    ):
        self.query_id = query_id
        self.tenant = tenant
        self.dag = dag
        self.bound = bound
        #: Estimated footprint in bytes (the admission currency).
        self.cost = cost
        self.priority = priority
        self.enqueued_at = time.monotonic()
        #: Name of the replica the router assigned (None until routed).
        self.replica: Optional[str] = None
        self._event = threading.Event()
        self._value: Optional[ServedResult] = None
        self._error: Optional[BaseException] = None
        self._cb_lock = threading.Lock()
        self._callbacks: List[Callable[["QueryTicket"], None]] = []

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> ServedResult:
        """Block until the query finishes; re-raises its failure if any."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query {self.query_id} did not complete within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The query's failure (None if it succeeded); blocks like result()."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query {self.query_id} did not complete within {timeout}s"
            )
        return self._error

    def add_done_callback(
        self, callback: Callable[["QueryTicket"], None]
    ) -> None:
        """Call *callback(ticket)* once the ticket resolves (immediately if
        it already has).  Callbacks run on whatever thread resolves the
        ticket — a replica dispatcher, or the submitter on a cache hit —
        so they must be cheap and must not block."""
        with self._cb_lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def _resolve(self, value: ServedResult) -> None:
        self._value = value
        self._finish()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._finish()

    def _finish(self) -> None:
        self._event.set()
        with self._cb_lock:
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback(self)
            except Exception:  # noqa: BLE001 - observers must not kill dispatch
                logger.exception(
                    "done-callback failed for query %s", self.query_id
                )

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return (
            f"QueryTicket(id={self.query_id!r}, tenant={self.tenant!r}, "
            f"cost={self.cost}, priority={self.priority}, {state})"
        )
