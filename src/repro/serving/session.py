"""Sessions: a tenant's named input bindings on a shared service.

A :class:`Session` is the tenant-facing handle of a
:class:`~repro.serving.service.MatrixService`.  It owns a mutable mapping
of input name -> :class:`~repro.matrix.distributed.BlockedMatrix`; queries
submitted through the session resolve their DAG leaves against that
mapping (optionally overridden per call).  Cache correctness under
re-binding is structural, not advisory:

* binding a name to a *new* matrix changes the matrix identity in the
  result-cache key;
* mutating a bound matrix in place (``set_block``) bumps the matrix's
  ``version``, which is part of both the result-cache and slice-cache keys;

so after any re-bind the next query re-executes instead of being served a
stale cached answer.  Sessions are cheap — open one per tenant, or several
per tenant for independent binding namespaces; fair scheduling groups them
by tenant name.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Mapping, Optional

from repro.errors import SessionClosedError
from repro.matrix.distributed import BlockedMatrix

if TYPE_CHECKING:
    from repro.execution import Query
    from repro.serving.service import MatrixService, QueryTicket, ServedResult


class Session:
    """One tenant's bindings + submission sugar (created by
    :meth:`MatrixService.open_session`)."""

    def __init__(self, service: "MatrixService", tenant: str, session_id: str):
        self._service = service
        self.tenant = tenant
        self.session_id = session_id
        self._bindings: Dict[str, BlockedMatrix] = {}
        self._lock = threading.Lock()
        self._closed = False
        #: How many times a name was (re-)bound — observability only.
        self.num_rebinds = 0

    # -- bindings ---------------------------------------------------------

    def bind(self, name: str, matrix: BlockedMatrix) -> "Session":
        """Bind *name* to *matrix* (replacing any previous binding)."""
        with self._lock:
            self._check_open()
            if name in self._bindings:
                self.num_rebinds += 1
            self._bindings[name] = matrix
        return self

    def bind_many(self, bindings: Mapping[str, BlockedMatrix]) -> "Session":
        """Bind every ``name -> matrix`` pair of *bindings*."""
        for name, matrix in bindings.items():
            self.bind(name, matrix)
        return self

    def unbind(self, name: str) -> None:
        with self._lock:
            self._check_open()
            self._bindings.pop(name, None)

    @property
    def bindings(self) -> Dict[str, BlockedMatrix]:
        """A copy of the current bindings."""
        with self._lock:
            return dict(self._bindings)

    def resolve_inputs(
        self, extra: Optional[Mapping[str, BlockedMatrix]] = None
    ) -> Dict[str, BlockedMatrix]:
        """This session's bindings merged with per-call *extra* overrides.

        The returned dict is a point-in-time snapshot: later re-binds do
        not affect queries already submitted with it.
        """
        with self._lock:
            self._check_open()
            merged = dict(self._bindings)
        if extra:
            merged.update(extra)
        return merged

    # -- submission -------------------------------------------------------

    def submit(
        self,
        query: "Query",
        inputs: Optional[Mapping[str, BlockedMatrix]] = None,
        priority: int = 0,
    ) -> "QueryTicket":
        """Submit *query* asynchronously; returns a ticket to wait on."""
        return self._service.submit(self, query, inputs=inputs, priority=priority)

    def execute(
        self,
        query: "Query",
        inputs: Optional[Mapping[str, BlockedMatrix]] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> "ServedResult":
        """Submit *query* and block until its result is available."""
        return self.submit(query, inputs=inputs, priority=priority).result(timeout)

    def explain(
        self,
        query: "Query",
        inputs: Optional[Mapping[str, BlockedMatrix]] = None,
    ) -> str:
        """Render *query*'s physical plan (no execution, no admission)."""
        return self._service.explain(self, query, inputs=inputs)

    def profile(
        self,
        query: "Query",
        inputs: Optional[Mapping[str, BlockedMatrix]] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
    ):
        """Execute *query* and return its cost-model accountability report
        (a :class:`~repro.obs.profile.QueryProfile`)."""
        return self._service.profile(
            self, query, inputs=inputs, priority=priority, timeout=timeout
        )

    # -- lifecycle --------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the session; further submits raise SessionClosedError."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._bindings.clear()
        self._service._forget_session(self)

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError(
                f"session {self.session_id} is closed"
            )

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Session(id={self.session_id!r}, tenant={self.tenant!r}, "
            f"bindings={sorted(self._bindings)}, closed={self._closed})"
        )
