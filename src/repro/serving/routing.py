"""Consistent-hash routing: stable tenant -> replica assignment.

The replica pool shards tenants across engine replicas with a classic
consistent-hash ring: every replica owns ``vnodes`` points on a 64-bit
ring (hashes of ``"<replica>#<i>"``), and a key routes to the owner of the
first point at or after the key's own hash, wrapping at the top.  Two
properties make this the right router for a resizable pool:

* **determinism** — hashes come from BLAKE2b, never Python's salted
  ``hash()``, so the same members and key produce the same route in every
  process, on every run (the 1-vs-N determinism tests depend on it);
* **bounded movement** — adding a replica only moves keys *onto* the new
  member (an expected ``1/n`` of them), and removing one only moves the
  keys it owned; every other tenant keeps its replica, its warm plan
  cache, and its admission queue.

The ring knows nothing about replicas beyond their names — it is a pure
string -> string map, trivially testable on its own.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Dict, Iterable, List, Tuple

#: Default virtual nodes per member; enough that a 4-replica ring spreads
#: tenants within a few percent of even.
DEFAULT_VNODES = 64


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of *key* (BLAKE2b, not ``hash``)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """A thread-safe consistent-hash ring over named members.

    ``route(key)`` is wait-free in practice (one hash + one bisect under a
    lock); ``add``/``remove`` rebuild the point list, which is fine at
    replica-pool scale (tens of members, not thousands).
    """

    def __init__(self, members: Iterable[str] = (), vnodes: int = DEFAULT_VNODES):
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._lock = threading.Lock()
        #: Sorted ``(point, member)`` pairs; ties (astronomically unlikely
        #: with 64-bit points) break deterministically by member name.
        self._points: List[Tuple[int, str]] = []
        self._members: set = set()
        for member in members:
            self.add(member)

    # -- membership -------------------------------------------------------

    def add(self, member: str) -> None:
        """Add *member* to the ring (raises on duplicates)."""
        with self._lock:
            if member in self._members:
                raise ValueError(f"ring member {member!r} already present")
            self._members.add(member)
            for i in range(self.vnodes):
                point = stable_hash(f"{member}#{i}")
                bisect.insort(self._points, (point, member))

    def remove(self, member: str) -> None:
        """Remove *member*; its keys fall to their next ring neighbours."""
        with self._lock:
            if member not in self._members:
                raise KeyError(f"ring member {member!r} not present")
            self._members.remove(member)
            self._points = [p for p in self._points if p[1] != member]

    @property
    def members(self) -> frozenset:
        with self._lock:
            return frozenset(self._members)

    def __len__(self) -> int:
        with self._lock:
            return len(self._members)

    def __contains__(self, member: str) -> bool:
        with self._lock:
            return member in self._members

    # -- routing ----------------------------------------------------------

    def route(self, key: str) -> str:
        """The member owning *key* (raises when the ring is empty)."""
        point = stable_hash(str(key))
        with self._lock:
            if not self._points:
                raise LookupError("cannot route on an empty ring")
            index = bisect.bisect_left(self._points, (point,))
            if index == len(self._points):
                index = 0
            return self._points[index][1]

    def assignments(self, keys: Iterable[str]) -> Dict[str, str]:
        """``{key -> member}`` for every key (a point-in-time snapshot)."""
        return {key: self.route(key) for key in keys}

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ConsistentHashRing(members={sorted(self._members)}, "
                f"vnodes={self.vnodes})"
            )
