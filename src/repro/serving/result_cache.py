"""Result cache: identical repeated queries are served without re-execution.

Dashboards and iterative analysts re-issue the *same* query over unchanged
inputs constantly — the cheapest execution is none at all.  A finished
:class:`~repro.execution.ExecutionResult` is cached under a key with three
parts:

* the engine's :meth:`~repro.execution.Engine.planning_signature` — any
  config knob that could change modeled metrics (cluster shape, bandwidths,
  sparsity flags) makes a different key;
* :func:`~repro.core.plan_cache.dag_fingerprint` of the query DAG — two
  independently built but structurally identical queries share an entry;
* the *bound-input versions*: for every input name, ``(name, id(matrix),
  matrix.version)``.  Re-binding a name to a new matrix changes the ``id``;
  mutating a bound matrix in place (``set_block``) bumps its ``version`` —
  either way the key changes and a stale result can never be served.

Like the slice cache, entries pin their bound matrices with strong
references so an ``id()`` in a live key can never be recycled by the
allocator.  Eviction is LRU, capped both in entries and in summed output
bytes.  Blocks are immutable, so a cached result's outputs are safely
shared across tenants.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional

from repro.core.plan_cache import dag_fingerprint
from repro.execution import ExecutionResult
from repro.lang.dag import DAG
from repro.matrix.distributed import BlockedMatrix


def result_key(
    signature: tuple, dag: DAG, bound: Mapping[str, BlockedMatrix]
) -> Hashable:
    """The cache key for *dag* executed over *bound* under *signature*."""
    bindings = tuple(sorted(
        (name, id(matrix), matrix.version) for name, matrix in bound.items()
    ))
    return (signature, dag_fingerprint(dag), bindings)


@dataclass
class _Entry:
    result: ExecutionResult
    #: Strong references keeping every bound matrix (and its id()) alive.
    pins: Dict[str, BlockedMatrix]
    nbytes: int


class ResultCache:
    """Thread-safe LRU of finished executions, keyed by :func:`result_key`.

    ``max_entries=0`` disables the cache (every lookup misses, nothing is
    stored) — the ``ServiceConfig(result_cache_entries=0)`` baseline mode.
    """

    def __init__(self, max_entries: int = 128, max_bytes: int = 256 << 20):
        if max_entries < 0 or max_bytes < 0:
            raise ValueError("result cache capacities cannot be negative")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def get(self, key: Hashable) -> Optional[ExecutionResult]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.result

    def put(
        self,
        key: Hashable,
        result: ExecutionResult,
        pins: Mapping[str, BlockedMatrix],
    ) -> None:
        if not self.enabled:
            return
        nbytes = sum(m.nbytes for m in result.outputs.values())
        if nbytes > self.max_bytes:
            return  # one oversized result would evict everything else
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = _Entry(result, dict(pins), nbytes)
            self._bytes += nbytes
            while self._entries and (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    @property
    def cached_bytes(self) -> int:
        return self._bytes

    def stats(self) -> dict:
        """Hit/miss counts and occupancy as a plain dict (for status pages)."""
        with self._lock:
            hits, misses = self.hits, self.misses
            entries, cached = len(self._entries), self._bytes
        total = hits + misses
        return {
            "enabled": self.enabled,
            "entries": entries,
            "bytes": cached,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"ResultCache(entries={self.num_entries}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses})"
        )
