"""The multi-tenant query service front end.

A :class:`MatrixService` turns an engine into a long-lived service that
many tenants share, scaled horizontally across N engine replicas::

    submit ──► result-cache probe (shared) ──► consistent-hash route
                                                     │ by tenant
                     ┌───────────────┬───────────────┤
                     ▼               ▼               ▼
               replica-0       replica-1   ...  replica-N-1
               (own cluster,   (own cluster,    (own cluster,
                admission       admission        admission
                queue +         queue +          queue +
                dispatcher)     dispatcher)      dispatcher)
                     └───────────────┴───────────────┘
                       shared result cache + shared
                       calibration store + metrics

Each replica dispatches deficit-round-robin waves through its own engine
(see :mod:`repro.serving.pool`); with ``ServiceConfig.num_replicas=1``
the service behaves exactly like the original single-engine front end.

**Determinism.**  A replica executes exactly like a standalone engine —
per-query metric deltas, execute-lock serialization, stateless per-slot
runtime — so a fixed workload replayed through the service produces
bit-identical outputs and identical modeled per-query seconds/bytes to
running every query standalone through ``engine.execute()``, whether the
pool holds 1 replica or N.  Only wall-clock timing and observability
counters depend on scheduling and replica count.

**Robustness.**  Admission control (see :mod:`repro.serving.admission`)
guarantees a query never starts unless its estimated footprint fits its
replica's share of the service memory budget alongside the rest of its
wave — and the shares *sum* to the one configured budget, so N replicas
never collectively over-admit.  Over-budget queries wait in a bounded
queue or are shed with :class:`~repro.errors.ServiceOverloadedError`;
queued queries expire with :class:`~repro.errors.QueryTimeoutError`
after the configured wait.
"""

from __future__ import annotations

import itertools
import json
import logging
import threading
import time
from typing import Dict, List, Mapping, Optional

from repro.cluster.executor import SimulatedCluster
from repro.config import ServiceConfig
from repro.core import FuseMEEngine
from repro.errors import (
    ServingError,
    ServiceOverloadedError,
    SessionClosedError,
)
from repro.execution import Engine, Query, as_dag
from repro.matrix.distributed import BlockedMatrix
from repro.obs import QueryProfile
from repro.obs.accounting import ResourceAccountant
from repro.obs.httpd import MetricsHTTPServer
from repro.obs.prometheus import (
    cache_families,
    calibration_families,
    engine_families,
    render_exposition,
    replica_families,
    serving_families,
    slo_families,
    tenant_families,
)
from repro.obs.slo import SLOTracker
from repro.serving.admission import estimate_query_bytes
from repro.serving.metrics import ServiceMetrics
from repro.serving.pool import EngineReplica, ReplicaPool
from repro.serving.result_cache import ResultCache, result_key
from repro.serving.session import Session
from repro.serving.ticket import QueryTicket, ServedResult

__all__ = ["MatrixService", "QueryTicket", "ServedResult"]

logger = logging.getLogger("repro.serving")


def _merge_cache_stats(stats: List[Dict[str, object]]) -> Dict[str, object]:
    """Pool-wide view of per-replica cache stats: numeric fields sum,
    ``hit_rate`` is recomputed from the summed hits/misses, and flags
    (``enabled``) come from replica 0.  With one replica this returns its
    stats unchanged, so status consumers never see a shape change."""
    if len(stats) == 1:
        return dict(stats[0])
    merged: Dict[str, object] = dict(stats[0])
    for key in merged:
        if key == "hit_rate":
            continue
        if isinstance(merged[key], (int, float)) and not isinstance(
            merged[key], bool
        ):
            merged[key] = sum(s.get(key, 0) for s in stats)
    if "hit_rate" in merged:
        hits = sum(int(s.get("hits", 0)) for s in stats)
        misses = sum(int(s.get("misses", 0)) for s in stats)
        lookups = hits + misses
        merged["hit_rate"] = (hits / lookups) if lookups else 0.0
    return merged


class MatrixService:
    """Long-lived, multi-tenant matrix query service over a replica pool.

    Usage::

        with MatrixService(FuseMEEngine(config)) as service:
            alice = service.open_session("alice").bind("X", x_matrix)
            result = alice.execute(query)        # submit + wait
            ticket = alice.submit(other_query)   # async
            ...
            print(service.status())

    The engine handed in becomes replica 0 (with
    ``ServiceConfig.num_replicas=1`` — the default — the service is
    exactly the single-engine front end it always was); further replicas
    are ``engine.clone()``s.  The result cache, calibration store and
    service metrics are shared across all replicas; plan and slice caches
    stay per-replica (tenant affinity keeps them warm).
    """

    def __init__(
        self,
        engine: Optional[Engine] = None,
        config: Optional[ServiceConfig] = None,
        cluster: Optional[SimulatedCluster] = None,
    ):
        self.engine = engine if engine is not None else FuseMEEngine()
        self.config = config or ServiceConfig()
        budget = self.config.memory_budget_bytes
        if budget is None:
            budget = self.engine.config.cluster.total_memory_budget
        self.metrics = ServiceMetrics()
        self.result_cache = ResultCache(
            self.config.result_cache_entries, self.config.result_cache_bytes
        )
        self._lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}
        self._session_seq = itertools.count(1)
        self._query_seq = itertools.count(1)
        self._closed = False
        self._close_lock = threading.Lock()
        self._last_logged = 0
        # the observability plane: per-tenant chargeback ledgers and SLO
        # burn-rate tracking — both strictly observational (nothing here is
        # ever read back by admission, routing, planning or execution)
        self.accountant: Optional[ResourceAccountant] = (
            ResourceAccountant(self.config.cse_adopter_cost_share)
            if self.config.accounting else None
        )
        self.slo: Optional[SLOTracker] = (
            SLOTracker(self.config.slos, bus=self.engine.telemetry)
            if self.config.slos else None
        )
        self._httpd: Optional[MetricsHTTPServer] = None
        self.pool = ReplicaPool(
            self.engine,
            self.config,
            result_cache=self.result_cache,
            metrics=self.metrics,
            memory_budget=budget,
            cluster=cluster,
            on_complete=self._maybe_log,
            accountant=self.accountant,
            slo=self.slo,
        )

    @property
    def cluster(self) -> SimulatedCluster:
        """Replica 0's cluster (the service's cluster, pre-pool): whole-job
        totals for work routed there keep accumulating on it."""
        return self.pool.replicas[0].cluster

    # -- sessions ---------------------------------------------------------

    def open_session(self, tenant: str) -> Session:
        """A new session for *tenant* (fair-share groups by tenant name;
        the replica router keys by tenant too, so a tenant's sessions all
        land on one replica)."""
        with self._lock:
            if self._closed:
                raise ServingError("service is closed")
            session_id = f"{tenant}/s{next(self._session_seq)}"
            session = Session(self, tenant, session_id)
            self._sessions[session_id] = session
            return session

    def _forget_session(self, session: Session) -> None:
        with self._lock:
            self._sessions.pop(session.session_id, None)

    # -- submission -------------------------------------------------------

    def submit(
        self,
        session: Session,
        query: Query,
        inputs: Optional[Mapping[str, BlockedMatrix]] = None,
        priority: int = 0,
    ) -> QueryTicket:
        """Queue *query* for *session*; returns immediately with a ticket.

        Raises :class:`~repro.errors.ServiceOverloadedError` (load shed)
        when the tenant's replica queue is full or the query could never
        fit the replica's memory budget, and propagates binding errors
        eagerly so a doomed query never occupies queue space.
        """
        if session.closed:
            raise SessionClosedError(f"session {session.session_id} is closed")
        dag = as_dag(query)
        bound = session.resolve_inputs(inputs)
        dag.validate_inputs(bound.keys())
        tenant = session.tenant
        query_id = f"{tenant}/q{next(self._query_seq)}"
        cost = estimate_query_bytes(dag, bound)
        ticket = QueryTicket(query_id, tenant, dag, bound, cost, priority)
        self.metrics.record_submitted(tenant)
        if self.accountant is not None:
            self.accountant.record_submitted(tenant)

        # the result cache is shared pool-wide and the planning signature
        # is identical across replica clones, so any replica's earlier
        # fill answers this probe
        cached = self.result_cache.get(
            result_key(self.engine.planning_signature(), dag, bound)
        )
        if cached is not None:
            served = ServedResult(
                query_id=query_id,
                tenant=tenant,
                result=cached,
                from_cache=True,
                queue_seconds=0.0,
                service_seconds=time.monotonic() - ticket.enqueued_at,
            )
            self.metrics.record_served(
                tenant, from_cache=True,
                queue_seconds=0.0, total_seconds=served.service_seconds,
            )
            if self.accountant is not None:
                self.accountant.charge_query(
                    tenant, wall_seconds=served.service_seconds,
                    from_cache=True,
                )
            if self.slo is not None:
                self.slo.record(
                    tenant, latency_seconds=served.service_seconds
                )
            ticket._resolve(served)
            self._maybe_log()
            return ticket

        if self._closed:
            raise ServingError("service is closed")
        replica = self.pool.replica_for(tenant)
        try:
            replica.offer(ticket)
        except ServiceOverloadedError:
            self.metrics.record_shed(tenant)
            if self.accountant is not None:
                self.accountant.record_shed(tenant)
            if self.slo is not None:
                self.slo.record(tenant, ok=False)
            raise
        return ticket

    def execute(
        self,
        session: Session,
        query: Query,
        inputs: Optional[Mapping[str, BlockedMatrix]] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> ServedResult:
        """Submit and block until the result is available."""
        return self.submit(session, query, inputs, priority).result(timeout)

    def explain(
        self,
        session: Session,
        query: Query,
        inputs: Optional[Mapping[str, BlockedMatrix]] = None,
    ) -> str:
        """Render *query*'s physical plan without executing it.

        Resolves bindings exactly like :meth:`submit` (so the plan reflects
        this session's inputs), plans and lowers on the tenant's replica
        engine — warming the plan cache a later execute will hit — and
        never opens a cluster stage, bypasses admission, and touches no
        result cache.
        """
        if session.closed:
            raise SessionClosedError(f"session {session.session_id} is closed")
        dag = as_dag(query)
        bound = session.resolve_inputs(inputs)
        dag.validate_inputs(bound.keys())
        replica = self.pool.replica_for(session.tenant)
        return replica.engine.explain(dag, bound)

    def profile(
        self,
        session: Session,
        query: Query,
        inputs: Optional[Mapping[str, BlockedMatrix]] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> QueryProfile:
        """Execute *query* through the normal admission path and return its
        cost-model accountability report (``profile.result`` carries the
        :class:`ExecutionResult`).  A result-cache hit returns the profile
        captured when the cached entry originally executed.
        """
        if not self.engine.config.telemetry:
            raise RuntimeError(
                "service.profile() needs telemetry; the engine was built "
                "with EngineConfig.telemetry=False"
            )
        served = self.execute(session, query, inputs, priority, timeout)
        profile = served.result.profile
        assert profile is not None
        return profile

    # -- replica management -----------------------------------------------

    def replica_for(self, tenant: str) -> EngineReplica:
        """The replica currently serving *tenant*."""
        return self.pool.replica_for(tenant)

    def rebalance(self) -> Dict[str, str]:
        """The current ``tenant -> replica name`` assignment over the
        tenants with open sessions (the explicit rebalance hook: call
        after :meth:`ReplicaPool.add_replica` / ``remove_replica`` to see
        where tenants moved)."""
        with self._lock:
            tenants = sorted({s.tenant for s in self._sessions.values()})
        return self.pool.rebalance(tenants)

    # -- observability ----------------------------------------------------

    def status(self) -> Dict[str, object]:
        """Everything observable about the service, as one plain dict."""
        with self._lock:
            sessions = len(self._sessions)
            closed = self._closed
        replicas = self.pool.status()
        snap = self.metrics.snapshot()
        snap.update(
            closed=closed,
            queue_depth=sum(int(r["queue_depth"]) for r in replicas),
            running=sum(int(r["running"]) for r in replicas),
            sessions=sessions,
            num_replicas=len(replicas),
            # pool-wide: the per-replica budgets sum back to the one
            # configured service budget
            memory_budget_bytes=sum(
                int(r["memory_budget_bytes"]) for r in replicas
            ),
            result_cache=self.result_cache.stats(),
            # cross-query CSE: in-flight dedup across tenants and replicas
            cse=self.pool.subplans.stats(),
            plan_cache=_merge_cache_stats([r["plan_cache"] for r in replicas]),
            slice_cache=_merge_cache_stats(
                [r["slice_cache"] for r in replicas]
            ),
            # one store across the pool, shared by every replica and tenant
            calibration=self.engine.calibration.stats(),
            cluster=self.cluster.metrics.snapshot(),
            replicas=replicas,
        )
        if self.accountant is not None:
            snap["accounting"] = self.accountant.snapshot()
        if self.slo is not None:
            snap["slo"] = self.slo.snapshot()
        return snap

    def accounting(self) -> str:
        """The per-tenant chargeback report (see
        :meth:`repro.obs.accounting.ResourceAccountant.render_chargeback`).
        Raises when accounting is disabled
        (``ServiceConfig(accounting=False)``)."""
        if self.accountant is None:
            raise RuntimeError(
                "accounting is disabled; enable it with "
                "ServiceConfig(accounting=True)"
            )
        return self.accountant.render_chargeback()

    def prometheus(self) -> str:
        """The whole service as one Prometheus text exposition page:
        engine stage totals and counters, all three cache layers,
        per-tenant query outcomes + latency quantiles, per-replica gauges,
        and — when enabled — the per-tenant accounting ledgers and SLO
        burn rates."""
        status = self.status()
        families = engine_families(status["cluster"])
        families += cache_families({
            "plan": status["plan_cache"],
            "slice": status["slice_cache"],
            "result": status["result_cache"],
        })
        families += calibration_families(status["calibration"])
        families += serving_families(status)
        families += replica_families(status["replicas"])
        if "accounting" in status:
            families += tenant_families(status["accounting"])
        if "slo" in status:
            families += slo_families(status["slo"])
        return render_exposition(families)

    def serve_metrics(
        self, port: int = 0, host: str = "127.0.0.1"
    ) -> MetricsHTTPServer:
        """Expose ``/metrics`` (Prometheus scrape) and ``/status`` (JSON)
        over HTTP on a daemon thread.  ``port=0`` picks an ephemeral port
        (``server.port``/``server.url`` tell you which); the endpoint stops
        with :meth:`close`, or earlier via ``server.close()``.  Idempotent
        per service: a live endpoint is returned as-is."""
        with self._lock:
            if self._closed:
                raise ServingError("service is closed")
            if self._httpd is None:
                self._httpd = MetricsHTTPServer(
                    {
                        "/metrics": lambda: (
                            "text/plain; version=0.0.4; charset=utf-8",
                            self.prometheus(),
                        ),
                        "/status": lambda: (
                            "application/json",
                            json.dumps(self.status(), default=str),
                        ),
                    },
                    host=host,
                    port=port,
                )
            return self._httpd

    def _maybe_log(self) -> None:
        every = self.config.log_every
        if not every:
            return
        with self._lock:
            completed = self.metrics.completed
            if completed < self._last_logged + every:
                return
            self._last_logged = completed
        queue_depth = self.pool.queue_depth
        running = self.pool.running
        logger.info("%s", self.metrics.log_line(queue_depth, running))

    # -- lifecycle --------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting queries and shut every replica down.

        Idempotent and concurrency-safe: concurrent closers serialize on
        the close lock, a second close finds every replica already closed
        and returns quietly, and close during in-flight queries lets them
        finish (``drain=True``, the default) or fails queued ones with
        ServiceOverloadedError (``drain=False``).  Engine runtime
        resources (worker-process pools) are released after each replica's
        dispatcher stops, so in-flight queries finish on whatever backend
        they started with.
        """
        with self._close_lock:
            with self._lock:
                self._closed = True
                httpd, self._httpd = self._httpd, None
            if httpd is not None:
                httpd.close()
            self.pool.close(drain=drain, timeout=timeout)

    def __enter__(self) -> "MatrixService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"MatrixService(engine={self.engine.name!r}, "
            f"replicas={len(self.pool)}, "
            f"queue_depth={self.pool.queue_depth}, "
            f"running={self.pool.running}, closed={self._closed})"
        )
