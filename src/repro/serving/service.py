"""The multi-tenant query service front end.

A :class:`MatrixService` turns one engine + one
:class:`~repro.cluster.executor.SimulatedCluster` into a long-lived service
that many tenants share::

    submit ──► result-cache probe ──► per-tenant admission queues
                                            │  dispatcher thread
                                            ▼
                    wave = next_wave()        (deficit round-robin;
                                               <= max_concurrency queries,
                                               sum(cost) <= memory budget)
                    parallel_map(run, wave)   (repro.cluster.parallel)
                                            │  engine execute lock
                                            ▼
                    shared engine + cluster + plan/slice/result caches

**Determinism.**  Queries in a wave are *drained* by the thread pool, but
cluster-stage accounting is serialized by the engine's execute lock, each
query's result carries only the metrics delta it accumulated, and the
per-slot runtime is stateless across stages — so a fixed workload replayed
through the service produces bit-identical outputs and identical modeled
per-query seconds/bytes to running every query standalone through
``engine.execute()``.  Only wall-clock timing and observability counters
depend on scheduling.

**Robustness.**  Admission control (see :mod:`repro.serving.admission`)
guarantees a query never starts unless its estimated footprint fits the
service memory budget alongside the rest of its wave: over-budget queries
wait in a bounded queue or are shed with
:class:`~repro.errors.ServiceOverloadedError` — they never start and
O.O.M. mid-flight.  Queued queries expire with
:class:`~repro.errors.QueryTimeoutError` after the configured wait.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.cluster.executor import SimulatedCluster
from repro.cluster.parallel import parallel_map
from repro.config import ServiceConfig
from repro.core import FuseMEEngine
from repro.errors import (
    QueryTimeoutError,
    ServingError,
    ServiceOverloadedError,
    SessionClosedError,
)
from repro.execution import Engine, ExecutionResult, Query, as_dag
from repro.matrix.distributed import BlockedMatrix
from repro.obs import QueryProfile
from repro.obs.prometheus import (
    cache_families,
    calibration_families,
    engine_families,
    render_exposition,
    serving_families,
)
from repro.serving.admission import AdmissionController, estimate_query_bytes
from repro.serving.metrics import ServiceMetrics
from repro.serving.result_cache import ResultCache, result_key
from repro.serving.session import Session

logger = logging.getLogger("repro.serving")


@dataclass(frozen=True)
class ServedResult:
    """What a finished query hands back to its tenant."""

    query_id: str
    tenant: str
    #: The underlying execution (or the cached one, on a result-cache hit).
    result: ExecutionResult
    #: True when the result cache answered without re-execution.
    from_cache: bool
    #: Wall-clock seconds spent queued before execution started.
    queue_seconds: float
    #: Wall-clock seconds from submission to completion.
    service_seconds: float

    def output(self, index: int = 0) -> BlockedMatrix:
        return self.result.output(index)

    @property
    def outputs(self):
        return self.result.outputs

    @property
    def metrics(self):
        """This query's own modeled metrics delta."""
        return self.result.metrics


class QueryTicket:
    """Future-like handle for one submitted query."""

    def __init__(
        self,
        query_id: str,
        tenant: str,
        dag,
        bound: Dict[str, BlockedMatrix],
        cost: int,
        priority: int,
    ):
        self.query_id = query_id
        self.tenant = tenant
        self.dag = dag
        self.bound = bound
        #: Estimated footprint in bytes (the admission currency).
        self.cost = cost
        self.priority = priority
        self.enqueued_at = time.monotonic()
        self._event = threading.Event()
        self._value: Optional[ServedResult] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> ServedResult:
        """Block until the query finishes; re-raises its failure if any."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query {self.query_id} did not complete within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The query's failure (None if it succeeded); blocks like result()."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query {self.query_id} did not complete within {timeout}s"
            )
        return self._error

    def _resolve(self, value: ServedResult) -> None:
        self._value = value
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return (
            f"QueryTicket(id={self.query_id!r}, tenant={self.tenant!r}, "
            f"cost={self.cost}, priority={self.priority}, {state})"
        )


class MatrixService:
    """Long-lived, multi-tenant matrix query service over one engine.

    Usage::

        with MatrixService(FuseMEEngine(config)) as service:
            alice = service.open_session("alice").bind("X", x_matrix)
            result = alice.execute(query)        # submit + wait
            ticket = alice.submit(other_query)   # async
            ...
            print(service.status())

    The service owns one :class:`SimulatedCluster` (whole-job totals keep
    accumulating on it) and shares the engine's plan cache and slice cache
    across every tenant; the result cache is the service's own.
    """

    def __init__(
        self,
        engine: Optional[Engine] = None,
        config: Optional[ServiceConfig] = None,
        cluster: Optional[SimulatedCluster] = None,
    ):
        self.engine = engine if engine is not None else FuseMEEngine()
        self.config = config or ServiceConfig()
        self.cluster = cluster or SimulatedCluster(self.engine.config)
        budget = self.config.memory_budget_bytes
        if budget is None:
            budget = self.engine.config.cluster.total_memory_budget
        self.metrics = ServiceMetrics()
        self.result_cache = ResultCache(
            self.config.result_cache_entries, self.config.result_cache_bytes
        )
        self._admission = AdmissionController(self.config, budget)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._sessions: Dict[str, Session] = {}
        self._session_seq = itertools.count(1)
        self._query_seq = itertools.count(1)
        self._running = 0
        self._closed = False
        self._last_logged = 0
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serving-dispatch", daemon=True
        )
        self._dispatcher.start()

    # -- sessions ---------------------------------------------------------

    def open_session(self, tenant: str) -> Session:
        """A new session for *tenant* (fair-share groups by tenant name)."""
        with self._lock:
            if self._closed:
                raise ServingError("service is closed")
            session_id = f"{tenant}/s{next(self._session_seq)}"
            session = Session(self, tenant, session_id)
            self._sessions[session_id] = session
            return session

    def _forget_session(self, session: Session) -> None:
        with self._lock:
            self._sessions.pop(session.session_id, None)

    # -- submission -------------------------------------------------------

    def submit(
        self,
        session: Session,
        query: Query,
        inputs: Optional[Mapping[str, BlockedMatrix]] = None,
        priority: int = 0,
    ) -> QueryTicket:
        """Queue *query* for *session*; returns immediately with a ticket.

        Raises :class:`~repro.errors.ServiceOverloadedError` (load shed)
        when the admission queue is full or the query could never fit the
        memory budget, and propagates binding errors eagerly so a doomed
        query never occupies queue space.
        """
        if session.closed:
            raise SessionClosedError(f"session {session.session_id} is closed")
        dag = as_dag(query)
        bound = session.resolve_inputs(inputs)
        dag.validate_inputs(bound.keys())
        tenant = session.tenant
        query_id = f"{tenant}/q{next(self._query_seq)}"
        cost = estimate_query_bytes(dag, bound)
        ticket = QueryTicket(query_id, tenant, dag, bound, cost, priority)
        self.metrics.record_submitted(tenant)

        cached = self.result_cache.get(
            result_key(self.engine.planning_signature(), dag, bound)
        )
        if cached is not None:
            served = ServedResult(
                query_id=query_id,
                tenant=tenant,
                result=cached,
                from_cache=True,
                queue_seconds=0.0,
                service_seconds=time.monotonic() - ticket.enqueued_at,
            )
            self.metrics.record_served(
                tenant, from_cache=True,
                queue_seconds=0.0, total_seconds=served.service_seconds,
            )
            ticket._resolve(served)
            self._maybe_log()
            return ticket

        with self._cond:
            if self._closed:
                raise ServingError("service is closed")
            try:
                self._admission.offer(ticket)
            except ServiceOverloadedError:
                self.metrics.record_shed(tenant)
                raise
            self._cond.notify_all()
        return ticket

    def execute(
        self,
        session: Session,
        query: Query,
        inputs: Optional[Mapping[str, BlockedMatrix]] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> ServedResult:
        """Submit and block until the result is available."""
        return self.submit(session, query, inputs, priority).result(timeout)

    def explain(
        self,
        session: Session,
        query: Query,
        inputs: Optional[Mapping[str, BlockedMatrix]] = None,
    ) -> str:
        """Render *query*'s physical plan without executing it.

        Resolves bindings exactly like :meth:`submit` (so the plan reflects
        this session's inputs), plans and lowers on the shared engine —
        warming the plan cache for a later execute — and never opens a
        cluster stage, bypasses admission, and touches no result cache.
        """
        if session.closed:
            raise SessionClosedError(f"session {session.session_id} is closed")
        dag = as_dag(query)
        bound = session.resolve_inputs(inputs)
        dag.validate_inputs(bound.keys())
        return self.engine.explain(dag, bound)

    def profile(
        self,
        session: Session,
        query: Query,
        inputs: Optional[Mapping[str, BlockedMatrix]] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> QueryProfile:
        """Execute *query* through the normal admission path and return its
        cost-model accountability report (``profile.result`` carries the
        :class:`ExecutionResult`).  A result-cache hit returns the profile
        captured when the cached entry originally executed.
        """
        if not self.engine.config.telemetry:
            raise RuntimeError(
                "service.profile() needs telemetry; the engine was built "
                "with EngineConfig.telemetry=False"
            )
        served = self.execute(session, query, inputs, priority, timeout)
        profile = served.result.profile
        assert profile is not None
        return profile

    # -- dispatch ---------------------------------------------------------

    def _dispatch_loop(self) -> None:
        poll = self.config.dispatch_poll_seconds
        while True:
            with self._cond:
                while not self._closed and self._admission.depth == 0:
                    self._cond.wait(poll)
                expired = self._admission.expire(time.monotonic())
                wave = self._admission.next_wave()
                if (
                    self._closed
                    and not wave
                    and not expired
                    and self._admission.depth == 0
                ):
                    return
                self._running += len(wave)
            for ticket in expired:
                self._expire_ticket(ticket)
            if wave:
                # the wave drains on the same thread-pool path queries use
                # for intra-query parallelism; the engine's execute lock
                # serializes cluster-stage accounting inside
                parallel_map(self._run_one, wave, self.config.max_concurrency)

    def _run_one(self, ticket: QueryTicket) -> None:
        started = time.monotonic()
        queue_seconds = started - ticket.enqueued_at
        try:
            # recompute the key: a set_block between submit and execution
            # bumped the version, and the fresh result must be stored under
            # the content actually read
            key = result_key(
                self.engine.planning_signature(), ticket.dag, ticket.bound
            )
            cached = self.result_cache.get(key)
            if cached is not None:
                result, from_cache = cached, True
            else:
                result = self.engine.execute(
                    ticket.dag, ticket.bound, cluster=self.cluster
                )
                self.result_cache.put(key, result, pins=ticket.bound)
                from_cache = False
            total = time.monotonic() - ticket.enqueued_at
            served = ServedResult(
                query_id=ticket.query_id,
                tenant=ticket.tenant,
                result=result,
                from_cache=from_cache,
                queue_seconds=queue_seconds,
                service_seconds=total,
            )
            self.metrics.record_served(
                ticket.tenant, from_cache,
                queue_seconds=queue_seconds, total_seconds=total,
            )
            ticket._resolve(served)
        except Exception as exc:  # noqa: BLE001 - failures belong to the ticket
            self.metrics.record_failed(ticket.tenant)
            ticket._fail(exc)
        finally:
            with self._cond:
                self._running -= 1
                self._cond.notify_all()
            self._maybe_log()

    def _expire_ticket(self, ticket: QueryTicket) -> None:
        waited = time.monotonic() - ticket.enqueued_at
        self.metrics.record_timed_out(ticket.tenant)
        ticket._fail(QueryTimeoutError(
            ticket.query_id, waited, self.config.queue_timeout_seconds
        ))
        self._maybe_log()

    # -- observability ----------------------------------------------------

    def status(self) -> Dict[str, object]:
        """Everything observable about the service, as one plain dict."""
        with self._lock:
            queue_depth = self._admission.depth
            running = self._running
            sessions = len(self._sessions)
            closed = self._closed
            memory_budget = self._admission.memory_budget
        snap = self.metrics.snapshot()
        snap.update(
            closed=closed,
            queue_depth=queue_depth,
            running=running,
            sessions=sessions,
            memory_budget_bytes=memory_budget,
            result_cache=self.result_cache.stats(),
            plan_cache=self.engine.plan_cache.stats(),
            slice_cache=self.engine.slice_cache.stats(),
            # one store per engine, shared by every tenant of this service
            calibration=self.engine.calibration.stats(),
            cluster=self.cluster.metrics.snapshot(),
        )
        return snap

    def prometheus(self) -> str:
        """The whole service as one Prometheus text exposition page:
        engine stage totals and counters, all three cache layers, and
        per-tenant query outcomes + latency quantiles."""
        status = self.status()
        families = engine_families(status["cluster"])
        families += cache_families({
            "plan": status["plan_cache"],
            "slice": status["slice_cache"],
            "result": status["result_cache"],
        })
        families += calibration_families(status["calibration"])
        families += serving_families(status)
        return render_exposition(families)

    def _maybe_log(self) -> None:
        every = self.config.log_every
        if not every:
            return
        with self._lock:
            completed = self.metrics.completed
            if completed < self._last_logged + every:
                return
            self._last_logged = completed
            queue_depth = self._admission.depth
            running = self._running
        logger.info("%s", self.metrics.log_line(queue_depth, running))

    # -- lifecycle --------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting queries and shut the dispatcher down.

        ``drain=True`` (default) lets already-queued queries finish;
        ``drain=False`` fails them with ServiceOverloadedError.  The
        engine's runtime resources (the process-backend worker pool) are
        released after the dispatcher stops, so in-flight queries finish on
        whatever backend they started with.
        """
        with self._cond:
            self._closed = True
            leftovers = [] if drain else self._admission.drain()
            self._cond.notify_all()
        for ticket in leftovers:
            self.metrics.record_shed(ticket.tenant)
            ticket._fail(ServiceOverloadedError(
                f"query {ticket.query_id} dropped: service shutting down"
            ))
        self._dispatcher.join(timeout)
        closer = getattr(self.engine, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "MatrixService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"MatrixService(engine={self.engine.name!r}, "
            f"queue_depth={self._admission.depth}, running={self._running}, "
            f"closed={self._closed})"
        )
