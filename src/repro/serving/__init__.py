"""Multi-tenant serving layer: sessions, admission control, result caching,
and horizontal scale-out across engine replicas.

The engines in this repository execute one query at a time with exclusive
ownership of the simulated cluster.  :class:`MatrixService` turns them into
a long-lived query service: tenants open :class:`Session`\\ s that bind
named input matrices, an admission controller gates query start on the
cluster memory budget with per-tenant fair scheduling (deficit
round-robin), bounded queues, timeouts and load shedding, and a result
cache serves identical repeated queries without re-execution — all while
keeping modeled per-query metrics and outputs bit-identical to standalone
``engine.execute()`` runs.

Scale-out (``ServiceConfig.num_replicas``): a :class:`ReplicaPool` shards
tenants across N independent engine replicas by consistent hash
(:class:`ConsistentHashRing`), sharing the result cache and calibration
store pool-wide, and :class:`AsyncMatrixService` fronts the pool for
asyncio callers with semaphore backpressure that sheds overload before
the admission queues.

See DESIGN.md §9 for the single-replica architecture and determinism
argument, §14 for the replica pool and async front end.
"""

from repro.serving.admission import AdmissionController, estimate_query_bytes
from repro.serving.async_service import AsyncMatrixService, AsyncSession
from repro.serving.metrics import LatencyHistogram, ServiceMetrics, TenantStats
from repro.serving.pool import EngineReplica, ReplicaPool, split_budget
from repro.serving.result_cache import ResultCache, result_key
from repro.serving.routing import ConsistentHashRing, stable_hash
from repro.serving.service import MatrixService
from repro.serving.session import Session
from repro.serving.ticket import QueryTicket, ServedResult

__all__ = [
    "AdmissionController",
    "AsyncMatrixService",
    "AsyncSession",
    "ConsistentHashRing",
    "EngineReplica",
    "LatencyHistogram",
    "MatrixService",
    "QueryTicket",
    "ReplicaPool",
    "ResultCache",
    "ServedResult",
    "ServiceMetrics",
    "Session",
    "TenantStats",
    "estimate_query_bytes",
    "result_key",
    "split_budget",
    "stable_hash",
]
