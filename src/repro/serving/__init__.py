"""Multi-tenant serving layer: sessions, admission control, result caching.

The engines in this repository execute one query at a time with exclusive
ownership of the simulated cluster.  :class:`MatrixService` turns them into
a long-lived query service: tenants open :class:`Session`\\ s that bind
named input matrices, an admission controller gates query start on the
cluster memory budget with per-tenant fair scheduling (deficit
round-robin), bounded queues, timeouts and load shedding, and a result
cache serves identical repeated queries without re-execution — all while
keeping modeled per-query metrics and outputs bit-identical to standalone
``engine.execute()`` runs.

See DESIGN.md §9 for the architecture and the determinism argument.
"""

from repro.serving.admission import AdmissionController, estimate_query_bytes
from repro.serving.metrics import LatencyHistogram, ServiceMetrics, TenantStats
from repro.serving.result_cache import ResultCache, result_key
from repro.serving.service import MatrixService, QueryTicket, ServedResult
from repro.serving.session import Session

__all__ = [
    "AdmissionController",
    "LatencyHistogram",
    "MatrixService",
    "QueryTicket",
    "ResultCache",
    "ServedResult",
    "ServiceMetrics",
    "Session",
    "TenantStats",
    "estimate_query_bytes",
    "result_key",
]
