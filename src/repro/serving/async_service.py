"""Asyncio front end over the replica pool: submit/await with backpressure.

:class:`AsyncMatrixService` wraps a (synchronous) :class:`MatrixService`
for event-loop callers.  Three design points:

* **shed before the queue** — an asyncio semaphore caps the coroutines
  in flight (``ServiceConfig.async_max_inflight``, default
  ``2 * max_queue_depth``); with the default ``shed=True`` a submit that
  finds the cap exhausted raises
  :class:`~repro.errors.ServiceOverloadedError` *immediately*, before
  touching any admission queue — overload is rejected at the door, not
  buffered into latency.  ``shed=False`` opts a submitter into waiting
  for a permit instead (cooperatively — the loop stays responsive).
* **threads bridge to the loop, never block it** — the actual execution
  happens on the pool's per-replica dispatcher threads; completion comes
  back via :meth:`QueryTicket.add_done_callback` +
  ``loop.call_soon_threadsafe``, so no coroutine ever blocks a thread on
  ``ticket.result()`` and no polling task spins.
* **zero new execution semantics** — routing, admission, fairness,
  caching and the 1-vs-N determinism contract are entirely the sync
  service's; this module only adapts the waiting.

Usage::

    async with AsyncMatrixService(FuseMEEngine(config), service_config) as svc:
        alice = svc.open_session("alice").bind("X", x)
        results = await asyncio.gather(*[
            svc.execute(alice, query) for query in workload
        ])

Like :mod:`repro.serving.pool`, this is front-end plumbing and imports
nothing above the serving layer (enforced by ``scripts/check_layers.py``).
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Dict, Mapping, Optional

from repro.config import ServiceConfig
from repro.errors import ServiceOverloadedError
from repro.serving.service import MatrixService
from repro.serving.ticket import QueryTicket, ServedResult

if TYPE_CHECKING:
    from repro.execution import Engine
    from repro.matrix.distributed import BlockedMatrix
    from repro.serving.session import Session


class AsyncSession:
    """Thin async wrapper pairing a sync session with its async service."""

    def __init__(self, service: "AsyncMatrixService", session: "Session"):
        self._service = service
        self._session = session

    @property
    def session(self) -> "Session":
        """The underlying synchronous session."""
        return self._session

    @property
    def tenant(self) -> str:
        return self._session.tenant

    def bind(self, name: str, matrix: "BlockedMatrix") -> "AsyncSession":
        self._session.bind(name, matrix)
        return self

    def bind_many(
        self, matrices: Mapping[str, "BlockedMatrix"]
    ) -> "AsyncSession":
        self._session.bind_many(matrices)
        return self

    async def submit(self, query, inputs=None, priority: int = 0,
                     shed: bool = True) -> "asyncio.Future[ServedResult]":
        return await self._service.submit(
            self._session, query, inputs, priority, shed=shed
        )

    async def execute(self, query, inputs=None, priority: int = 0,
                      shed: bool = True) -> ServedResult:
        return await self._service.execute(
            self._session, query, inputs, priority, shed=shed
        )

    def close(self) -> None:
        self._session.close()


class AsyncMatrixService:
    """``async submit / await result`` over a :class:`MatrixService`.

    Construct it either around an engine (a sync service is built
    internally) or around an existing ``MatrixService`` via ``service=``.
    """

    def __init__(
        self,
        engine: Optional["Engine"] = None,
        config: Optional[ServiceConfig] = None,
        *,
        service: Optional[MatrixService] = None,
        max_inflight: Optional[int] = None,
    ):
        if service is not None and engine is not None:
            raise ValueError("pass either an engine or a service, not both")
        self.service = service or MatrixService(engine, config)
        self.config = self.service.config
        if max_inflight is None:
            max_inflight = self.config.async_max_inflight
        if max_inflight is None:
            max_inflight = 2 * self.config.max_queue_depth
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        self.max_inflight = max_inflight
        # the semaphore binds to the loop it is first used on; created
        # lazily (and re-created if the service outlives a loop, as it
        # does across back-to-back asyncio.run calls in tests/benchmarks)
        self._sem: Optional[asyncio.Semaphore] = None
        self._sem_loop: Optional[asyncio.AbstractEventLoop] = None

    def _semaphore(self) -> asyncio.Semaphore:
        loop = asyncio.get_running_loop()
        if self._sem is None or self._sem_loop is not loop:
            self._sem = asyncio.Semaphore(self.max_inflight)
            self._sem_loop = loop
        return self._sem

    # -- sessions ---------------------------------------------------------

    def open_session(self, tenant: str) -> AsyncSession:
        return AsyncSession(self, self.service.open_session(tenant))

    # -- submission -------------------------------------------------------

    async def submit(
        self,
        session,
        query,
        inputs: Optional[Mapping[str, "BlockedMatrix"]] = None,
        priority: int = 0,
        shed: bool = True,
    ) -> "asyncio.Future[ServedResult]":
        """Submit *query*; returns an awaitable future for its result.

        With ``shed=True`` (default) a submit beyond ``max_inflight``
        raises :class:`~repro.errors.ServiceOverloadedError` without
        queueing anything; ``shed=False`` waits for a permit instead.
        *session* may be an :class:`AsyncSession` or a plain sync session.
        """
        if isinstance(session, AsyncSession):
            session = session.session
        sem = self._semaphore()
        if shed and sem.locked():
            raise ServiceOverloadedError(
                f"async front end at capacity ({self.max_inflight} queries "
                f"in flight); submit shed before admission"
            )
        await sem.acquire()
        try:
            ticket = self.service.submit(session, query, inputs, priority)
        except BaseException:
            sem.release()
            raise
        return self._bridge(ticket, sem)

    async def execute(
        self,
        session,
        query,
        inputs: Optional[Mapping[str, "BlockedMatrix"]] = None,
        priority: int = 0,
        shed: bool = True,
    ) -> ServedResult:
        """Submit and await the result."""
        future = await self.submit(session, query, inputs, priority, shed=shed)
        return await future

    def _bridge(
        self, ticket: QueryTicket, sem: asyncio.Semaphore
    ) -> "asyncio.Future[ServedResult]":
        """An asyncio future resolved from the ticket's completion
        callback.  The callback runs on a replica dispatcher thread (or
        inline on a cache hit), so it only schedules loop work; the permit
        is released on the loop, alongside the future's resolution."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[ServedResult]" = loop.create_future()

        def finish(done: QueryTicket) -> None:
            sem.release()
            error = done._error
            if future.cancelled():
                return
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(done._value)

        def on_done(done: QueryTicket) -> None:
            try:
                loop.call_soon_threadsafe(finish, done)
            except RuntimeError:
                # the loop closed while the query was in flight (e.g. an
                # abandoned asyncio.run); nothing is awaiting the future
                pass

        ticket.add_done_callback(on_done)
        return future

    # -- passthrough ------------------------------------------------------

    def status(self) -> Dict[str, object]:
        return self.service.status()

    def prometheus(self) -> str:
        return self.service.prometheus()

    @property
    def closed(self) -> bool:
        return self.service.closed

    # -- lifecycle --------------------------------------------------------

    async def close(self, drain: bool = True,
                    timeout: Optional[float] = None) -> None:
        """Close the underlying service without blocking the loop."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.service.close(drain=drain, timeout=timeout)
        )

    async def __aenter__(self) -> "AsyncMatrixService":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    def __repr__(self) -> str:
        return (
            f"AsyncMatrixService(max_inflight={self.max_inflight}, "
            f"service={self.service!r})"
        )
