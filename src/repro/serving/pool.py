"""The engine replica pool: horizontal scale-out behind one service.

One :class:`ReplicaPool` owns N :class:`EngineReplica` instances.  Each
replica is a complete, independent execution stack — its own engine clone
(own plan cache, slice cache, execute lock, optional worker-process
pool), its own :class:`~repro.cluster.executor.SimulatedCluster`, its own
:class:`~repro.serving.admission.AdmissionController` and dispatcher
thread — so replicas never contend on an execute lock and a pool of N
replicas runs N queries truly concurrently.  What replicas *share* is
exactly the state that must stay global for correctness and efficiency:

* the **result cache** — one tenant's cache fill answers every replica
  (keys carry the planning signature, which is identical across clones);
* the **calibration store** — every replica feeds and plans off one set
  of fitted throughput coefficients, so N replicas converge as fast as
  one busy engine would;
* the **service metrics** — tenants see one coherent set of counters.

Routing is consistent-hash by tenant (:mod:`repro.serving.routing`): a
tenant's queries always land on the same replica (session affinity — its
warm plan cache and admission queue), and resizing the pool moves only
the tenants the ring moves.

**Budget split.**  Per-replica admission budgets *partition* the service
memory budget (:func:`split_budget` — they sum to it exactly, never
multiply it) and are recomputed on every resize, so N replicas can never
collectively admit more than the one cluster-wide budget the operator
configured.  Worker processes are partitioned the same way: with the
process execution backend, each replica's ``local_parallelism`` is the
engine's share of the configured total.

**Determinism.**  A replica executes exactly like a standalone engine —
the same planning signature, per-query metric deltas, and execute-lock
serialization — so any query's output and modeled metrics are
bit-identical whether the pool holds 1 replica or N.  Only wall-clock
timing and per-replica counters depend on the replica count.

This module is front-end plumbing: it imports nothing above the serving
layer (enforced by ``scripts/check_layers.py``) — engines arrive as
already-constructed objects and multiply via ``engine.clone()``.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.cluster.executor import SimulatedCluster
from repro.cluster.parallel import parallel_map
from repro.config import ServiceConfig
from repro.errors import (
    QueryTimeoutError,
    ServingError,
    ServiceOverloadedError,
)
from repro.serving.admission import AdmissionController
from repro.serving.cse import SubplanIndex
from repro.serving.result_cache import ResultCache, result_key
from repro.serving.routing import ConsistentHashRing
from repro.serving.ticket import QueryTicket, ServedResult

if TYPE_CHECKING:
    from repro.execution import Engine
    from repro.obs.accounting import ResourceAccountant
    from repro.obs.slo import SLOTracker
    from repro.serving.metrics import ServiceMetrics

logger = logging.getLogger("repro.serving")


def _result_usage(result, cluster_config) -> Dict[str, float]:
    """An execution's resource usage in ledger dimensions.

    Modeled seconds / shuffled bytes / flops are the per-query metric
    delta verbatim (so ledgers sum to cluster totals); the compute and
    network second splits derive from the configured bandwidths — the same
    denominators the CFO cost model charges against.
    """
    metrics = result.metrics
    comm = float(metrics.comm_bytes)
    flops = float(metrics.flops)
    return {
        "modeled_seconds": float(metrics.elapsed_seconds),
        "compute_seconds": flops / (
            cluster_config.compute_bandwidth * cluster_config.num_nodes
        ),
        "network_seconds": comm / cluster_config.network_bandwidth,
        "shuffled_bytes": comm,
        "flops": flops,
    }


def split_budget(total: int, parts: int) -> List[int]:
    """Partition *total* bytes into *parts* near-equal shares.

    The shares sum to *total* exactly (the first ``total % parts`` shares
    carry the remainder) — the pool-wide admission invariant: N replica
    budgets together grant no more memory than one service budget did.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    if total < parts:
        raise ValueError(
            f"memory budget of {total} bytes cannot be split into "
            f"{parts} positive per-replica budgets"
        )
    base, remainder = divmod(total, parts)
    return [base + (1 if i < remainder else 0) for i in range(parts)]


class EngineReplica:
    """One engine + cluster + admission queue + dispatcher thread.

    The per-replica port of the original single-engine service dispatch:
    queries arrive via :meth:`offer`, the dispatcher drains deficit
    round-robin waves through ``parallel_map``, and each finished query
    resolves its ticket with a :class:`ServedResult` naming this replica.
    """

    def __init__(
        self,
        index: int,
        engine: "Engine",
        config: ServiceConfig,
        memory_budget: int,
        result_cache: ResultCache,
        metrics: "ServiceMetrics",
        cluster: Optional[SimulatedCluster] = None,
        on_complete: Optional[Callable[[], None]] = None,
        subplans: Optional[SubplanIndex] = None,
        accountant: Optional["ResourceAccountant"] = None,
        slo: Optional["SLOTracker"] = None,
    ):
        self.index = index
        self.name = f"replica-{index}"
        self.engine = engine
        self.config = config
        self.cluster = cluster or SimulatedCluster(engine.config)
        self.result_cache = result_cache
        self.metrics = metrics
        # service-wide in-flight subplan registry (cross-query CSE); a
        # standalone replica gets a disabled index and dispatches as before
        self.subplans = subplans or SubplanIndex(enabled=False)
        # observability plane (both optional and strictly observational)
        self.accountant = accountant
        self.slo = slo
        self._on_complete = on_complete
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._admission = AdmissionController(config, memory_budget)
        self._running = 0
        self._closed = False
        #: Serializes close() against concurrent closers (not dispatch).
        self._close_lock = threading.Lock()
        # replica-local outcome counters (service totals live in the
        # shared ServiceMetrics; these answer "which replica did it")
        self.served = 0
        self.result_cache_hits = 0
        self.cse_hits = 0
        self.failed = 0
        self.timed_out = 0
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name=f"repro-serving-{self.name}",
            daemon=True,
        )
        self._dispatcher.start()

    # -- intake -----------------------------------------------------------

    def offer(self, ticket: QueryTicket) -> None:
        """Queue *ticket* on this replica (raises ServiceOverloadedError
        on shed, ServingError once the replica is closed)."""
        with self._cond:
            if self._closed:
                raise ServingError(f"{self.name} is closed")
            ticket.replica = self.name
            self._admission.offer(ticket)
            self._cond.notify_all()

    def set_memory_budget(self, memory_budget: int) -> None:
        """Re-point this replica's admission budget (pool resize)."""
        if memory_budget <= 0:
            raise ValueError("memory_budget must be positive")
        with self._cond:
            self._admission.memory_budget = memory_budget

    @property
    def memory_budget(self) -> int:
        with self._lock:
            return self._admission.memory_budget

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._admission.depth

    @property
    def running(self) -> int:
        with self._lock:
            return self._running

    @property
    def closed(self) -> bool:
        return self._closed

    # -- dispatch ---------------------------------------------------------

    def _dispatch_loop(self) -> None:
        poll = self.config.dispatch_poll_seconds
        while True:
            with self._cond:
                while not self._closed and self._admission.depth == 0:
                    self._cond.wait(poll)
                expired = self._admission.expire(time.monotonic())
                wave = self._admission.next_wave()
                if (
                    self._closed
                    and not wave
                    and not expired
                    and self._admission.depth == 0
                ):
                    return
                self._running += len(wave)
            for ticket in expired:
                self._expire_ticket(ticket)
            if wave:
                # the wave drains on the same thread-pool path queries use
                # for intra-query parallelism; this replica's execute lock
                # serializes cluster-stage accounting inside
                parallel_map(self._run_one, wave, self.config.max_concurrency)

    def _trace_instant(self, name: str, **attrs) -> None:
        """Drop a trace instant on this replica's cluster timeline."""
        trace = self.cluster.trace
        if trace is not None:
            trace.instant(
                name, "cse",
                ts=self.cluster.metrics.elapsed_seconds,
                replica=self.name,
                **attrs,
            )

    def _run_one(self, ticket: QueryTicket) -> None:
        started = time.monotonic()
        queue_seconds = started - ticket.enqueued_at
        try:
            # recompute the key: a set_block between submit and execution
            # bumped the version, and the fresh result must be stored under
            # the content actually read
            key = result_key(
                self.engine.planning_signature(), ticket.dag, ticket.bound
            )
            cached = self.result_cache.get(key)
            cse_hit = False
            adopted_from: Optional[str] = None
            adopted_usage = None
            usage = None
            if cached is not None:
                result, from_cache = cached, True
            else:
                from_cache = False
                result = None
                # cross-query CSE: adopt the in-flight owner's result when
                # another query with this exact key is already executing
                # (deterministic execution makes the adoption bit-identical)
                lease = self.subplans.lease(key, ticket.tenant)
                if not lease.owner:
                    result = lease.wait()
                    cse_hit = result is not None
                    if cse_hit:
                        adopted_from = lease.owner_tenant
                        adopted_usage = lease.usage
                        self._trace_instant(
                            "cse:adopt",
                            tenant=ticket.tenant,
                            owner=adopted_from or "?",
                        )
                    else:
                        # owner failed or wait timed out: demoted to solo
                        self._trace_instant(
                            "cse:demote", tenant=ticket.tenant
                        )
                if result is None:
                    if lease.owner and self.subplans.enabled:
                        self._trace_instant(
                            "cse:owner", tenant=ticket.tenant
                        )
                    try:
                        result = self.engine.execute(
                            ticket.dag, ticket.bound, cluster=self.cluster
                        )
                    except Exception:
                        if lease.owner:
                            self.subplans.fail(key)
                        raise
                    usage = _result_usage(result, self.engine.config.cluster)
                    self.result_cache.put(key, result, pins=ticket.bound)
                    if lease.owner:
                        self.subplans.complete(key, result, usage=usage)
            total = time.monotonic() - ticket.enqueued_at
            served = ServedResult(
                query_id=ticket.query_id,
                tenant=ticket.tenant,
                result=result,
                from_cache=from_cache,
                queue_seconds=queue_seconds,
                service_seconds=total,
                replica=self.name,
            )
            profile = getattr(result, "profile", None)
            if profile is not None and profile.span is not None:
                # label the query's span tree with the replica that served
                # it (first server wins for shared cached/adopted results)
                profile.span.attrs.setdefault("replica", self.name)
            self.metrics.record_served(
                ticket.tenant, from_cache,
                queue_seconds=queue_seconds, total_seconds=total,
            )
            if self.accountant is not None:
                if cse_hit:
                    self.accountant.charge_adoption(
                        ticket.tenant, adopted_from, adopted_usage,
                        wall_seconds=total,
                    )
                else:
                    self.accountant.charge_query(
                        ticket.tenant, usage=usage,
                        wall_seconds=total, from_cache=from_cache,
                    )
            if self.slo is not None:
                self.slo.record(ticket.tenant, latency_seconds=total)
            with self._lock:
                self.served += 1
                if from_cache:
                    self.result_cache_hits += 1
                if cse_hit:
                    self.cse_hits += 1
            ticket._resolve(served)
        except Exception as exc:  # noqa: BLE001 - failures belong to the ticket
            self.metrics.record_failed(ticket.tenant)
            if self.accountant is not None:
                self.accountant.record_failed(ticket.tenant)
            if self.slo is not None:
                self.slo.record(ticket.tenant, ok=False)
            with self._lock:
                self.failed += 1
            ticket._fail(exc)
        finally:
            with self._cond:
                self._running -= 1
                self._cond.notify_all()
            if self._on_complete is not None:
                self._on_complete()

    def _expire_ticket(self, ticket: QueryTicket) -> None:
        waited = time.monotonic() - ticket.enqueued_at
        self.metrics.record_timed_out(ticket.tenant)
        if self.accountant is not None:
            self.accountant.record_timed_out(ticket.tenant)
        if self.slo is not None:
            self.slo.record(ticket.tenant, ok=False)
        with self._lock:
            self.timed_out += 1
        ticket._fail(QueryTimeoutError(
            ticket.query_id, waited, self.config.queue_timeout_seconds
        ))
        if self._on_complete is not None:
            self._on_complete()

    # -- observability ----------------------------------------------------

    def status(self) -> Dict[str, object]:
        """This replica's live state (feeds ``service.status()["replicas"]``
        and the ``repro_replica_*`` Prometheus families)."""
        with self._lock:
            running = self._running
            return {
                "name": self.name,
                "queue_depth": self._admission.depth,
                "running": running,
                "busy": running > 0,
                "closed": self._closed,
                "served": self.served,
                "result_cache_hits": self.result_cache_hits,
                "cse_hits": self.cse_hits,
                "failed": self.failed,
                "timed_out": self.timed_out,
                "memory_budget_bytes": self._admission.memory_budget,
                "plan_cache": self.engine.plan_cache.stats(),
                "slice_cache": self.engine.slice_cache.stats(),
                "calibration_generation": self.engine.calibration.generation,
            }

    # -- lifecycle --------------------------------------------------------

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop this replica (idempotent, safe under concurrent callers).

        ``drain=True`` lets queued queries finish; ``drain=False`` fails
        them with ServiceOverloadedError.  The engine's runtime resources
        (its worker-process pool) are released after the dispatcher stops.
        """
        with self._close_lock:
            with self._cond:
                already = self._closed
                self._closed = True
                leftovers = (
                    [] if (drain or already) else self._admission.drain()
                )
                self._cond.notify_all()
            for ticket in leftovers:
                self.metrics.record_shed(ticket.tenant)
                if self.accountant is not None:
                    self.accountant.record_shed(ticket.tenant)
                if self.slo is not None:
                    self.slo.record(ticket.tenant, ok=False)
                ticket._fail(ServiceOverloadedError(
                    f"query {ticket.query_id} dropped: service shutting down"
                ))
            self._dispatcher.join(timeout)
            self.engine.close()

    def __repr__(self) -> str:
        return (
            f"EngineReplica(name={self.name!r}, "
            f"queue_depth={self.queue_depth}, running={self.running}, "
            f"closed={self._closed})"
        )


class ReplicaPool:
    """N engine replicas behind one consistent-hash router.

    Replica 0 wraps the engine (and optional cluster) the caller handed
    the service — single-replica pools behave exactly like the pre-pool
    service.  Replicas 1..N-1 are ``engine.clone()``s sharing the
    template's calibration store; with the process execution backend each
    replica gets ``local_parallelism // N`` workers (min 1), bounding the
    pool-wide worker count at the configured total.
    """

    def __init__(
        self,
        engine: "Engine",
        config: ServiceConfig,
        *,
        result_cache: ResultCache,
        metrics: "ServiceMetrics",
        memory_budget: int,
        cluster: Optional[SimulatedCluster] = None,
        on_complete: Optional[Callable[[], None]] = None,
        subplans: Optional[SubplanIndex] = None,
        accountant: Optional["ResourceAccountant"] = None,
        slo: Optional["SLOTracker"] = None,
    ):
        self.config = config
        self.result_cache = result_cache
        self.metrics = metrics
        # one in-flight subplan index across every replica: concurrent
        # identical queries execute once no matter where routing lands them
        self.subplans = (
            subplans
            if subplans is not None
            else SubplanIndex(enabled=config.cross_query_cse)
        )
        # shared observability plane: one ledger book and one SLO tracker
        # no matter how many replicas serve the tenants
        self.accountant = accountant
        self.slo = slo
        self.calibration = engine.calibration
        self.total_memory_budget = memory_budget
        self._on_complete = on_complete
        self._template = engine
        self._lock = threading.Lock()
        self._closed = False

        count = config.num_replicas
        self._worker_share = self._compute_worker_share(engine, count)
        engines = [self._fit_template_workers(engine)]
        for _ in range(1, count):
            engines.append(self._clone_engine())
        budgets = split_budget(memory_budget, count)
        self.replicas: List[EngineReplica] = []
        for index, (eng, budget) in enumerate(zip(engines, budgets)):
            self.replicas.append(self._make_replica(
                index, eng, budget, cluster if index == 0 else None
            ))
        self._by_name = {replica.name: replica for replica in self.replicas}
        self._ring = ConsistentHashRing(
            (replica.name for replica in self.replicas),
            vnodes=config.ring_vnodes,
        )
        self._next_index = count

    # -- replica construction ---------------------------------------------

    @staticmethod
    def _compute_worker_share(engine: "Engine", count: int) -> Optional[int]:
        """Per-replica worker-process count, or None when irrelevant
        (thread backend, or a single replica keeps the configured total)."""
        if count <= 1 or engine.config.execution_backend != "process":
            return None
        return max(1, engine.config.local_parallelism // count)

    def _fit_template_workers(self, engine: "Engine") -> "Engine":
        """Cap replica 0's worker share before its lazy pool spawns.

        ``local_parallelism`` is not part of the planning signature, so
        this never perturbs plans, caches, outputs or modeled metrics —
        only how many OS processes replica 0 may spawn.
        """
        if self._worker_share is not None and engine._procpool is None:
            engine.config = engine.config.with_options(
                local_parallelism=self._worker_share
            )
        return engine

    def _clone_engine(self) -> "Engine":
        template = self._template
        if self._worker_share is not None:
            clone = template.clone(template.config.with_options(
                local_parallelism=self._worker_share
            ))
        else:
            clone = template.clone()
        # one calibration store across the pool: every replica feeds and
        # plans off the same fitted coefficients
        clone.calibration = self.calibration
        return clone

    def _make_replica(
        self,
        index: int,
        engine: "Engine",
        budget: int,
        cluster: Optional[SimulatedCluster],
    ) -> EngineReplica:
        replica = EngineReplica(
            index,
            engine,
            self.config,
            budget,
            self.result_cache,
            self.metrics,
            cluster=cluster,
            on_complete=self._on_complete,
            subplans=self.subplans,
            accountant=self.accountant,
            slo=self.slo,
        )
        self.calibration.register_client(replica.name)
        return replica

    # -- routing ----------------------------------------------------------

    def replica_for(self, tenant: str) -> EngineReplica:
        """The replica serving *tenant* (consistent hash by tenant name —
        a tenant's sessions always share one replica)."""
        name = self._ring.route(tenant)
        with self._lock:
            replica = self._by_name.get(name)
            if replica is None:
                raise ServingError(f"routed to unknown replica {name!r}")
            return replica

    def rebalance(self, tenants) -> Dict[str, str]:
        """Explicit rebalance hook: the current ``tenant -> replica name``
        assignment for *tenants* (callers drain/move state accordingly)."""
        return self._ring.assignments(tenants)

    # -- resize -----------------------------------------------------------

    def add_replica(self) -> EngineReplica:
        """Grow the pool by one replica; budgets re-split pool-wide and
        only the tenants the ring moves change replica."""
        with self._lock:
            if self._closed:
                raise ServingError("pool is closed")
            index = self._next_index
            self._next_index += 1
        engine = self._clone_engine()
        replica = self._make_replica(
            index, engine, max(1, self.total_memory_budget), None
        )
        with self._lock:
            self.replicas.append(replica)
            self._by_name[replica.name] = replica
            self._resplit_budgets_locked()
        # routing sees the replica only once it is fully serviceable
        self._ring.add(replica.name)
        return replica

    def remove_replica(self, name: Optional[str] = None) -> None:
        """Shrink the pool: stop routing to the replica, drain it, close
        it, and re-split budgets across the survivors."""
        with self._lock:
            if len(self.replicas) <= 1:
                raise ServingError("cannot remove the last replica")
            if name is None:
                name = self.replicas[-1].name
            replica = self._by_name.get(name)
            if replica is None:
                raise ServingError(f"no replica named {name!r}")
        # stop new routes first; in-flight and queued work then drains
        self._ring.remove(name)
        replica.close(drain=True)
        with self._lock:
            self.replicas.remove(replica)
            self._by_name.pop(name, None)
            self._resplit_budgets_locked()

    def _resplit_budgets_locked(self) -> None:
        budgets = split_budget(self.total_memory_budget, len(self.replicas))
        for replica, budget in zip(self.replicas, budgets):
            replica.set_memory_budget(budget)

    # -- aggregates -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self.replicas)

    @property
    def queue_depth(self) -> int:
        return sum(replica.queue_depth for replica in self._snapshot())

    @property
    def running(self) -> int:
        return sum(replica.running for replica in self._snapshot())

    def _snapshot(self) -> List[EngineReplica]:
        with self._lock:
            return list(self.replicas)

    def status(self) -> List[Dict[str, object]]:
        """Per-replica status dicts, in index order."""
        return [replica.status() for replica in self._snapshot()]

    # -- lifecycle --------------------------------------------------------

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Close every replica (idempotent; replicas close concurrently-safe
        on their own, so overlapping pool closers are fine too)."""
        with self._lock:
            self._closed = True
            replicas = list(self.replicas)
        for replica in replicas:
            replica.close(drain=drain, timeout=timeout)

    def __repr__(self) -> str:
        return (
            f"ReplicaPool(replicas={len(self)}, "
            f"queue_depth={self.queue_depth}, running={self.running})"
        )
