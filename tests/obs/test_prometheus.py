"""Prometheus text exposition: rendering, validation, builders, sink."""

import pytest

from repro.obs import PrometheusSink, TelemetryEvent
from repro.obs.prometheus import (
    MetricFamily,
    cache_families,
    engine_families,
    render_exposition,
    serving_families,
    validate_exposition,
)


class TestMetricFamily:
    def test_rejects_bad_name(self):
        with pytest.raises(ValueError):
            MetricFamily("0bad")
        with pytest.raises(ValueError):
            MetricFamily("has space")

    def test_rejects_bad_type(self):
        with pytest.raises(ValueError):
            MetricFamily("ok", "timer")

    def test_add_chains_and_stringifies_labels(self):
        family = MetricFamily("m").add(1, tenant=7)
        assert family.samples == [({"tenant": "7"}, 1.0)]


class TestRenderExposition:
    def test_round_trip_validates(self):
        family = MetricFamily("repro_x_total", "counter", "Help text")
        family.add(3, phase="a").add(4.5, phase="b")
        text = render_exposition([family])
        assert "# HELP repro_x_total Help text" in text
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{phase="a"} 3' in text
        assert 'repro_x_total{phase="b"} 4.5' in text
        assert validate_exposition(text) == 2

    def test_label_escaping(self):
        family = MetricFamily("m", "gauge")
        family.add(1, path='a"b\\c\nd')
        text = render_exposition([family])
        assert 'path="a\\"b\\\\c\\nd"' in text
        assert validate_exposition(text) == 1

    def test_suffix_pseudo_label_emits_summary_rows(self):
        family = MetricFamily("lat_seconds", "summary")
        family.add(0.5, tenant="t", quantile="0.50")
        family.add(2, tenant="t", __suffix="_count")
        family.add(1.0, tenant="t", __suffix="_sum")
        text = render_exposition([family])
        assert 'lat_seconds_count{tenant="t"} 2' in text
        assert 'lat_seconds_sum{tenant="t"} 1' in text
        assert "__suffix" not in text
        assert validate_exposition(text) == 3

    def test_label_order_deterministic(self):
        f1 = MetricFamily("m", "gauge").add(1, b="2", a="1")
        f2 = MetricFamily("m", "gauge").add(1, a="1", b="2")
        assert render_exposition([f1]) == render_exposition([f2])


class TestValidateExposition:
    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed sample"):
            validate_exposition("metric{unclosed 1\n")

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError, match="bad sample value"):
            validate_exposition("metric abc\n")

    def test_rejects_duplicate_type(self):
        text = "# TYPE m gauge\n# TYPE m counter\n"
        with pytest.raises(ValueError, match="duplicate TYPE"):
            validate_exposition(text)

    def test_rejects_untyped_sample_when_types_present(self):
        text = "# TYPE m gauge\nm 1\nother 2\n"
        with pytest.raises(ValueError, match="no preceding TYPE"):
            validate_exposition(text)

    def test_rejects_duplicate_sample(self):
        text = 'm{a="1"} 1\nm{a="1"} 2\n'
        with pytest.raises(ValueError, match="duplicate sample"):
            validate_exposition(text)

    def test_rejects_malformed_labels(self):
        with pytest.raises(ValueError, match="malformed labels"):
            validate_exposition('m{a=unquoted} 1\n')

    def test_accepts_summary_companion_rows(self):
        text = (
            "# TYPE lat summary\n"
            'lat{quantile="0.5"} 1\n'
            "lat_sum 2\nlat_count 2\n"
        )
        assert validate_exposition(text) == 3


class TestBuilders:
    def test_engine_families(self):
        snapshot = {
            "num_stages": 3, "num_tasks": 12, "num_attempts": 12,
            "consolidation_bytes": 100, "aggregation_bytes": 50,
            "flops": 1000, "elapsed_seconds": 1.5,
            "peak_task_memory": 4096, "num_aborted_stages": 0,
            "counters": {"plan_cache_hits": 2, "slice_cache_misses": 1},
        }
        text = render_exposition(engine_families(snapshot))
        assert validate_exposition(text) > 0
        assert "repro_engine_stages_total 3" in text
        assert 'repro_engine_comm_bytes_total{phase="consolidation"} 100' in text
        assert (
            'repro_engine_counter_total{name="plan_cache_hits"} 2' in text
        )

    def test_engine_families_no_counters_key(self):
        text = render_exposition(engine_families({}))
        assert validate_exposition(text) > 0
        assert "counter_total{" not in text

    def test_cache_families(self):
        caches = {
            "plan": {"hits": 1, "misses": 2, "entries": 3},
            "slice": {"hits": 4, "misses": 5, "entries": 6, "bytes": 700},
        }
        text = render_exposition(cache_families(caches))
        assert validate_exposition(text) > 0
        assert 'repro_cache_hits_total{cache="plan"} 1' in text
        assert 'repro_cache_bytes{cache="slice"} 700' in text
        assert 'repro_cache_bytes{cache="plan"}' not in text

    def test_serving_families(self):
        status = {
            "queue_depth": 1, "running": 2, "sessions": 3,
            "tenants": {
                "alice": {
                    "submitted": 5, "served": 4, "cache_hits": 1,
                    "shed": 0, "timed_out": 0, "failed": 0,
                    "latency": {
                        "count": 4, "mean": 0.25,
                        "p50": 0.2, "p95": 0.4, "p99": 0.5,
                    },
                },
            },
        }
        text = render_exposition(serving_families(status))
        assert validate_exposition(text) > 0
        assert (
            'repro_serving_queries_total{outcome="served",tenant="alice"} 4'
            in text
        )
        assert (
            'repro_serving_latency_seconds{quantile="0.50",tenant="alice"} 0.2'
            in text
        )
        assert 'repro_serving_latency_seconds_count{tenant="alice"} 4' in text
        assert 'repro_serving_latency_seconds_sum{tenant="alice"} 1' in text
        assert "repro_serving_queue_depth 1" in text

    def test_serving_families_without_latency(self):
        status = {"tenants": {"t": {"submitted": 1}}}
        text = render_exposition(serving_families(status))
        assert validate_exposition(text) > 0
        assert "latency" not in text


class TestPrometheusSink:
    def test_counters_accumulate_gauges_overwrite(self):
        sink = PrometheusSink()
        sink.emit(TelemetryEvent("q.total", "counter", 1.0, {"e": "a"}))
        sink.emit(TelemetryEvent("q.total", "counter", 2.0, {"e": "a"}))
        sink.emit(TelemetryEvent("depth", "gauge", 5.0))
        sink.emit(TelemetryEvent("depth", "gauge", 3.0))
        text = sink.render()
        assert validate_exposition(text) == 2
        assert 'repro_q_total_total{e="a"} 3' in text
        assert "repro_depth 3" in text

    def test_ignores_valueless_and_other_kinds(self):
        sink = PrometheusSink()
        sink.emit(TelemetryEvent("evt", "event", 1.0))
        sink.emit(TelemetryEvent("c", "counter", None))
        assert sink.families() == []

    def test_sanitizes_metric_names(self):
        sink = PrometheusSink()
        sink.emit(TelemetryEvent("engine.totals/weird name", "gauge", 1.0))
        text = sink.render()
        assert validate_exposition(text) == 1
        assert "repro_engine_totals_weird_name 1" in text
