"""SLO burn-rate tracking: budget math, window logic, alert transitions."""

import pytest

from repro.obs import EventBus, MemorySink, SLOSpec, SLOTracker
from repro.obs.slo import _window_label


def spec(**overrides):
    base = dict(
        tenant="t1",
        latency_target_s=0.5,
        objective=0.9,
        short_window_s=60.0,
        long_window_s=600.0,
        burn_alert_threshold=2.0,
    )
    base.update(overrides)
    return SLOSpec(**base)


class TestSLOSpec:
    def test_error_budget_and_windows(self):
        s = spec(objective=0.99)
        assert s.error_budget == pytest.approx(0.01)
        assert s.windows == (60.0, 600.0)

    @pytest.mark.parametrize("bad", [
        dict(tenant=""),
        dict(latency_target_s=0.0),
        dict(objective=1.0),
        dict(objective=0.0),
        dict(short_window_s=-1.0),
        dict(short_window_s=900.0),  # exceeds long window
        dict(burn_alert_threshold=0.0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            spec(**bad)

    def test_window_labels(self):
        assert _window_label(300.0) == "5m"
        assert _window_label(3600.0) == "1h"
        assert _window_label(90.0) == "90s"

    def test_duplicate_tenant_specs_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOTracker([spec(), spec()])


class TestBurnMath:
    def test_unknown_tenant_is_noop(self):
        tracker = SLOTracker([spec()])
        assert tracker.record("nobody", latency_seconds=99.0) is False
        assert "nobody" not in tracker.snapshot(now=0.0)

    def test_latency_within_target_is_good(self):
        tracker = SLOTracker([spec()])
        tracker.record("t1", latency_seconds=0.4, now=1.0)
        tracker.record("t1", latency_seconds=0.6, now=2.0)
        windows = tracker.snapshot(now=2.0)["t1"]["windows"]
        assert windows["10m"]["total"] == 2
        assert windows["10m"]["bad"] == 1
        assert windows["10m"]["error_rate"] == pytest.approx(0.5)
        # error budget 0.1 -> burn = 0.5 / 0.1 = 5
        assert windows["10m"]["burn_rate"] == pytest.approx(5.0)

    def test_ok_flag_overrides_latency(self):
        tracker = SLOTracker([spec()])
        tracker.record("t1", ok=False, now=1.0)  # shed/timeout/failure
        snap = tracker.snapshot(now=1.0)["t1"]
        assert snap["windows"]["10m"]["bad"] == 1

    def test_events_age_out_of_windows(self):
        tracker = SLOTracker([spec()])
        tracker.record("t1", ok=False, now=0.0)
        snap = tracker.snapshot(now=1000.0)["t1"]  # past the 600s window
        assert snap["windows"]["10m"]["total"] == 0
        assert snap["windows"]["10m"]["burn_rate"] == 0.0

    def test_injectable_clock(self):
        ticks = iter([1.0, 2.0, 3.0])
        tracker = SLOTracker([spec()], clock=lambda: next(ticks))
        tracker.record("t1", ok=True)
        tracker.record("t1", ok=False)
        snap = tracker.snapshot()  # consumes the third tick
        assert snap["t1"]["windows"]["1m"]["total"] == 2


class TestAlertTransitions:
    def test_alert_requires_both_windows(self):
        """Bad events older than the short window must not page: the long
        window shows damage but the burn already stopped."""
        tracker = SLOTracker([spec()])
        for i in range(10):
            tracker.record("t1", ok=False, now=float(i))
        assert tracker.burning("t1")
        # a good streak after the short window has drained the bad events
        for i in range(3):
            assert tracker.record("t1", ok=True, now=200.0 + i) is False
        assert not tracker.burning("t1")

    def test_alert_and_recovery_events_on_bus(self):
        bus = EventBus()
        sink = bus.attach(MemorySink())
        tracker = SLOTracker([spec()], bus=bus)
        for i in range(10):
            tracker.record("t1", ok=False, now=float(i))
        alerts = sink.named("slo.burn_alert")
        assert len(alerts) == 1  # fired once, not per bad event
        attrs = alerts[0].attrs
        assert attrs["tenant"] == "t1"
        assert attrs["burn_1m"] >= 2.0 and attrs["burn_10m"] >= 2.0
        assert alerts[0].value == attrs["burn_10m"]
        for i in range(5):
            tracker.record("t1", ok=True, now=200.0 + i)
        assert len(sink.named("slo.burn_recovered")) == 1
        assert tracker.snapshot(now=205.0)["t1"]["alerts"] == 1

    def test_refire_counts_each_alert(self):
        tracker = SLOTracker([spec()])
        for i in range(5):
            tracker.record("t1", ok=False, now=float(i))
        for i in range(5):
            tracker.record("t1", ok=True, now=100.0 + i)
        for i in range(5):
            tracker.record("t1", ok=False, now=800.0 + i)
        assert tracker.snapshot(now=805.0)["t1"]["alerts"] == 2

    def test_no_traffic_never_burns(self):
        tracker = SLOTracker([spec()])
        assert not tracker.burning("t1")
        snap = tracker.snapshot(now=0.0)
        assert snap["t1"]["burning"] is False

    def test_disabled_tracker(self):
        tracker = SLOTracker()
        assert not tracker.enabled
        assert tracker.record("t1", latency_seconds=1.0) is False
        assert tracker.snapshot(now=0.0) == {}
