"""Per-tenant resource accounting: conservation, clamping, chargeback."""

import threading

import pytest

from repro.obs import ResourceAccountant, TenantLedger
from repro.obs.accounting import OUTCOME_FIELDS, RESOURCE_FIELDS


def usage(modeled=1.0, compute=0.4, network=0.6, shuffled=1e6, flops=2e6):
    return {
        "modeled_seconds": modeled,
        "compute_seconds": compute,
        "network_seconds": network,
        "shuffled_bytes": shuffled,
        "flops": flops,
    }


class TestLedgerBasics:
    def test_fresh_ledger_is_zero(self):
        ledger = TenantLedger("t")
        snap = ledger.snapshot()
        for name in OUTCOME_FIELDS:
            assert snap[name] == 0
        assert snap["usage"] == snap["charged"] == {
            name: 0.0 for name in RESOURCE_FIELDS
        }

    def test_charge_query_accumulates_usage_and_charged(self):
        acct = ResourceAccountant()
        acct.record_submitted("t1")
        acct.charge_query("t1", usage=usage(), wall_seconds=0.25)
        acct.charge_query("t1", usage=usage(), wall_seconds=0.25)
        snap = acct.snapshot()["tenants"]["t1"]
        assert snap["submitted"] == 1 and snap["served"] == 2
        assert snap["usage"]["modeled_seconds"] == pytest.approx(2.0)
        assert snap["charged"] == snap["usage"]
        assert snap["wall_seconds"] == pytest.approx(0.5)

    def test_cache_hit_charges_wall_but_no_usage(self):
        acct = ResourceAccountant()
        acct.charge_query("t1", wall_seconds=0.1, from_cache=True)
        snap = acct.snapshot()["tenants"]["t1"]
        assert snap["cache_hits"] == 1
        assert snap["usage"]["modeled_seconds"] == 0.0

    def test_outcome_counters(self):
        acct = ResourceAccountant()
        acct.record_shed("t")
        acct.record_timed_out("t")
        acct.record_failed("t")
        snap = acct.snapshot()["tenants"]["t"]
        assert (snap["shed"], snap["timed_out"], snap["failed"]) == (1, 1, 1)

    def test_share_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="cse_adopter_share"):
            ResourceAccountant(cse_adopter_share=1.5)


class TestAdoptionTransfers:
    def test_transfer_moves_share_from_owner_to_adopter(self):
        acct = ResourceAccountant(cse_adopter_share=0.5)
        acct.charge_query("owner", usage=usage(modeled=2.0))
        moved = acct.charge_adoption("adopter", "owner", usage=usage(modeled=2.0))
        assert moved["modeled_seconds"] == pytest.approx(1.0)
        tenants = acct.snapshot()["tenants"]
        assert tenants["owner"]["charged"]["modeled_seconds"] == pytest.approx(1.0)
        assert tenants["adopter"]["charged"]["modeled_seconds"] == pytest.approx(1.0)
        assert tenants["owner"]["cse_credited_seconds"] == pytest.approx(1.0)
        assert tenants["adopter"]["cse_charged_seconds"] == pytest.approx(1.0)
        # usage stays where the execution ran
        assert tenants["adopter"]["usage"]["modeled_seconds"] == 0.0

    def test_transfer_clamps_at_owner_balance(self):
        """Many adopters of one execution can never drive the owner's
        charged balance negative."""
        acct = ResourceAccountant(cse_adopter_share=0.5)
        acct.charge_query("owner", usage=usage(modeled=1.0))
        for i in range(5):
            acct.charge_adoption(f"a{i}", "owner", usage=usage(modeled=1.0))
        tenants = acct.snapshot()["tenants"]
        for ledger in tenants.values():
            for amount in ledger["charged"].values():
                assert amount >= 0.0

    def test_self_adoption_and_no_owner_are_counted_but_free(self):
        acct = ResourceAccountant()
        assert acct.charge_adoption("t", "t", usage=usage()) == {
            name: 0.0 for name in RESOURCE_FIELDS
        }
        acct.charge_adoption("t", None, usage=usage())
        snap = acct.snapshot()["tenants"]["t"]
        assert snap["cse_adoptions"] == 2
        assert snap["charged"]["modeled_seconds"] == 0.0

    def test_zero_share_transfers_nothing(self):
        acct = ResourceAccountant(cse_adopter_share=0.0)
        acct.charge_query("owner", usage=usage())
        moved = acct.charge_adoption("adopter", "owner", usage=usage())
        assert all(v == 0.0 for v in moved.values())


class TestConservation:
    def test_charged_totals_equal_usage_totals(self):
        """The invariant the chargeback report rests on: CSE transfers
        redistribute cost but never create or destroy it."""
        acct = ResourceAccountant(cse_adopter_share=0.7)
        acct.charge_query("t1", usage=usage(modeled=3.0, shuffled=5e6))
        acct.charge_query("t2", usage=usage(modeled=1.0))
        acct.charge_adoption("t2", "t1", usage=usage(modeled=3.0, shuffled=5e6))
        acct.charge_adoption("t3", "t1", usage=usage(modeled=3.0, shuffled=5e6))
        totals = acct.totals()
        for name in RESOURCE_FIELDS:
            assert totals["charged"][name] == pytest.approx(
                totals["usage"][name]
            ), name

    def test_conservation_under_concurrency(self):
        acct = ResourceAccountant(cse_adopter_share=0.5)

        def worker(tenant):
            for _ in range(50):
                acct.charge_query(tenant, usage=usage())
                acct.charge_adoption("adopter", tenant, usage=usage())

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        totals = acct.totals()
        for name in RESOURCE_FIELDS:
            assert totals["charged"][name] == pytest.approx(
                totals["usage"][name]
            )
        assert totals["served"] == 4 * 50 * 2


class TestChargebackReport:
    def test_render_has_tenant_rows_and_total(self):
        acct = ResourceAccountant(cse_adopter_share=0.5)
        acct.charge_query("alice", usage=usage(modeled=2.0), wall_seconds=0.5)
        acct.charge_adoption("bob", "alice", usage=usage(modeled=2.0))
        acct.record_shed("carol")
        report = acct.render_chargeback()
        lines = report.splitlines()
        assert "chargeback report" in lines[0]
        assert lines[1].split()[:2] == ["tenant", "served"]
        body = "\n".join(lines[2:])
        for tenant in ("alice", "bob", "carol", "TOTAL"):
            assert tenant in body
        # both tenants ended up with half the 2.0 modeled seconds
        alice = next(line for line in lines if line.startswith("alice"))
        bob = next(line for line in lines if line.startswith("bob"))
        assert "1.0000" in alice and "1.0000" in bob

    def test_empty_book_renders(self):
        report = ResourceAccountant().render_chargeback()
        assert "TOTAL" in report
