"""Cost-model accountability: relative errors, aggregates, rendering."""

import math

from repro.obs import QueryProfile, UnitProfile, relative_error


class TestRelativeError:
    def test_signed(self):
        assert relative_error(110.0, 100.0) == 0.1
        assert relative_error(90.0, 100.0) == -0.1

    def test_none_propagates(self):
        assert relative_error(None, 1.0) is None
        assert relative_error(1.0, None) is None

    def test_both_zero(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_predicted_work_measured_none_is_undefined(self):
        # a nonzero claim against a zero measurement has no honest ratio —
        # the old +/-inf answer leaked into means and JSON
        assert relative_error(1.0, 0.0) is None
        assert relative_error(-1.0, 0.0) is None

    def test_zero_prediction_makes_no_claim(self):
        assert relative_error(0.0, 2.0) is None

    def test_non_finite_inputs_are_undefined(self):
        assert relative_error(math.inf, 1.0) is None
        assert relative_error(math.nan, 1.0) is None
        assert relative_error(1.0, math.inf) is None


def _unit(index=0, predicted=1.0, measured=1.0, **kwargs):
    return UnitProfile(
        index=index,
        kind="cfo",
        label=f"u{index}",
        predicted_seconds=predicted,
        measured_seconds=measured,
        **kwargs,
    )


class TestUnitProfile:
    def test_error_fields(self):
        unit = _unit(
            predicted=2.0, measured=1.0,
            predicted_net_bytes=100.0, measured_comm_bytes=200.0,
            predicted_flops=50.0, measured_flops=50.0,
        )
        assert unit.seconds_error == 1.0
        assert unit.net_bytes_error == -0.5
        assert unit.flops_error == 0.0

    def test_no_estimate_gives_none_errors(self):
        unit = UnitProfile(index=0, kind="cell", label="c", measured_seconds=1.0)
        assert unit.seconds_error is None
        assert unit.net_bytes_error is None

    def test_to_dict_carries_errors(self):
        doc = _unit(predicted=1.5, measured=1.0).to_dict()
        assert doc["seconds_error"] == 0.5
        assert doc["label"] == "u0"


class TestQueryProfile:
    def test_aggregates(self):
        profile = QueryProfile(
            engine="e",
            units=(
                _unit(0, predicted=1.0, measured=2.0),
                _unit(1, predicted=3.0, measured=2.0),
                UnitProfile(index=2, kind="cell", label="c", measured_seconds=1.0),
            ),
            totals={"elapsed_seconds": 5.0, "num_stages": 4},
        )
        assert profile.measured_seconds == 5.0
        assert profile.predicted_seconds == 4.0
        # whole-query error compares only units carrying an estimate:
        # (1+3) vs (2+2)
        assert profile.seconds_error == 0.0
        assert profile.mean_abs_seconds_error == 0.5
        assert profile.max_abs_seconds_error == 0.5

    def test_no_estimates_means_no_error_claim(self):
        profile = QueryProfile(
            engine="e",
            units=(UnitProfile(index=0, kind="cell", label="c"),),
        )
        assert profile.predicted_seconds is None
        assert profile.seconds_error is None
        assert profile.mean_abs_seconds_error is None

    def test_render_is_deterministic_and_wall_free(self):
        profile = QueryProfile(
            engine="e",
            units=(_unit(0, predicted=1.0, measured=2.0),),
            totals={"elapsed_seconds": 2.0, "num_stages": 1},
            counters={"b": 2, "a": 1},
            wall_seconds=123.456,
        )
        text = profile.render()
        assert text == profile.render()
        assert "123.456" not in text  # wall-clock excluded by default
        assert "counters: a=1, b=2" in text
        assert "[0]" in text and "-50.0%" in text

    def test_render_include_wall(self):
        profile = QueryProfile(
            engine="e",
            units=(),
            totals={"elapsed_seconds": 0.0},
            wall_seconds=0.5,
        )
        assert "wall-clock: 0.500000s" in profile.render(include_wall=True)

    def test_undefined_error_renders_as_dash(self):
        profile = QueryProfile(
            engine="e",
            units=(_unit(0, predicted=1.0, measured=0.0),),
            totals={"elapsed_seconds": 0.0},
        )
        assert profile.units[0].seconds_error is None
        assert "inf" not in profile.render()
        assert profile.mean_abs_seconds_error is None  # undefined excluded

    def test_wall_seconds_carried_to_dict(self):
        doc = _unit(measured_wall_seconds=0.25).to_dict()
        assert doc["measured_wall_seconds"] == 0.25
