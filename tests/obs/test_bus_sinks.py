"""Event bus fan-out + the bundled sinks."""

import json
import logging

from repro.obs import (
    EventBus,
    JsonDumpSink,
    LoggingSink,
    MemorySink,
    TelemetryEvent,
)
from repro.obs.bus import Sink


class RaisingSink(Sink):
    def __init__(self):
        self.calls = 0

    def emit(self, event):
        self.calls += 1
        raise RuntimeError("exporter down")


class TestEventBus:
    def test_inactive_without_sinks(self):
        bus = EventBus()
        assert not bus.active
        bus.emit(TelemetryEvent("x"))  # no-op, no error

    def test_fan_out_preserves_order(self):
        bus = EventBus()
        a, b = MemorySink(), MemorySink()
        bus.attach(a)
        bus.attach(b)
        assert bus.active
        bus.emit(TelemetryEvent("first"))
        bus.emit(TelemetryEvent("second"))
        assert [e.name for e in a.events] == ["first", "second"]
        assert [e.name for e in b.events] == ["first", "second"]

    def test_raising_sink_is_detached_not_fatal(self, caplog):
        bus = EventBus()
        bad = RaisingSink()
        good = MemorySink()
        bus.attach(bad)
        bus.attach(good)
        with caplog.at_level(logging.ERROR, logger="repro.obs"):
            bus.emit(TelemetryEvent("a"))
            bus.emit(TelemetryEvent("b"))
        # bad saw only the first event, then was detached; good saw both
        assert bad.calls == 1
        assert [e.name for e in good.events] == ["a", "b"]
        assert bus.sinks == [good]

    def test_detach(self):
        bus = EventBus()
        sink = bus.attach(MemorySink())
        bus.detach(sink)
        assert not bus.active
        bus.detach(sink)  # idempotent

    def test_emit_counters_sorted_numeric_only(self):
        bus = EventBus()
        sink = bus.attach(MemorySink())
        bus.emit_counters(
            "eng", {"b": 2, "a": 1.5, "skip": "text"}, engine="fuseme"
        )
        assert [e.name for e in sink.events] == ["eng.a", "eng.b"]
        assert sink.events[0].kind == "counter"
        assert sink.events[0].value == 1.5
        assert sink.events[0].attrs == {"engine": "fuseme"}

    def test_close_empties_bus_and_closes_sinks(self, tmp_path):
        bus = EventBus()
        path = tmp_path / "dump.json"
        sink = bus.attach(JsonDumpSink(str(path)))
        bus.emit(TelemetryEvent("x", kind="event"))
        bus.close()
        assert not bus.active
        assert json.loads(path.read_text())["events"][0]["name"] == "x"
        assert sink.events  # retained after close


class TestMemorySink:
    def test_named_and_clear(self):
        sink = MemorySink()
        sink.emit(TelemetryEvent("a"))
        sink.emit(TelemetryEvent("b"))
        sink.emit(TelemetryEvent("a"))
        assert len(sink) == 3
        assert len(sink.named("a")) == 2
        sink.clear()
        assert len(sink) == 0

    def test_bounded_drops_oldest_and_counts(self):
        sink = MemorySink(max_events=3)
        for name in "abcde":
            sink.emit(TelemetryEvent(name))
        assert [e.name for e in sink.events] == ["c", "d", "e"]
        assert sink.dropped == 2
        sink.clear()
        assert sink.dropped == 0 and len(sink) == 0
        sink.emit(TelemetryEvent("f"))  # capacity survives clear()
        assert [e.name for e in sink.events] == ["f"] and sink.dropped == 0

    def test_unbounded_never_drops(self):
        sink = MemorySink()
        for i in range(100):
            sink.emit(TelemetryEvent(str(i)))
        assert len(sink) == 100 and sink.dropped == 0

    def test_max_events_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError, match="max_events"):
            MemorySink(max_events=0)


class TestLoggingSink:
    def test_line_format_sorted_attrs(self, caplog):
        sink = LoggingSink()
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            sink.emit(TelemetryEvent(
                "q.done", kind="counter", value=2.0, attrs={"b": 1, "a": 0}
            ))
        assert caplog.records[-1].getMessage() == "q.done counter value=2 a=0 b=1"

    def test_value_omitted_when_none(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            LoggingSink().emit(TelemetryEvent("evt"))
        assert caplog.records[-1].getMessage() == "evt event"

    def test_rate_limit_suppresses_then_reports(self, caplog):
        clock = [0.0]
        sink = LoggingSink(max_per_second=2.0, clock=lambda: clock[0])
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            for i in range(5):  # burst: 2 admitted, 3 suppressed
                sink.emit(TelemetryEvent(f"burst{i}"))
            assert sink.suppressed == 3
            clock[0] = 10.0  # bucket refills; suppression is reported
            sink.emit(TelemetryEvent("later"))
        messages = [r.getMessage() for r in caplog.records]
        assert messages[:2] == ["burst0 event", "burst1 event"]
        assert "suppressed 3 events (rate limit 2/s)" in messages[2]
        assert messages[3] == "later event"
        assert sink.suppressed == 0

    def test_unlimited_by_default(self, caplog):
        sink = LoggingSink()
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            for i in range(20):
                sink.emit(TelemetryEvent(str(i)))
        assert len(caplog.records) == 20 and sink.suppressed == 0

    def test_rate_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError, match="max_per_second"):
            LoggingSink(max_per_second=0.0)


class TestJsonDumpSink:
    def test_to_json_round_trip(self):
        sink = JsonDumpSink()
        sink.emit(TelemetryEvent("n", kind="gauge", value=1.0, attrs={"k": "v"}))
        doc = json.loads(sink.to_json())
        assert doc["events"] == [
            {"name": "n", "kind": "gauge", "value": 1.0, "attrs": {"k": "v"}}
        ]

    def test_dump_requires_path(self):
        import pytest

        with pytest.raises(ValueError):
            JsonDumpSink().dump()

    def test_close_without_path_is_noop(self):
        JsonDumpSink().close()
