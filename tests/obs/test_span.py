"""Span trees: nesting, clocks, traversal, rendering."""

import json

from repro.obs import Span, SpanTracer


class FakeClock:
    """Deterministic clock: each call advances by *step* seconds."""

    def __init__(self, start=100.0, step=1.0):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpan:
    def test_durations(self):
        span = Span("s", wall_start=1.0, wall_end=3.5)
        assert span.wall_seconds == 2.5
        assert span.modeled_seconds is None
        span.modeled_start, span.modeled_end = 10.0, 12.0
        assert span.modeled_seconds == 2.0

    def test_open_span_has_zero_wall(self):
        assert Span("s", wall_start=5.0).wall_seconds == 0.0

    def test_child_and_walk_order(self):
        root = Span("root")
        a = root.child("a")
        a.child("a1")
        root.child("b")
        assert [s.name for s in root.walk()] == ["root", "a", "a1", "b"]

    def test_find(self):
        root = Span("root")
        root.child("x").child("needle")
        assert root.find("needle") is not None
        assert root.find("missing") is None

    def test_to_dict_round_trips_json(self):
        root = Span("root", wall_start=0.0, wall_end=1.0, attrs={"k": 1})
        root.child("c")
        doc = json.loads(json.dumps(root.to_dict()))
        assert doc["name"] == "root"
        assert doc["children"][0]["name"] == "c"
        assert doc["attrs"] == {"k": 1}

    def test_render_sorts_attrs(self):
        span = Span("s", wall_start=0.0, wall_end=1.0, attrs={"b": 2, "a": 1})
        assert "(a=1, b=2)" in span.render()


class TestSpanTracer:
    def test_nesting(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("query"):
            with tracer.span("plan"):
                pass
            with tracer.span("execute"):
                with tracer.span("unit[0]"):
                    pass
        root = tracer.root
        assert root.name == "query"
        assert [c.name for c in root.children] == ["plan", "execute"]
        assert root.children[1].children[0].name == "unit[0]"

    def test_fake_clock_gives_deterministic_walls(self):
        tracer = SpanTracer(clock=FakeClock(start=0.0, step=1.0))
        with tracer.span("a"):
            pass
        assert tracer.root.wall_start == 0.0
        assert tracer.root.wall_end == 1.0

    def test_current_tracks_stack(self):
        tracer = SpanTracer(clock=FakeClock())
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
            with tracer.span("b") as b:
                assert tracer.current is b
            assert tracer.current is a
        assert tracer.current is None

    def test_second_top_level_span_joins_root(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert tracer.root.name == "first"
        assert [c.name for c in tracer.root.children] == ["second"]

    def test_span_closes_on_exception(self):
        tracer = SpanTracer(clock=FakeClock())
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert tracer.root.wall_end is not None
        assert tracer.current is None
