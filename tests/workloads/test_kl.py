"""Tests for the generalized KL-divergence workload."""

import numpy as np
import pytest

from repro import DistMELikeEngine, FuseMEEngine, SystemDSLikeEngine
from repro.matrix import rand_dense, rand_sparse
from repro.workloads.kl import kl_divergence_query, kl_divergence_value

from tests.conftest import make_config

BS = 25
ROWS, COLS, K = 200, 150, 50
DENSITY = 0.05


@pytest.fixture
def data():
    return {
        "X": rand_sparse(ROWS, COLS, DENSITY, BS, seed=1, low=0.5, high=2.0),
        "W": rand_dense(ROWS, K, BS, seed=2, low=0.1, high=1.0),
        "H": rand_dense(K, COLS, BS, seed=3, low=0.1, high=1.0),
    }


def reference_loss(data, eps=1e-12):
    x = data["X"].to_numpy()
    wh = data["W"].to_numpy() @ data["H"].to_numpy()
    masked = np.sum(x * np.log((x + eps) / (wh + eps)))
    return masked - x.sum() + wh.sum()


def run_loss(engine, data):
    q = kl_divergence_query(ROWS, COLS, K, DENSITY, BS)
    result = engine.execute([q.masked_term, q.x_mass, q.wh_mass], data)
    roots = list(result.dag.roots)
    return kl_divergence_value(
        result.outputs[roots[0]],
        result.outputs[roots[1]],
        result.outputs[roots[2]],
    ), result


class TestCorrectness:
    @pytest.mark.parametrize(
        "engine_cls", [FuseMEEngine, SystemDSLikeEngine, DistMELikeEngine]
    )
    def test_matches_reference(self, data, engine_cls):
        got, _ = run_loss(engine_cls(make_config()), data)
        assert got == pytest.approx(reference_loss(data), rel=1e-9)

    def test_masked_term_uses_sparsity(self, data):
        """The masked term alone must exploit X's sparsity: far fewer flops
        than the dense product it notionally contains."""
        q = kl_divergence_query(ROWS, COLS, K, DENSITY, BS)
        result = FuseMEEngine(make_config()).execute(q.masked_term, data)
        dense_product_flops = 2 * ROWS * K * COLS
        assert result.metrics.flops < dense_product_flops / 5

    def test_loss_decreases_when_wh_approaches_x(self, data):
        """Replacing random factors with a closer approximation lowers D."""
        far, _ = run_loss(FuseMEEngine(make_config()), data)
        # scale H so that W x H has roughly X's mean mass on the support
        x = data["X"].to_numpy()
        wh = data["W"].to_numpy() @ data["H"].to_numpy()
        scale = x.sum() / wh.sum()
        from repro.matrix import from_numpy

        closer = dict(data)
        closer["H"] = from_numpy(data["H"].to_numpy() * scale, BS)
        near, _ = run_loss(FuseMEEngine(make_config()), closer)
        assert near < far
