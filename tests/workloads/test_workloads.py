"""Tests for the workload builders: NMF, GNMF, ALS, PCA, recommender."""

import numpy as np
import pytest

from repro import DistMELikeEngine, FuseMEEngine, SystemDSLikeEngine
from repro.lang import DAG, evaluate
from repro.matrix import rand_dense, rand_sparse
from repro.workloads import (
    GNMF,
    als_loss_query,
    gnmf_updates,
    nmf_query,
    pca_covariance_query,
    top_k_items,
)

from tests.conftest import make_config

BS = 25


class TestNMFQuery:
    def test_shapes_declared(self):
        q = nmf_query(200, 150, 50, 0.05, BS)
        assert q.x.shape == (200, 150)
        assert q.u.shape == (200, 50)
        assert q.v.shape == (150, 50)
        assert q.expr.shape == (200, 150)

    def test_executes_correctly(self):
        q = nmf_query(200, 150, 50, 0.05, BS)
        inputs = {
            "X": rand_sparse(200, 150, 0.05, BS, seed=1),
            "U": rand_dense(200, 50, BS, seed=2),
            "V": rand_dense(150, 50, BS, seed=3),
        }
        result = FuseMEEngine(make_config()).execute(q.expr, inputs)
        expected = evaluate(
            DAG(q.expr.node).roots[0],
            {k: m.to_numpy() for k, m in inputs.items()},
        )
        np.testing.assert_allclose(result.output().to_numpy(), expected, atol=1e-8)


class TestALS:
    def test_loss_positive_and_consistent(self):
        q = als_loss_query(200, 150, 50, 0.05, BS)
        inputs = {
            "X": rand_sparse(200, 150, 0.05, BS, seed=1),
            "U": rand_dense(200, 50, BS, seed=2),
            "V": rand_dense(50, 150, BS, seed=3),
        }
        results = [
            Eng(make_config()).execute(q.expr, inputs).output().to_numpy()[0, 0]
            for Eng in (FuseMEEngine, SystemDSLikeEngine, DistMELikeEngine)
        ]
        assert results[0] > 0
        np.testing.assert_allclose(results, results[0], rtol=1e-9)


class TestPCA:
    def test_covariance_pattern(self):
        q = pca_covariance_query(200, 150, 25, BS)
        inputs = {
            "X": rand_dense(200, 150, BS, seed=1),
            "S": rand_dense(150, 25, BS, seed=2),
        }
        result = FuseMEEngine(make_config()).execute(q.expr, inputs)
        x, s = inputs["X"].to_numpy(), inputs["S"].to_numpy()
        np.testing.assert_allclose(
            result.output().to_numpy(), (x @ s).T @ x, atol=1e-7
        )


class TestGNMF:
    def test_updates_well_formed(self):
        q = gnmf_updates(200, 150, 50, 0.05, BS)
        assert q.u_update.shape == (50, 150)
        assert q.v_update.shape == (200, 50)

    def test_run_keeps_factor_shapes(self):
        gn = GNMF(200, 150, 50, 0.05, BS)
        x = rand_sparse(200, 150, 0.05, BS, seed=1)
        run = gn.run(FuseMEEngine(make_config()), x, iterations=2)
        assert run.u.shape == (50, 150)
        assert run.v.shape == (200, 50)
        assert len(run.iterations) == 2

    def test_factors_stay_nonnegative(self):
        gn = GNMF(200, 150, 50, 0.05, BS)
        x = rand_sparse(200, 150, 0.05, BS, seed=1)
        run = gn.run(FuseMEEngine(make_config()), x, iterations=3)
        assert run.u.to_numpy().min() >= 0
        assert run.v.to_numpy().min() >= 0

    def test_accumulated_seconds_monotone(self):
        gn = GNMF(200, 150, 50, 0.05, BS)
        x = rand_sparse(200, 150, 0.05, BS, seed=1)
        run = gn.run(FuseMEEngine(make_config()), x, iterations=3)
        acc = run.accumulated_seconds
        assert acc == sorted(acc)
        assert run.total_comm_bytes > 0

    def test_engines_agree_on_one_iteration(self):
        gn = GNMF(200, 150, 50, 0.05, BS)
        x = rand_sparse(200, 150, 0.05, BS, seed=1)
        runs = {}
        for Eng in (FuseMEEngine, SystemDSLikeEngine, DistMELikeEngine):
            runs[Eng.__name__] = gn.run(Eng(make_config()), x, iterations=1)
        base = runs["FuseMEEngine"]
        for name, other in runs.items():
            assert base.u.allclose(other.u, atol=1e-6), name
            assert base.v.allclose(other.v, atol=1e-6), name

    def test_loss_tracking(self):
        gn = GNMF(100, 75, 25, 0.1, BS)
        x = rand_sparse(100, 75, 0.1, BS, seed=1)
        run = gn.run(FuseMEEngine(make_config()), x, iterations=2, track_loss=True)
        assert all(it.loss is not None for it in run.iterations)

    def test_sequential_updates_decrease_loss(self):
        """The Lee-Seung schedule is monotone non-increasing in loss."""
        gn = GNMF(100, 75, 25, 0.1, BS)
        x = rand_sparse(100, 75, 0.1, BS, seed=1)
        run = gn.run(
            FuseMEEngine(make_config()), x, iterations=4,
            track_loss=True, sequential=True,
        )
        losses = [it.loss for it in run.iterations]
        assert all(b <= a * (1 + 1e-9) for a, b in zip(losses, losses[1:]))


class TestRecommender:
    def test_topk_excludes_seen_items(self):
        gn = GNMF(100, 75, 25, 0.1, BS)
        x = rand_sparse(100, 75, 0.1, BS, seed=1)
        run = gn.run(FuseMEEngine(make_config()), x, iterations=2)
        recs = top_k_items(FuseMEEngine(make_config()), x, run.u, run.v, user=5, k=10)
        assert len(recs) <= 10
        seen = set(np.flatnonzero(x.to_numpy()[5]))
        assert not seen & {item for item, _ in recs}

    def test_scores_sorted_descending(self):
        gn = GNMF(100, 75, 25, 0.1, BS)
        x = rand_sparse(100, 75, 0.1, BS, seed=1)
        run = gn.run(FuseMEEngine(make_config()), x, iterations=1)
        recs = top_k_items(FuseMEEngine(make_config()), x, run.u, run.v, user=0, k=5)
        scores = [s for _, s in recs]
        assert scores == sorted(scores, reverse=True)

    def test_bad_user_rejected(self):
        gn = GNMF(100, 75, 25, 0.1, BS)
        x = rand_sparse(100, 75, 0.1, BS, seed=1)
        u, v = gn.initial_factors()
        with pytest.raises(IndexError):
            top_k_items(FuseMEEngine(make_config()), x, u, v, user=1000)
        with pytest.raises(ValueError):
            top_k_items(FuseMEEngine(make_config()), x, u, v, user=0, k=0)
