"""Tests for the AutoEncoder workload."""

import pytest

from repro import FuseMEEngine, LocalXLAEngine, SystemDSLikeEngine
from repro.errors import DataError
from repro.matrix import rand_dense
from repro.workloads import AutoEncoder, AutoEncoderShapes

from tests.conftest import make_config

BS = 25


@pytest.fixture
def ae():
    shapes = AutoEncoderShapes(features=100, hidden1=50, hidden2=25)
    return AutoEncoder(shapes, batch_size=50, block_size=BS)


@pytest.fixture
def data():
    return rand_dense(200, 100, BS, seed=7)


class TestConstruction:
    def test_weight_shapes(self):
        shapes = AutoEncoderShapes(features=100, hidden1=50, hidden2=25)
        ws = shapes.weight_shapes()
        assert ws["W1"] == (50, 100)
        assert ws["W2"] == (25, 50)
        assert ws["W3"] == (50, 25)
        assert ws["W4"] == (100, 50)

    def test_four_update_roots(self, ae):
        assert len(ae.step_exprs) == 4
        assert ae.step_exprs[0].shape == (50, 100)

    def test_initial_weights_reproducible(self, ae):
        a = ae.initial_weights(seed=3)
        b = ae.initial_weights(seed=3)
        for name in a:
            assert a[name].allclose(b[name])

    def test_bad_batch_size(self):
        shapes = AutoEncoderShapes(features=100)
        with pytest.raises(DataError):
            AutoEncoder(shapes, batch_size=0)


class TestTraining:
    def test_epoch_reduces_reconstruction_error(self, ae, data):
        w0 = ae.initial_weights()
        before = ae.reconstruction_error(data, w0)
        run = ae.run_epoch(FuseMEEngine(make_config()), data, weights=w0)
        after = ae.reconstruction_error(data, run.weights)
        assert after < before
        assert len(run.steps) == 4

    def test_engines_produce_identical_weights(self, ae, data):
        w0 = ae.initial_weights()
        fuseme = ae.run_epoch(FuseMEEngine(make_config()), data, weights=w0,
                              max_steps=2)
        systemds = ae.run_epoch(SystemDSLikeEngine(make_config()), data,
                                weights=w0, max_steps=2)
        xla = ae.run_epoch(LocalXLAEngine(make_config()), data, weights=w0,
                           max_steps=2)
        for name in fuseme.weights:
            assert fuseme.weights[name].allclose(systemds.weights[name], atol=1e-7)
            assert fuseme.weights[name].allclose(xla.weights[name], atol=1e-7)

    def test_metrics_collected_per_step(self, ae, data):
        run = ae.run_epoch(FuseMEEngine(make_config()), data, max_steps=2)
        assert all(s.elapsed_seconds > 0 for s in run.steps)
        assert run.comm_bytes > 0

    def test_xla_has_zero_comm(self, ae, data):
        run = ae.run_epoch(LocalXLAEngine(make_config()), data, max_steps=2)
        assert run.comm_bytes == 0

    def test_batch_not_multiple_of_block_rejected(self, data):
        shapes = AutoEncoderShapes(features=100, hidden1=50, hidden2=25)
        ae = AutoEncoder(shapes, batch_size=30, block_size=BS)
        with pytest.raises(DataError):
            ae.run_epoch(FuseMEEngine(make_config()), data)

    def test_rows_not_multiple_of_batch_rejected(self, ae):
        data = rand_dense(175, 100, BS, seed=7)
        with pytest.raises(DataError):
            ae.run_epoch(FuseMEEngine(make_config()), data)

    def test_smaller_batch_means_more_steps(self, data):
        """Figure 15(b-c): smaller batches = more update steps per epoch."""
        shapes = AutoEncoderShapes(features=100, hidden1=50, hidden2=25)
        small = AutoEncoder(shapes, batch_size=25, block_size=BS)
        large = AutoEncoder(shapes, batch_size=100, block_size=BS)
        small_run = small.run_epoch(FuseMEEngine(make_config()), data)
        large_run = large.run_epoch(FuseMEEngine(make_config()), data)
        assert len(small_run.steps) == 8
        assert len(large_run.steps) == 2
